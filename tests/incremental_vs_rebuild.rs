//! The differential harness for the update subsystem: after randomized
//! update sequences, the engine's incrementally maintained state —
//! graph, core decomposition, sharded CP-tree index — must be
//! indistinguishable from a from-scratch monolithic rebuild, and
//! queries must agree with a fresh reference engine. Sharded-lazy,
//! sharded-eager, and monolithic-rebuild shapes are held equivalent at
//! every checked step, including when cold shards are materialized
//! mid-stream between updates.

use pcs::datasets::taxonomy::random_taxonomy;
use pcs::graph::core::CoreDecomposition;
use pcs::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Set-equality of the whole index query surface — generic over the
/// index shape via [`IndexRef`], so a lazily sharded serving index, an
/// eagerly materialized one, and a monolithic from-scratch rebuild are
/// all compared through the same probes: per-label member lists, every
/// `get_ref(k, q, label)` (sorted copies), and headMap restoration.
/// Probing a sharded side materializes its cold shards — deliberately:
/// the contract is that materialization-on-demand answers exactly like
/// an eager build.
fn assert_index_equivalent(a: IndexRef<'_>, b: IndexRef<'_>, tax: &Taxonomy, n: usize, max_k: u32) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_populated_labels(), b.num_populated_labels());
    for v in 0..n as u32 {
        assert_eq!(a.restore_ptree(tax, v), b.restore_ptree(tax, v), "headMap of {v}");
    }
    let slice_as_set = |idx: IndexRef<'_>, k, q, label| {
        idx.get_ref(k, q, label).map(|s| {
            let mut v = s.to_vec();
            v.sort_unstable();
            v
        })
    };
    for label in 0..tax.len() as u32 {
        assert_eq!(
            a.vertices_with_label(label),
            b.vertices_with_label(label),
            "members of label {label}"
        );
        for &q in a.vertices_with_label(label) {
            for k in 0..=max_k {
                assert_eq!(
                    slice_as_set(a, k, q, label),
                    slice_as_set(b, k, q, label),
                    "label={label} q={q} k={k}"
                );
            }
        }
    }
}

fn communities_of(resp: &QueryResponse) -> Vec<(Vec<u32>, Vec<u32>)> {
    resp.communities().iter().map(|c| (c.subtree.nodes().to_vec(), c.vertices.clone())).collect()
}

/// Under `--features debug-invariants`, every checked step of the
/// harness additionally runs the deep invariant verifier (CSR
/// symmetry, core/profile closure, member-table ⇄ profile agreement,
/// resident-shard arena geometry, epoch monotonicity) on the engine;
/// without the feature this is a no-op and the harness is unchanged.
#[cfg(feature = "debug-invariants")]
fn verify_deep(engine: &PcsEngine, at: &str) {
    engine.verify_deep().unwrap_or_else(|e| panic!("{at}: deep invariant violated: {e}"));
}
#[cfg(not(feature = "debug-invariants"))]
fn verify_deep(_engine: &PcsEngine, _at: &str) {}

/// The acceptance-criteria run: > 500 singleton update steps, with the
/// incremental index and cores checked against a full rebuild after
/// every single step.
#[test]
fn incremental_state_matches_rebuild_over_500_steps() {
    let tax = random_taxonomy(40, 4, 6, 21);
    let ds = pcs::datasets::gen::generate(&DatasetSpec::small("diff", 56, 33), tax);
    let stream = update_stream(&ds, &UpdateStreamSpec::new(510, 7));
    assert!(stream.len() >= 500);
    let engine = PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let mut patched = 0usize;
    let mut skipped_total = 0usize;
    for (step, timed) in stream.iter().enumerate() {
        let batch = match &timed.op {
            StreamOp::AddEdge(a, b) => UpdateBatch::new().add_edge(*a, *b),
            StreamOp::RemoveEdge(a, b) => UpdateBatch::new().remove_edge(*a, *b),
            StreamOp::SetProfile(v, p) => UpdateBatch::new().set_profile(*v, p.clone()),
        };
        let report = engine.apply(&batch).unwrap();
        if let pcs::engine::IndexMaintenance::Patched(stats) = report.index {
            patched += 1;
            skipped_total += stats.labels_skipped;
            // Eager engines re-materialize anything the patch left
            // cold (e.g. a newly populated label), so the index stays
            // fully resident after every batch.
            let snap = engine.snapshot();
            let idx = snap.index().unwrap();
            assert_eq!(
                snap.resident_shards(),
                idx.num_populated_labels(),
                "step {step}: eager engine must stay fully resident"
            );
        }
        let snap = engine.snapshot();
        // Cores: incremental subcore traversals vs full bucket peel.
        let full_cores = CoreDecomposition::new(snap.graph());
        assert_eq!(
            snap.cores().core_numbers(),
            full_cores.core_numbers(),
            "step {step}: incremental cores diverged"
        );
        // Index: patched clone vs from-scratch build on the new state.
        // Release CI verifies every step; the unoptimized debug run
        // samples every 3rd (cores are still verified at every step).
        let index_check_stride = if cfg!(debug_assertions) { 3 } else { 1 };
        if step % index_check_stride == 0 {
            verify_deep(&engine, &format!("step {step}"));
            let fresh = CpTree::build(snap.graph(), engine.taxonomy(), snap.profiles()).unwrap();
            let max_k = full_cores.max_core() + 1;
            assert_index_equivalent(
                snap.index().expect("eager engine keeps the index fresh").into(),
                (&fresh).into(),
                engine.taxonomy(),
                snap.graph().num_vertices(),
                max_k,
            );
        }
        // Queries: every 25 steps, all algorithm families agree with a
        // reference engine built from scratch on the mutated data.
        if step % 25 == 0 {
            let reference = PcsEngine::builder()
                .graph(snap.graph().clone())
                .taxonomy(engine.taxonomy().clone())
                .profiles(snap.profiles().to_vec())
                .index_mode(IndexMode::Eager)
                .build()
                .unwrap();
            for _ in 0..3 {
                let q = rng.gen_range(0..snap.graph().num_vertices() as u32);
                let k = rng.gen_range(1..4u32);
                for algo in [Algorithm::Basic, Algorithm::Incre, Algorithm::AdvP] {
                    let live = engine.query(&QueryRequest::vertex(q).k(k).algorithm(algo)).unwrap();
                    let refr =
                        reference.query(&QueryRequest::vertex(q).k(k).algorithm(algo)).unwrap();
                    assert_eq!(
                        communities_of(&live),
                        communities_of(&refr),
                        "step {step} q {q} k {k} algo {}",
                        algo.name()
                    );
                }
            }
        }
    }
    assert!(patched > 400, "the incremental path carried the run: {patched}");
    assert!(skipped_total > 0, "bounded no-op detection never fired over 500 steps — suspicious");
}

/// The per-shard laziness differential: a lazy sharded engine absorbs
/// the same churn as an eager one and a monolithic rebuild, while cold
/// shards are deliberately queried mid-stream (materializing them
/// between patches) and further churn then patches or invalidates
/// them. At every checked step all three shapes are set-equal across
/// the whole index surface, and the lazy engine's resident shard count
/// stays a strict subset of the populated labels until probed.
#[test]
fn lazy_sharded_engine_interleaves_cold_queries_with_churn() {
    let tax = random_taxonomy(34, 4, 6, 47);
    let ds = pcs::datasets::gen::generate(&DatasetSpec::small("coldshards", 50, 13), tax);
    let stream = update_stream(&ds, &UpdateStreamSpec::new(180, 29));
    let build = |mode: IndexMode| {
        PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(mode)
            .incremental_patch_cap(1.0) // keep both on the patch path
            .build()
            .unwrap()
    };
    let lazy = build(IndexMode::Lazy);
    let eager = build(IndexMode::Eager);
    // First indexed query creates the lazy facade and materializes
    // only the touched shards.
    let (queries, _) = pcs::datasets::sample_query_vertices(&ds, 2, 6, 0xc01d);
    let q0 = queries[0];
    let first = lazy.query(&QueryRequest::vertex(q0).k(2).algorithm(Algorithm::AdvP)).unwrap();
    let eager_first =
        eager.query(&QueryRequest::vertex(q0).k(2).algorithm(Algorithm::AdvP)).unwrap();
    assert_eq!(communities_of(&first), communities_of(&eager_first));
    let resident = lazy.resident_shards();
    let populated = lazy.snapshot().index().unwrap().num_populated_labels();
    assert!(resident > 0, "an indexed query materializes at least one shard");
    assert!(
        resident < populated,
        "one query must not materialize the whole index ({resident}/{populated})"
    );
    assert_eq!(eager.resident_shards(), populated, "eager mode starts fully resident");

    let mut rng = SmallRng::seed_from_u64(0xabcd);
    let mut saw_cold_after_update = false;
    for (step, timed) in stream.iter().enumerate() {
        let batch = match &timed.op {
            StreamOp::AddEdge(a, b) => UpdateBatch::new().add_edge(*a, *b),
            StreamOp::RemoveEdge(a, b) => UpdateBatch::new().remove_edge(*a, *b),
            StreamOp::SetProfile(v, p) => UpdateBatch::new().set_profile(*v, p.clone()),
        };
        let rl = lazy.apply(&batch).unwrap();
        let re = eager.apply(&batch).unwrap();
        assert_eq!(rl.epoch, re.epoch, "step {step}: epochs diverged");
        assert_eq!(rl.noops, re.noops, "step {step}: no-op classification diverged");
        // Mid-stream cold-shard probe: a query on a random vertex
        // materializes whatever shards its lattice needs *after* the
        // index was already patched/invalidated this step.
        if step % 5 == 0 {
            let q = rng.gen_range(0..ds.graph.num_vertices() as u32);
            let k = rng.gen_range(1..4u32);
            let snap_resident = lazy.resident_shards();
            let a = lazy.query(&QueryRequest::vertex(q).k(k).algorithm(Algorithm::AdvP)).unwrap();
            let b = eager.query(&QueryRequest::vertex(q).k(k).algorithm(Algorithm::AdvP)).unwrap();
            assert_eq!(communities_of(&a), communities_of(&b), "step {step} q {q} k {k}");
            saw_cold_after_update |= lazy.resident_shards() > snap_resident;
        }
        // Checked steps: all three shapes (lazy sharded, eager sharded,
        // monolithic rebuild) set-equal across the full surface.
        let stride = if cfg!(debug_assertions) { 9 } else { 3 };
        if step % stride == 0 {
            verify_deep(&lazy, &format!("lazy, step {step}"));
            verify_deep(&eager, &format!("eager, step {step}"));
            let (sl, se) = (lazy.snapshot(), eager.snapshot());
            let fresh = CpTree::build(sl.graph(), lazy.taxonomy(), sl.profiles()).unwrap();
            let max_k = CoreDecomposition::new(sl.graph()).max_core() + 1;
            let n = sl.graph().num_vertices();
            let lazy_idx = sl.index().expect("facade survives patching");
            assert_index_equivalent(lazy_idx.into(), (&fresh).into(), lazy.taxonomy(), n, max_k);
            assert_index_equivalent(
                se.index().expect("eager index fresh").into(),
                (&fresh).into(),
                lazy.taxonomy(),
                n,
                max_k,
            );
        }
    }
    assert!(
        saw_cold_after_update,
        "the run never materialized a cold shard after an update — widen the stream"
    );
}

/// A third engine is saved and loaded mid-stream, then receives the
/// remaining updates: the persisted engine must stay indistinguishable
/// from both the continuously incremental engine and a from-scratch
/// rebuild at every checked step — the proof that a snapshot is a
/// faithful resume point, not just a read-only export.
#[test]
fn engine_saved_and_loaded_mid_stream_stays_equivalent() {
    let tax = random_taxonomy(32, 4, 6, 91);
    let ds = pcs::datasets::gen::generate(&DatasetSpec::small("persisted", 52, 61), tax);
    let stream = update_stream(&ds, &UpdateStreamSpec::new(160, 17));
    let incremental = PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    let as_batch = |timed: &TimedOp| match &timed.op {
        StreamOp::AddEdge(a, b) => UpdateBatch::new().add_edge(*a, *b),
        StreamOp::RemoveEdge(a, b) => UpdateBatch::new().remove_edge(*a, *b),
        StreamOp::SetProfile(v, p) => UpdateBatch::new().set_profile(*v, p.clone()),
    };
    let split = stream.len() / 2;
    for timed in &stream[..split] {
        incremental.apply(&as_batch(timed)).unwrap();
    }
    // Persist mid-stream and resume from disk.
    let path = std::env::temp_dir().join(format!("pcs-midstream-{}.snapshot", std::process::id()));
    incremental.save(&path).unwrap();
    let loaded = PcsEngine::builder().index_mode(IndexMode::Eager).load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded.epoch(), incremental.epoch(), "epoch resumes at the save point");

    let index_check_stride = if cfg!(debug_assertions) { 3 } else { 1 };
    for (step, timed) in stream[split..].iter().enumerate() {
        let batch = as_batch(timed);
        let ra = incremental.apply(&batch).unwrap();
        let rb = loaded.apply(&batch).unwrap();
        assert_eq!(ra.epoch, rb.epoch, "step {step}: epochs diverged");
        assert_eq!(ra.noops, rb.noops, "step {step}: no-op classification diverged");
        let (sa, sb) = (incremental.snapshot(), loaded.snapshot());
        // Cores: loaded engine vs live engine vs full bucket peel.
        let rebuilt_cores = CoreDecomposition::new(sb.graph());
        assert_eq!(
            sb.cores().core_numbers(),
            sa.cores().core_numbers(),
            "step {step}: loaded cores diverged from the incremental engine"
        );
        assert_eq!(
            sb.cores().core_numbers(),
            rebuilt_cores.core_numbers(),
            "step {step}: loaded cores diverged from a rebuild"
        );
        // Index: loaded-and-patched vs live-patched vs from-scratch.
        if step % index_check_stride == 0 {
            verify_deep(&incremental, &format!("incremental, step {step}"));
            verify_deep(&loaded, &format!("loaded, step {step}"));
            let fresh = CpTree::build(sb.graph(), loaded.taxonomy(), sb.profiles()).unwrap();
            let max_k = rebuilt_cores.max_core() + 1;
            let n = sb.graph().num_vertices();
            assert_index_equivalent(
                sb.index().expect("eager loaded engine keeps its index fresh").into(),
                sa.index().expect("eager incremental engine keeps its index fresh").into(),
                loaded.taxonomy(),
                n,
                max_k,
            );
            assert_index_equivalent(
                sb.index().unwrap().into(),
                (&fresh).into(),
                loaded.taxonomy(),
                n,
                max_k,
            );
        }
    }
}

/// The replica-convergence differential: a *durable* primary absorbs a
/// 300+-step mixed stream while a [`WalFollower`] tails its write-ahead
/// log. At every synced epoch the follower must be set-equal to the
/// primary — profiles, cores, and sampled community answers — because
/// both ran the identical batches through the identical `apply` path.
/// The follower is torn down and re-seeded twice mid-stream (once
/// replaying the full log from the epoch-0 snapshot, once from a
/// checkpoint snapshot after the primary reclaimed covered segments),
/// so convergence is proven across restarts and log truncation, not
/// just along one warm tail.
#[test]
fn wal_follower_stays_equivalent_at_every_synced_epoch() {
    let tax = random_taxonomy(30, 4, 6, 77);
    let ds = pcs::datasets::gen::generate(&DatasetSpec::small("replica", 48, 19), tax);
    let stream = update_stream(&ds, &UpdateStreamSpec::new(310, 41));
    assert!(stream.len() >= 300, "the stream must exercise 300+ steps");
    let dir = std::env::temp_dir().join(format!("pcs-replica-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let primary = PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .index_mode(IndexMode::Eager)
        .durable(&dir)
        .build()
        .unwrap();
    let as_batch = |timed: &TimedOp| match &timed.op {
        StreamOp::AddEdge(a, b) => UpdateBatch::new().add_edge(*a, *b),
        StreamOp::RemoveEdge(a, b) => UpdateBatch::new().remove_edge(*a, *b),
        StreamOp::SetProfile(v, p) => UpdateBatch::new().set_profile(*v, p.clone()),
    };
    let sync_and_check = |follower: &WalFollower, rng: &mut SmallRng, at: &str| {
        follower.poll().unwrap_or_else(|e| panic!("{at}: poll failed: {e}"));
        assert_eq!(follower.epoch(), primary.epoch(), "{at}: follower missed epochs");
        let (fs, ps) = (follower.engine().snapshot(), primary.snapshot());
        assert_eq!(fs.profiles(), ps.profiles(), "{at}: profiles diverged");
        assert_eq!(
            fs.cores().core_numbers(),
            ps.cores().core_numbers(),
            "{at}: core numbers diverged"
        );
        for _ in 0..3 {
            let q = rng.gen_range(0..ds.graph.num_vertices() as u32);
            let k = rng.gen_range(1..4u32);
            let f = follower.engine().query(&QueryRequest::vertex(q).k(k)).unwrap();
            let p = primary.query(&QueryRequest::vertex(q).k(k)).unwrap();
            assert_eq!(communities_of(&f), communities_of(&p), "{at}: q {q} k {k} diverged");
        }
    };

    let mut follower = Some(PcsEngine::builder().follow(&dir).unwrap());
    let mut rng = SmallRng::seed_from_u64(0xf0110);
    let (third, half, two_thirds) = (stream.len() / 3, stream.len() / 2, 2 * stream.len() / 3);
    let mut checkpoint_epoch = 0u64;
    for (step, timed) in stream.iter().enumerate() {
        primary.apply(&as_batch(timed)).unwrap();
        // Restart #1: drop the follower entirely and re-seed from the
        // epoch-0 snapshot — the full log tail must replay cleanly.
        if step == third {
            drop(follower.take());
            follower = Some(PcsEngine::builder().follow(&dir).unwrap());
        }
        // Checkpoint: the primary advances its snapshot and reclaims
        // covered segments. Reclaim drops *every* epoch at or below
        // the watermark, so the live follower is synced first — the
        // operational contract: reclaim only past your replicas (a
        // follower left behind gets the typed gap error and re-seeds,
        // which restart #2 below exercises).
        if step == half {
            follower.as_ref().unwrap().poll().unwrap();
            checkpoint_epoch = primary.checkpoint().unwrap();
            assert_eq!(checkpoint_epoch, primary.epoch());
        }
        // Restart #2: re-seed after the reclaim — the new follower
        // must boot from the checkpoint snapshot plus the short tail,
        // since the epoch-0 log prefix no longer exists.
        if step == two_thirds {
            drop(follower.take());
            follower = Some(PcsEngine::builder().follow(&dir).unwrap());
            assert!(
                follower.as_ref().unwrap().epoch() >= checkpoint_epoch,
                "restart after checkpoint must seed from the advanced snapshot"
            );
        }
        // Sync points: every 5th step, plus a deep verify on a stride.
        if step % 5 == 0 {
            let f = follower.as_ref().unwrap();
            sync_and_check(f, &mut rng, &format!("step {step}"));
            if step % 45 == 0 {
                verify_deep(f.engine(), &format!("follower, step {step}"));
            }
        }
    }
    // Final barrier: full surface equivalence of the follower against
    // both the primary and a from-scratch rebuild of the final state.
    let f = follower.unwrap();
    f.poll().unwrap();
    assert_eq!(f.epoch(), primary.epoch());
    let (fs, ps) = (f.engine().snapshot(), primary.snapshot());
    let fresh = CpTree::build(fs.graph(), f.engine().taxonomy(), fs.profiles()).unwrap();
    let max_k = CoreDecomposition::new(fs.graph()).max_core() + 1;
    let n = fs.graph().num_vertices();
    // Probing materializes the (lazy) follower index shard by shard;
    // it must answer exactly like the primary's eagerly patched index
    // and the monolithic rebuild. A follower that was never queried
    // may not have an index facade yet; one indexed query creates it
    // on the snapshot `fs` already holds.
    if fs.index().is_none() {
        f.engine().query(&QueryRequest::vertex(0).k(1).algorithm(Algorithm::AdvP)).unwrap();
    }
    let follower_idx = fs.index().expect("an indexed query creates the facade");
    assert_index_equivalent(
        follower_idx.into(),
        ps.index().expect("eager primary keeps its index fresh").into(),
        f.engine().taxonomy(),
        n,
        max_k,
    );
    assert_index_equivalent(follower_idx.into(), (&fresh).into(), f.engine().taxonomy(), n, max_k);
    verify_deep(f.engine(), "follower, final state");
    verify_deep(&primary, "primary, final state");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The result-cache differential: engines with the cache on (both
/// invalidation modes) must be response-equal to a cache-disabled
/// engine at every checked step of a mixed read/write stream. The read
/// pattern deliberately revisits a hot set so the caches actually
/// serve hits (asserted at the end) — a cache that was never hit would
/// make this test vacuous — and the stream's profile-only batches give
/// surgical mode real carry-over to prove sound.
#[test]
fn cached_engines_stay_equivalent_to_uncached_across_mixed_stream() {
    let tax = random_taxonomy(32, 4, 6, 63);
    let ds = pcs::datasets::gen::generate(&DatasetSpec::small("cached", 50, 27), tax);
    let stream = update_stream(&ds, &UpdateStreamSpec::new(120, 53));
    let build = |mode: CacheMode| {
        PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Eager)
            .result_cache(mode)
            .build()
            .unwrap()
    };
    let wholesale = build(CacheMode::Wholesale);
    let surgical = build(CacheMode::Surgical);
    let uncached = build(CacheMode::Off);
    let as_batch = |timed: &TimedOp| match &timed.op {
        StreamOp::AddEdge(a, b) => UpdateBatch::new().add_edge(*a, *b),
        StreamOp::RemoveEdge(a, b) => UpdateBatch::new().remove_edge(*a, *b),
        StreamOp::SetProfile(v, p) => UpdateBatch::new().set_profile(*v, p.clone()),
    };
    let mut rng = SmallRng::seed_from_u64(0xcac4e);
    let n = ds.graph.num_vertices() as u32;
    for (step, timed) in stream.iter().enumerate() {
        let batch = as_batch(timed);
        let r0 = uncached.apply(&batch).unwrap();
        for (name, engine) in [("wholesale", &wholesale), ("surgical", &surgical)] {
            let r = engine.apply(&batch).unwrap();
            assert_eq!(r.epoch, r0.epoch, "step {step}: {name} epoch diverged");
            assert_eq!(r.noops, r0.noops, "step {step}: {name} no-ops diverged");
        }
        // Mixed reads: mostly a small hot set (so later steps hit the
        // cache), occasionally a cold probe. Each request is asked
        // twice per cached engine — the second ask within a step must
        // be a same-epoch hit and still answer identically.
        for _ in 0..3 {
            let q =
                if rng.gen_bool(0.7) { rng.gen_range(0..8u32.min(n)) } else { rng.gen_range(0..n) };
            let k = rng.gen_range(1..4u32);
            let req = QueryRequest::vertex(q).k(k);
            let reference = uncached.query(&req).unwrap();
            for (name, engine) in [("wholesale", &wholesale), ("surgical", &surgical)] {
                for ask in 0..2 {
                    let resp = engine.query_cached(&req).unwrap();
                    assert_eq!(
                        communities_of(&reference),
                        communities_of(&resp),
                        "step {step} ask {ask}: {name} diverged at q {q} k {k}"
                    );
                    assert_eq!(
                        reference.total_communities, resp.total_communities,
                        "step {step} ask {ask}: {name} total diverged at q {q} k {k}"
                    );
                    assert_eq!(
                        reference.truncated(),
                        resp.truncated(),
                        "step {step} ask {ask}: {name} truncation diverged at q {q} k {k}"
                    );
                }
            }
        }
    }
    let (ws, ss, off) = (wholesale.cache_stats(), surgical.cache_stats(), uncached.cache_stats());
    assert!(ws.hits > 0, "wholesale cache never hit — the differential was vacuous");
    assert!(ss.hits > 0, "surgical cache never hit — the differential was vacuous");
    assert_eq!((off.hits, off.misses), (0, 0), "CacheMode::Off must not touch cache counters");
    // Dense random profiles share labels heavily, so cross-epoch
    // survival is rare on this stream; the carry-over semantics are
    // pinned by `surgical_cache_carries_unrelated_entries` below on a
    // taxonomy built to guarantee disjointness.
    verify_deep(&wholesale, "final state, wholesale cache");
    verify_deep(&surgical, "final state, surgical cache");
}

/// Surgical carry-over, pinned on a taxonomy with two disjoint
/// branches: a cached answer for a branch-`a` vertex must survive a
/// profile-only update confined to branch `b` (and keep answering
/// identically to a recompute), while a cached answer whose profile
/// meets the changed labels must be invalidated.
#[test]
fn surgical_cache_carries_unrelated_entries() {
    let mut tax = Taxonomy::new("root");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(Taxonomy::ROOT, "b").unwrap();
    let a1 = tax.add_child(a, "a1").unwrap();
    let b1 = tax.add_child(b, "b1").unwrap();
    // An 8-ring with chords: every vertex sits in a 2-core.
    let n = 8usize;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for d in 1..=2u32 {
            let v = (u + d) % n as u32;
            let (lo, hi) = (u.min(v), u.max(v));
            if !edges.contains(&(lo, hi)) {
                edges.push((lo, hi));
            }
        }
    }
    let graph = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|v| {
            let leaf = if v < 4 { a1 } else { b1 };
            PTree::from_labels(&tax, [leaf]).unwrap()
        })
        .collect();
    let engine = PcsEngine::builder()
        .graph(graph)
        .taxonomy(tax.clone())
        .profiles(profiles)
        .result_cache(CacheMode::Surgical)
        .build()
        .unwrap();

    // Cache one answer per branch.
    let req_a = QueryRequest::vertex(0).k(2);
    let req_b = QueryRequest::vertex(5).k(2);
    let before_a = engine.query_cached(&req_a).unwrap();
    let before_b = engine.query_cached(&req_b).unwrap();
    let seeded = engine.cache_stats();
    assert_eq!(seeded.misses, 2);

    // Reprofile vertex 7 inside branch b: symdiff = {b1}.
    let shrunk = PTree::from_labels(&tax, [b]).unwrap();
    engine.apply(&UpdateBatch::new().set_profile(7, shrunk)).unwrap();
    let carried = engine.cache_stats();
    assert_eq!(
        carried.surgical_survivals, 1,
        "exactly the branch-a entry survives the branch-b update"
    );

    // The survivor is a hit at the new epoch and equals a recompute.
    let after_a = engine.query_cached(&req_a).unwrap();
    assert_eq!(engine.cache_stats().hits, seeded.hits + 1, "branch-a entry must hit");
    assert_eq!(communities_of(&before_a), communities_of(&after_a));
    let recomputed = engine.query(&req_a).unwrap();
    assert_eq!(communities_of(&after_a), communities_of(&recomputed));

    // The branch-b entry was invalidated: a fresh miss, and the new
    // answer reflects the shrunken profile (vertex 7 left G_{b1}).
    let after_b = engine.query_cached(&req_b).unwrap();
    assert_eq!(engine.cache_stats().misses, seeded.misses + 1, "branch-b entry must miss");
    let recomputed_b = engine.query(&req_b).unwrap();
    assert_eq!(communities_of(&after_b), communities_of(&recomputed_b));
    assert_ne!(
        communities_of(&before_b),
        communities_of(&after_b),
        "the branch-b answer must actually change — otherwise this test proves nothing"
    );
}

/// Multi-op batches, all three index policies side by side, and the
/// fallback (cap 0) path — every engine must answer identically after
/// every batch.
#[test]
fn batched_updates_agree_across_policies_and_fallback() {
    let tax = random_taxonomy(36, 4, 6, 5);
    let ds = pcs::datasets::gen::generate(&DatasetSpec::small("batched", 48, 9), tax);
    let stream = update_stream(&ds, &UpdateStreamSpec::new(168, 23));
    let build = |mode: IndexMode, cap: f64| {
        PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(mode)
            .incremental_patch_cap(cap)
            .build()
            .unwrap()
    };
    let incremental = build(IndexMode::Eager, 1.0); // always patch
    let rebuilding = build(IndexMode::Eager, 0.0); // never patch: always rebuild
    let lazy = build(IndexMode::Lazy, 0.5);
    let mut rng = SmallRng::seed_from_u64(77);
    let mut saw_rebuilt = false;
    for chunk in stream.chunks(7) {
        let mut batch = UpdateBatch::new();
        for timed in chunk {
            batch.push(match &timed.op {
                StreamOp::AddEdge(a, b) => Update::AddEdge { u: *a, v: *b },
                StreamOp::RemoveEdge(a, b) => Update::RemoveEdge { u: *a, v: *b },
                StreamOp::SetProfile(v, p) => Update::SetProfile { vertex: *v, profile: p.clone() },
            });
        }
        let r1 = incremental.apply(&batch).unwrap();
        let r2 = rebuilding.apply(&batch).unwrap();
        let r3 = lazy.apply(&batch).unwrap();
        assert_eq!(r1.edges_added, r2.edges_added);
        assert_eq!(r1.noops, r3.noops);
        saw_rebuilt |= r2.index == pcs::engine::IndexMaintenance::Rebuilt;
        // All three engines answer the same queries identically.
        let n = ds.graph.num_vertices() as u32;
        for _ in 0..4 {
            let q = rng.gen_range(0..n);
            let k = rng.gen_range(1..4u32);
            let a = incremental.query(&QueryRequest::vertex(q).k(k)).unwrap();
            let b = rebuilding.query(&QueryRequest::vertex(q).k(k)).unwrap();
            let c = lazy.query(&QueryRequest::vertex(q).k(k)).unwrap();
            assert_eq!(communities_of(&a), communities_of(&b), "q {q} k {k}");
            assert_eq!(communities_of(&a), communities_of(&c), "q {q} k {k}");
        }
    }
    assert!(saw_rebuilt, "cap 0 must exercise the full-rebuild fallback");
    verify_deep(&incremental, "final state, always-patch policy");
    verify_deep(&rebuilding, "final state, always-rebuild policy");
    verify_deep(&lazy, "final state, lazy policy");
    // Final state: the always-patched index equals a fresh build.
    let snap = incremental.snapshot();
    let fresh = CpTree::build(snap.graph(), incremental.taxonomy(), snap.profiles()).unwrap();
    let max_k = CoreDecomposition::new(snap.graph()).max_core() + 1;
    assert_index_equivalent(
        snap.index().unwrap().into(),
        (&fresh).into(),
        incremental.taxonomy(),
        snap.graph().num_vertices(),
        max_k,
    );
}
