//! Fig. 10: (a) average number of communities per query and (b)
//! Community P-tree Frequency, for PCS vs ACQ vs Global vs Local.

use pcs_bench::quality::{run_all_methods, Method};
use pcs_bench::{f, header, parse_args, row};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_index::CpTree;
use pcs_metrics::cpf;

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };

    println!(
        "Fig. 10(a) — average communities per query ({} queries, k = {})\n",
        args.queries, args.k
    );
    header(&["dataset", "PCS", "ACQ", "Global", "Local"]);
    let mut all_results = Vec::new();
    for which in SuiteDataset::ALL {
        let ds = build(which, cfg);
        let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).expect("consistent dataset");
        let (queries, _) = sample_query_vertices(&ds, args.k, args.queries, args.seed ^ 0x10a);
        let results = run_all_methods(&ds, &index, &queries, args.k);
        let n = results.len().max(1) as f64;
        let avg = |m: Method| {
            f(results.iter().map(|r| r.of(m).len()).sum::<usize>() as f64 / n)
        };
        row(&[
            ds.name.clone(),
            avg(Method::Pcs),
            avg(Method::Acq),
            avg(Method::Global),
            avg(Method::Local),
        ]);
        all_results.push((ds, queries, results));
    }
    println!("\nPaper: PCS finds the most communities (more semantic focuses).\n");

    println!("Fig. 10(b) — CPF per method\n");
    header(&["dataset", "PCs*", "P-ACs", "ACQ", "Global", "Local"]);
    for (ds, queries, results) in &all_results {
        let mut cells = vec![ds.name.clone()];
        for m in [
            Method::PcsOnly,
            Method::PcsAndAcq,
            Method::Acq,
            Method::Global,
            Method::Local,
        ] {
            let mut acc = 0.0;
            let mut counted = 0usize;
            for (qi, r) in results.iter().enumerate() {
                let comms = r.of(m);
                if comms.is_empty() {
                    continue;
                }
                let tq = &ds.profiles[queries[qi] as usize];
                acc += cpf(tq, &ds.profiles, &comms);
                counted += 1;
            }
            cells.push(f(acc / counted.max(1) as f64));
        }
        row(&cells);
    }
    println!("\nPaper: the PCS series (PCs*, P-ACs) stay the most cohesive.");
}
