//! # pcs-core — profiled community search algorithms
//!
//! The paper's contribution: given a profiled graph `G`, a query vertex
//! `q`, and a degree bound `k`, find every **profiled community** (PC):
//! a connected subgraph containing `q` in which every vertex has degree
//! ≥ k, whose shared profile — the maximal common subtree `M` of all
//! member P-trees — is maximal (no qualifying supergraph has a strictly
//! larger shared subtree, and the community is the largest subgraph for
//! its subtree).
//!
//! Equivalently: for every **maximal feasible subtree** `T ⊆ T(q)`
//! (feasible ⇔ `Gk[T]`, the k-ĉore of `q` among vertices whose P-trees
//! contain `T`, is non-empty), report `Gk[T]`.
//!
//! Five query algorithms are provided, matching the paper's evaluation:
//!
//! | name | paper | strategy |
//! |---|---|---|
//! | [`Algorithm::Basic`] | Alg. 1 | bottom-up rightmost-path enumeration, verification from scratch against `Gk` |
//! | [`Algorithm::Incre`]  | Alg. 3 | same enumeration, but each verification shrinks the parent community with the CP-tree (`Gk[T'] ∩ I.get(k,q,t)`) |
//! | [`Algorithm::AdvI`]  | Alg. 8 + `find-I` | MARGIN-style boundary walking seeded by an incremental initial cut |
//! | [`Algorithm::AdvD`]  | Alg. 8 + `find-D` | … seeded decrementally from `T(q)` |
//! | [`Algorithm::AdvP`]  | Alg. 8 + `find-P` | … seeded by root-to-leaf path probes |
//!
//! All five provably return the same community set (the workspace's
//! integration tests check this on randomized profiled graphs).
//!
//! ```
//! use pcs_graph::Graph;
//! use pcs_ptree::{PTree, Taxonomy};
//! use pcs_core::{Algorithm, QueryContext};
//!
//! // Triangle where everyone shares label `a`.
//! let mut tax = Taxonomy::new("r");
//! let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
//! let profiles: Vec<PTree> =
//!     (0..3).map(|_| PTree::from_labels(&tax, [a]).unwrap()).collect();
//! let ctx = QueryContext::new(&g, &tax, &profiles).unwrap();
//! let out = ctx.query(0, 2, Algorithm::Basic).unwrap();
//! assert_eq!(out.communities.len(), 1);
//! assert_eq!(out.communities[0].vertices, vec![0, 1, 2]);
//! assert!(out.communities[0].subtree.contains(a));
//! ```

#![deny(unsafe_code)]

pub mod advanced;
pub mod basic;
pub mod incre;
pub mod problem;
pub mod stats;
pub mod truss;
pub mod verify;

pub use advanced::FindStrategy;
pub use problem::{Algorithm, PcsError, PcsOutcome, ProfiledCommunity, QueryContext, QueryStats};
pub use truss::truss_query;
pub use verify::{QueryScratch, Verifier};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PcsError>;
