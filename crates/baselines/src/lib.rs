//! # pcs-baselines — community-search baselines
//!
//! Every comparator the paper's evaluation runs against PCS, implemented
//! from scratch:
//!
//! * [`global`] — **Global** (Sozio & Gionis, KDD 2010): the maximal
//!   minimum-degree-≥-k community containing the query vertex, found by
//!   greedy peeling; plus the unconstrained max-min-degree variant.
//! * [`local`] — **Local** (Cui et al., SIGMOD 2014): local expansion
//!   around the query vertex that returns a *small* k-core community
//!   without touching the whole graph.
//! * [`acq`] — **ACQ** (Fang et al., PVLDB 2016): attributed community
//!   query. Vertices carry keyword sets (here: the flattened label sets
//!   of their P-trees, as in the paper's Section 5.2); communities are
//!   k-ĉores sharing the maximum number of the query's keywords.
//! * [`variants`] — the four profile-cohesiveness definitions compared
//!   in Section 5.3: (a) common label count, (b) common root-to-leaf
//!   paths, (c) common subtree (= PCS, the paper's choice), and (d)
//!   P-tree similarity threshold.
//!
//! All baselines produce [`pcs_core::ProfiledCommunity`] values (the
//! reported subtree is the actual maximal common subtree of the member
//! profiles) so the metrics crate can score every method uniformly.

#![deny(unsafe_code)]

pub mod acq;
pub mod global;
pub mod local;
pub mod variants;

pub use acq::{acq_query, AcqOutcome};
pub use global::{global_max_min_degree, global_query};
pub use local::local_query;
pub use variants::{variant_query, CohesivenessMetric};

use pcs_core::ProfiledCommunity;
use pcs_graph::VertexId;
use pcs_ptree::{PTree, ProfilesRef};

/// Wraps a raw vertex set into a [`ProfiledCommunity`] by computing its
/// maximal common subtree from `profiles`.
pub(crate) fn community_from_vertices(
    vertices: Vec<VertexId>,
    profiles: ProfilesRef<'_>,
) -> ProfiledCommunity {
    let subtree = PTree::intersect_all(vertices.iter().filter_map(|&v| profiles.get(v as usize)))
        .unwrap_or_else(PTree::root_only);
    ProfiledCommunity { subtree, vertices }
}
