//! Serving traffic: zipfian read/write request streams.
//!
//! Online community search serves *repeated* queries whose popularity
//! is heavily skewed — a small set of hot vertices (prolific authors,
//! celebrity accounts) absorbs most of the traffic, the long tail the
//! rest. The Leskovec et al. large-network study (PAPERS.md) is the
//! motivating regime: power-law popularity is the rule, not the
//! exception, in every large social/collaboration graph. This module
//! generates a reproducible **serving workload** against a
//! [`ProfiledDataset`]: a mixed stream of point queries (vertex drawn
//! from a zipfian rank distribution over query-eligible vertices) and
//! writes (drawn from the [`update_stream`](crate::update_stream)
//! generator), ready to be replayed by a closed-loop load generator.
//!
//! Everything is deterministic in the spec's seed, like the rest of the
//! crate.

use crate::gen::ProfiledDataset;
use crate::queries::sample_query_vertices;
use crate::updates::{update_stream, StreamOp, UpdateStreamSpec};
use pcs_graph::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One serving request.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeOp {
    /// A read: the profiled communities of `vertex` at degree bound
    /// `k`.
    Query {
        /// The query vertex.
        vertex: VertexId,
        /// The degree bound.
        k: u32,
    },
    /// A write: one mutation from the update-stream generator.
    Update(StreamOp),
}

/// Shape of a generated serving workload.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// Number of requests to emit.
    pub requests: usize,
    /// Zipf skew exponent `s` (rank `r` drawn with probability
    /// proportional to `1/r^s`). `1.0`–`1.2` matches measured web and
    /// social-query traffic; `0.0` degenerates to uniform.
    pub zipf_s: f64,
    /// Fraction of requests that are writes, `0.0..=1.0`.
    pub write_fraction: f64,
    /// Size of the popularity population: queries are drawn (by zipf
    /// rank) from this many query-eligible vertices.
    pub popularity_pool: usize,
    /// Degree bound used by every query.
    pub k: u32,
    /// RNG seed.
    pub seed: u64,
}

impl TrafficSpec {
    /// A serving default: zipf 1.1 over 256 hot vertices, 5% writes —
    /// the read-heavy regime community-search services live in.
    pub fn new(requests: usize, seed: u64) -> Self {
        TrafficSpec {
            requests,
            zipf_s: 1.1,
            write_fraction: 0.05,
            popularity_pool: 256,
            k: 6,
            seed,
        }
    }
}

/// A zipfian rank sampler over `0..n`: rank `r` (0-based) is drawn
/// with probability proportional to `1/(r+1)^s`, via inverse-CDF
/// binary search on the precomputed cumulative weights.
#[derive(Clone, Debug)]
pub struct ZipfRanks {
    cdf: Vec<f64>,
}

impl ZipfRanks {
    /// Precomputes the cumulative distribution for `n` ranks at skew
    /// `s`. `n` must be positive; `s = 0` is uniform.
    pub fn new(n: usize, s: f64) -> ZipfRanks {
        assert!(n > 0, "zipf population must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        for w in &mut cdf {
            *w /= total;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfRanks { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the population is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point: first rank whose cumulative weight covers u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Generates a serving workload against `ds`.
///
/// The query population is drawn from
/// [`sample_query_vertices`] at the spec's `k` (so hot vertices are
/// ones whose queries do real work — they sit in a `k`-core), then
/// zipf-ranked in sampled order. Writes replay an
/// [`update_stream`] in order, so the usual guarantees hold: removals
/// name live edges, insertions missing ones, plus the deliberate no-op
/// dose a robust ingestion path must absorb.
pub fn serve_traffic(ds: &ProfiledDataset, spec: &TrafficSpec) -> Vec<ServeOp> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let (pool, _) =
        sample_query_vertices(ds, spec.k, spec.popularity_pool.max(1), spec.seed ^ 0x7a);
    assert!(!pool.is_empty(), "no query-eligible vertices at k = {}", spec.k);
    let zipf = ZipfRanks::new(pool.len(), spec.zipf_s);

    // Pre-generate the write side: expected write count plus slack so
    // an unlucky bernoulli run cannot exhaust it.
    let write_fraction = spec.write_fraction.clamp(0.0, 1.0);
    let expected_writes = ((spec.requests as f64) * write_fraction).ceil() as usize;
    let mut writes = if expected_writes > 0 {
        update_stream(ds, &UpdateStreamSpec::new(expected_writes * 2 + 8, spec.seed ^ 0x3b))
            .into_iter()
            .map(|t| t.op)
            .collect::<Vec<_>>()
    } else {
        Vec::new()
    }
    .into_iter();

    let mut out = Vec::with_capacity(spec.requests);
    for _ in 0..spec.requests {
        let is_write = write_fraction > 0.0 && rng.gen_bool(write_fraction);
        if is_write {
            if let Some(op) = writes.next() {
                out.push(ServeOp::Update(op));
                continue;
            }
        }
        let rank = zipf.sample(&mut rng);
        let vertex = pool[rank.min(pool.len() - 1)];
        out.push(ServeOp::Query { vertex, k: spec.k });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec};
    use crate::taxonomy::random_taxonomy;
    use pcs_graph::FxHashMap;

    fn dataset() -> ProfiledDataset {
        generate(&DatasetSpec::small("traffic", 150, 6), random_taxonomy(60, 4, 6, 2))
    }

    #[test]
    fn traffic_is_deterministic_in_seed() {
        let ds = dataset();
        let spec = TrafficSpec { k: 3, ..TrafficSpec::new(300, 5) };
        assert_eq!(serve_traffic(&ds, &spec), serve_traffic(&ds, &spec));
        let other = TrafficSpec { seed: 6, ..spec };
        assert_ne!(serve_traffic(&ds, &spec), serve_traffic(&ds, &other));
    }

    #[test]
    fn mix_and_ranges_match_the_spec() {
        let ds = dataset();
        let spec = TrafficSpec { k: 3, write_fraction: 0.2, ..TrafficSpec::new(1000, 11) };
        let ops = serve_traffic(&ds, &spec);
        assert_eq!(ops.len(), 1000);
        let n = ds.graph.num_vertices() as u32;
        let writes = ops.iter().filter(|o| matches!(o, ServeOp::Update(_))).count();
        // Bernoulli(0.2) over 1000 draws: [120, 280] is > 6 sigma.
        assert!((120..=280).contains(&writes), "writes: {writes}");
        for op in &ops {
            match op {
                ServeOp::Query { vertex, k } => {
                    assert!(*vertex < n && *k == 3);
                }
                ServeOp::Update(StreamOp::AddEdge(a, b))
                | ServeOp::Update(StreamOp::RemoveEdge(a, b)) => {
                    assert!(*a < n && *b < n && a != b);
                }
                ServeOp::Update(StreamOp::SetProfile(v, p)) => {
                    assert!(*v < n);
                    assert!(ds.tax.is_ancestor_closed(p.nodes()));
                }
            }
        }
    }

    #[test]
    fn query_popularity_is_zipf_skewed() {
        let ds = dataset();
        let spec = TrafficSpec {
            k: 3,
            write_fraction: 0.0,
            popularity_pool: 64,
            ..TrafficSpec::new(4000, 21)
        };
        let ops = serve_traffic(&ds, &spec);
        let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
        for op in &ops {
            if let ServeOp::Query { vertex, .. } = op {
                *counts.entry(*vertex).or_insert(0) += 1;
            }
        }
        let distinct = counts.len();
        let max = counts.values().copied().max().unwrap_or(0);
        let uniform_share = ops.len() / distinct.max(1);
        // The hottest vertex must absorb far more than a uniform share.
        assert!(
            max > uniform_share * 3,
            "hottest vertex got {max} of {} requests over {distinct} vertices \
             (uniform share {uniform_share}) — not zipfian",
            ops.len()
        );
    }

    #[test]
    fn zipf_sampler_is_well_formed() {
        let z = ZipfRanks::new(100, 1.1);
        assert_eq!(z.len(), 100);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut first_two = 0usize;
        for _ in 0..1000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            if r < 2 {
                first_two += 1;
            }
        }
        // Ranks 0 and 1 carry ~37% of the mass at s = 1.1 over n=100.
        assert!(first_two > 200, "top-2 ranks drew {first_two}/1000");
        // s = 0 is uniform: top-2 of 100 ranks stays near 2%.
        let u = ZipfRanks::new(100, 0.0);
        let mut first_two_u = 0usize;
        for _ in 0..1000 {
            if u.sample(&mut rng) < 2 {
                first_two_u += 1;
            }
        }
        assert!(first_two_u < 100, "uniform top-2 drew {first_two_u}/1000");
    }
}
