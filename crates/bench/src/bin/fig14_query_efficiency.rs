//! Fig. 14: query efficiency and scalability of the five PCS
//! algorithms, plus the find-function comparison.
//!
//! Sections (select with `--section`):
//! * `k`      — (a-d)  total query time while k varies 4..8;
//! * `vertex` — (e-h)  20-100 % of the vertices (k fixed);
//! * `ptree`  — (i-l)  20-100 % of each P-tree;
//! * `gptree` — (m-p)  20-100 % of the GP-tree;
//! * `find`   — (q-t)  find-I vs find-D vs find-P initial-cut time;
//! * `all`    — everything.
//!
//! `basic` only participates in the `k` section (as in the paper, which
//! drops it afterwards for being orders of magnitude slower) and runs
//! on a reduced query count to keep the harness fast.
//!
//! Queries run through the owned [`PcsEngine`] facade (the serving
//! path); only the find-function section reaches through
//! [`PcsEngine::with_context`] to the paper-layer internals.

use std::time::{Duration, Instant};

use pcs_bench::{engine_for, engine_owning, header, parse_args, row, HarnessArgs};
use pcs_core::advanced::{find_cut, FindStrategy};
use pcs_core::{Algorithm, Verifier};
use pcs_datasets::scale::{subsample_gptree, subsample_ptrees, subsample_vertices};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{gen::ProfiledDataset, sample_query_vertices, SuiteDataset};
use pcs_engine::{PcsEngine, QueryRequest};
use pcs_graph::VertexId;

const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];
const KS: [u32; 5] = [4, 5, 6, 7, 8];

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };
    let datasets: Vec<_> = SuiteDataset::ALL.iter().map(|&w| build(w, cfg)).collect();

    let section = args.section.as_str();
    if section == "k" || section == "all" {
        section_vary_k(&datasets, &args);
    }
    if section == "vertex" || section == "all" {
        section_fraction(&datasets, &args, "vertex", "Fig. 14(e-h) — % of vertices");
    }
    if section == "ptree" || section == "all" {
        section_fraction(&datasets, &args, "ptree", "Fig. 14(i-l) — % of each P-tree");
    }
    if section == "gptree" || section == "all" {
        section_fraction(&datasets, &args, "gptree", "Fig. 14(m-p) — % of the GP-tree");
    }
    if section == "find" || section == "all" {
        section_find(&datasets, &args);
    }
}

/// Total time to answer `queries` with `algo` (sequential, one request
/// at a time — per-query latency is what Fig. 14 reports).
fn run_algo(engine: &PcsEngine, queries: &[VertexId], k: u32, algo: Algorithm) -> Duration {
    let start = Instant::now();
    for &q in queries {
        let _ =
            engine.query(&QueryRequest::vertex(q).k(k).algorithm(algo)).expect("query in range");
    }
    start.elapsed()
}

fn section_vary_k(datasets: &[ProfiledDataset], args: &HarnessArgs) {
    println!("\nFig. 14(a-d) — query time (ms) while k varies\n");
    for ds in datasets {
        println!("dataset: {} ({} queries; basic limited to 2)\n", ds.name, args.queries);
        header(&["k", "basic", "incre", "adv-I", "adv-D", "adv-P"]);
        let engine = engine_for(ds);
        for k in KS {
            let (queries, _) = sample_query_vertices(ds, k, args.queries, args.seed ^ 0x14);
            let basic_queries = &queries[..queries.len().min(2)];
            let mut cells = vec![k.to_string()];
            // basic gets a reduced workload, normalized back up so
            // the magnitudes stay comparable.
            let basic = run_algo(&engine, basic_queries, k, Algorithm::Basic);
            let scale = queries.len() as f64 / basic_queries.len().max(1) as f64;
            cells.push(format!("{:.1}", basic.as_secs_f64() * 1e3 * scale));
            for algo in [Algorithm::Incre, Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP] {
                let took = run_algo(&engine, &queries, k, algo);
                cells.push(format!("{:.1}", took.as_secs_f64() * 1e3));
            }
            row(&cells);
        }
        println!();
    }
    println!("Paper: basic is 100x+ slower than incre; adv-D/adv-P are ~10x faster than incre.");
}

fn section_fraction(datasets: &[ProfiledDataset], args: &HarnessArgs, axis: &str, title: &str) {
    println!("\n{title} — query time (ms), k = {}\n", args.k);
    for ds in datasets {
        println!("dataset: {}\n", ds.name);
        header(&["fraction", "incre", "adv-I", "adv-D", "adv-P"]);
        for &frac in &FRACTIONS {
            let sub = match axis {
                "vertex" => subsample_vertices(ds, frac, args.seed ^ 0x14e),
                "ptree" => subsample_ptrees(ds, frac, args.seed ^ 0x14e),
                _ => subsample_gptree(ds, frac, args.seed ^ 0x14e),
            };
            let (queries, _) = sample_query_vertices(&sub, args.k, args.queries, args.seed ^ 7);
            let mut cells = vec![format!("{:.0}%", frac * 100.0)];
            // The subsample is dead after sampling; move it into the
            // engine instead of cloning a second copy.
            let engine = engine_owning(sub);
            for algo in [Algorithm::Incre, Algorithm::AdvI, Algorithm::AdvD, Algorithm::AdvP] {
                let took = run_algo(&engine, &queries, args.k, algo);
                cells.push(format!("{:.1}", took.as_secs_f64() * 1e3));
            }
            row(&cells);
        }
        println!();
    }
}

fn section_find(datasets: &[ProfiledDataset], args: &HarnessArgs) {
    println!("\nFig. 14(q-t) — initial-cut time (ms) while k varies\n");
    for ds in datasets {
        println!("dataset: {}\n", ds.name);
        header(&["k", "find-I", "find-D", "find-P"]);
        let engine = engine_for(ds);
        engine
            .with_context(|ctx| {
                for k in KS {
                    let (queries, _) =
                        sample_query_vertices(ds, k, args.queries, args.seed ^ 0x14f);
                    let mut cells = vec![k.to_string()];
                    for strategy in FindStrategy::ALL {
                        let start = Instant::now();
                        for &q in &queries {
                            let space = ctx.space_for(q).expect("query in range");
                            let mut ver = Verifier::new(ctx, &space, q, k);
                            if ver.gk().is_some() {
                                let _ = find_cut(&mut ver, strategy);
                            }
                        }
                        cells.push(format!("{:.1}", start.elapsed().as_secs_f64() * 1e3));
                    }
                    row(&cells);
                }
            })
            .expect("engine state is consistent");
        println!();
    }
    println!("Paper: find-P and find-D are 10-100x faster than find-I.");
}
