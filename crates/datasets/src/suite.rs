//! The four paper datasets (Table 2) at a configurable scale.
//!
//! | dataset | vertices | edges | d̂ | P̂ | GP-tree |
//! |---|---|---|---|---|---|
//! | ACMDL  | 107 656 | 717 958   | 13.34 | 11.54 | 1 908 |
//! | Flickr | 581 099 | 4 972 274 | 17.11 | 26.63 | 1 908 |
//! | PubMed | 716 459 | 4 742 606 | 13.22 | 27.10 | 10 132 |
//! | DBLP   | 977 288 | 6 864 546 | 14.04 | 37.98 | 1 908 |
//!
//! `scale` multiplies the vertex counts (degree and P-tree statistics
//! are preserved); the taxonomies keep their real sizes since they are
//! not what grows with the graph.

use crate::gen::{generate, DatasetSpec, ProfiledDataset};
use crate::taxonomy;

/// Which paper dataset to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SuiteDataset {
    /// ACM Digital Library co-authorship (CCS profiles).
    Acmdl,
    /// Flickr follower network (hash-mapped CCS profiles).
    Flickr,
    /// PubMed co-authorship (MeSH profiles).
    Pubmed,
    /// DBLP co-authorship (hash-mapped CCS profiles).
    Dblp,
}

impl SuiteDataset {
    /// All four, in Table 2 order.
    pub const ALL: [SuiteDataset; 4] =
        [SuiteDataset::Acmdl, SuiteDataset::Flickr, SuiteDataset::Pubmed, SuiteDataset::Dblp];

    /// Display name (with the "-like" suffix marking the substitution).
    pub fn name(self) -> &'static str {
        match self {
            SuiteDataset::Acmdl => "ACMDL-like",
            SuiteDataset::Flickr => "Flickr-like",
            SuiteDataset::Pubmed => "PubMed-like",
            SuiteDataset::Dblp => "DBLP-like",
        }
    }

    /// Paper vertex count (scale 1.0).
    pub fn paper_vertices(self) -> usize {
        match self {
            SuiteDataset::Acmdl => 107_656,
            SuiteDataset::Flickr => 581_099,
            SuiteDataset::Pubmed => 716_459,
            SuiteDataset::Dblp => 977_288,
        }
    }

    /// Paper average degree `d̂`.
    pub fn paper_avg_degree(self) -> f64 {
        match self {
            SuiteDataset::Acmdl => 13.34,
            SuiteDataset::Flickr => 17.11,
            SuiteDataset::Pubmed => 13.22,
            SuiteDataset::Dblp => 14.04,
        }
    }

    /// Paper average P-tree size `P̂`.
    pub fn paper_avg_ptree(self) -> f64 {
        match self {
            SuiteDataset::Acmdl => 11.54,
            SuiteDataset::Flickr => 26.63,
            SuiteDataset::Pubmed => 27.10,
            SuiteDataset::Dblp => 37.98,
        }
    }

    /// Taxonomy size (CCS 1 908 / MeSH 10 132).
    pub fn taxonomy_labels(self) -> usize {
        match self {
            SuiteDataset::Pubmed => 10_132,
            _ => 1_908,
        }
    }
}

/// Scale and seeding for the suite.
#[derive(Clone, Copy, Debug)]
pub struct SuiteConfig {
    /// Vertex-count multiplier against the paper sizes.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for SuiteConfig {
    /// Scale 0.02 keeps the full suite laptop-fast (ACMDL ≈ 2.1k,
    /// DBLP ≈ 19.5k vertices) while preserving every per-vertex
    /// statistic; raise it to approach paper sizes.
    fn default() -> Self {
        SuiteConfig { scale: 0.02, seed: DEFAULT_SEED }
    }
}

/// Master seed used by [`SuiteConfig::default`].
pub const DEFAULT_SEED: u64 = 0x9c5_5eed;

/// Builds one suite dataset.
pub fn build(which: SuiteDataset, cfg: SuiteConfig) -> ProfiledDataset {
    let tax = match which {
        SuiteDataset::Pubmed => taxonomy::mesh_like(cfg.seed ^ 0x7a07),
        _ => taxonomy::ccs_like(cfg.seed ^ 0x7a07),
    };
    let vertices = ((which.paper_vertices() as f64 * cfg.scale) as usize).max(200);
    let spec = DatasetSpec {
        name: which.name().to_owned(),
        vertices,
        avg_degree: which.paper_avg_degree(),
        avg_ptree: which.paper_avg_ptree(),
        group_size: 24,
        groups_per_vertex: 1.3,
        intra_fraction: 0.75,
        theme_fraction: 0.55,
        seed: cfg.seed ^ (which as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    };
    generate(&spec, tax)
}

/// Builds all four suite datasets.
pub fn build_all(cfg: SuiteConfig) -> Vec<ProfiledDataset> {
    SuiteDataset::ALL.iter().map(|&d| build(d, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_builds_smallest_dataset() {
        let cfg = SuiteConfig::default();
        let ds = build(SuiteDataset::Acmdl, cfg);
        assert_eq!(ds.name, "ACMDL-like");
        let v = ds.graph.num_vertices();
        assert!((2000..2400).contains(&v), "vertices {v}");
        assert_eq!(ds.tax.len(), 1908);
        let d = ds.graph.avg_degree();
        assert!((d - 13.34).abs() < 3.0, "degree {d}");
        let p = ds.avg_ptree_size();
        assert!((p - 11.54).abs() < 4.0, "ptree {p}");
    }

    #[test]
    fn pubmed_uses_mesh() {
        let cfg = SuiteConfig { scale: 0.003, ..SuiteConfig::default() }; // tiny
        let ds = build(SuiteDataset::Pubmed, cfg);
        assert_eq!(ds.tax.len(), 10_132);
        assert!(ds.graph.num_vertices() >= 200);
    }

    #[test]
    fn metadata_is_consistent() {
        for d in SuiteDataset::ALL {
            assert!(d.paper_vertices() > 100_000);
            assert!(d.paper_avg_degree() > 10.0);
            assert!(d.paper_avg_ptree() > 10.0);
            assert!(!d.name().is_empty());
        }
    }
}
