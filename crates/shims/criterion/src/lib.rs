//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], sample
//! counts, [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on top of a plain wall-clock loop.
//! No plots, no statistics beyond mean/min/max, no baselines; results
//! print one line per benchmark:
//!
//! ```text
//! group/name              time: [mean 1.234 ms] min 1.1 ms max 1.4 ms (10 samples)
//! ```
//!
//! Binaries run under `cargo test` (Cargo passes `--test`) execute each
//! closure once so benches stay compile- and run-checked in CI without
//! paying measurement time.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("build", "50%")` displays as `build/50%`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-iteration timing hook handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    smoke_only: bool,
    last: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke_only {
            black_box(routine());
            return;
        }
        // One warm-up call, then timed samples.
        black_box(routine());
        self.last.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.last.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            smoke_only: self.criterion.smoke_only,
            last: Vec::new(),
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        if self.criterion.smoke_only {
            println!("{full:<40} ok (smoke)");
            return;
        }
        if bencher.last.is_empty() {
            println!("{full:<40} (no samples recorded)");
            return;
        }
        let total: Duration = bencher.last.iter().sum();
        let mean = total / bencher.last.len() as u32;
        let min = bencher.last.iter().min().copied().unwrap_or_default();
        let max = bencher.last.iter().max().copied().unwrap_or_default();
        println!(
            "{full:<40} time: [mean {mean:>10.3?}] min {min:.3?} max {max:.3?} ({} samples)",
            bencher.last.len()
        );
    }

    /// Ends the group (kept for API parity; all output is streamed).
    pub fn finish(&mut self) {}
}

/// Top-level harness state.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    /// Reads the process arguments the way Cargo invokes bench
    /// binaries: `--test` (from `cargo test`) switches to smoke mode.
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
        Criterion { smoke_only: smoke }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup { criterion: self, name: "bench".into(), sample_size: 100 };
        let mut f = f;
        group.run(&id.to_string(), |b| f(b));
        self
    }
}

/// Bundles benchmark functions under one name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags like
            // `--test` or `--bench`; `Criterion::default()` inspects
            // them, so nothing to parse here.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("build", "50%").to_string(), "build/50%");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { smoke_only: false };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.sample_size(5).bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke_only: true };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}
