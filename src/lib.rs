//! # pcs — profiled community search
//!
//! A from-scratch Rust implementation of **"Exploring Communities in
//! Large Profiled Graphs"** (Chen, Fang, Cheng, Li, Chen, Zhang — ICDE
//! 2019): community search over graphs whose vertices carry
//! hierarchical attribute trees (P-trees) drawn from a global taxonomy
//! (GP-tree, e.g. ACM CCS or MeSH).
//!
//! Given a query vertex `q` and a degree bound `k`, a **profiled
//! community** is a connected subgraph containing `q` in which every
//! vertex has internal degree ≥ `k` and whose members share a *maximal*
//! common subtree — the community's interpretable "theme".
//!
//! ## Crates
//!
//! | module | backing crate | contents |
//! |---|---|---|
//! | [`engine`] | `pcs-engine` | owned, `Send + Sync` serving facade: `PcsEngine`, request/response API |
//! | [`graph`] | `pcs-graph` | CSR graph, k-core decomposition, localized peeling |
//! | [`ptree`] | `pcs-ptree` | taxonomy, P-trees, subtree lattice, tree edit distance |
//! | [`index`] | `pcs-index` | CL-tree and CP-tree indexes |
//! | [`core`]  | `pcs-core`  | `basic`, `incre`, `adv-I/D/P` query algorithms |
//! | [`baselines`] | `pcs-baselines` | Global, Local, ACQ, §5.3 metric variants |
//! | [`metrics`] | `pcs-metrics` | CPS, LDR, CPF, F1 |
//! | [`datasets`] | `pcs-datasets` | paper-calibrated synthetic datasets |
//! | [`store`] | `pcs-store` | versioned, checksummed on-disk engine snapshots |
//! | [`serve`] | `pcs-serve` | std-only HTTP/1.1 serving layer + closed-loop load generator |
//!
//! ## Quickstart
//!
//! Load (or generate) a profiled graph once, hand it to the engine,
//! then serve queries — the CP-tree index and the core decomposition
//! are built lazily and cached; `Algorithm::Auto` routes each query to
//! `adv-P` when the index is available and `basic` otherwise.
//!
//! ```
//! use pcs::prelude::*;
//!
//! // A tiny collaboration triangle where everyone works on ML and AI.
//! let mut tax = Taxonomy::new("r");
//! let cm = tax.add_child(Taxonomy::ROOT, "CM").unwrap();
//! let ml = tax.add_child(cm, "ML").unwrap();
//! let ai = tax.add_child(cm, "AI").unwrap();
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
//! let profiles: Vec<PTree> = (0..3)
//!     .map(|_| PTree::from_labels(&tax, [ml, ai]).unwrap())
//!     .collect();
//!
//! // Build once (ownership moves in; validation happens here)...
//! let engine = PcsEngine::builder()
//!     .graph(g)
//!     .taxonomy(tax)
//!     .profiles(profiles)
//!     .build()
//!     .unwrap();
//!
//! // ...query online, as often as you like, from any thread.
//! let resp = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
//! assert_eq!(resp.communities().len(), 1);
//! assert_eq!(resp.communities()[0].vertices, vec![0, 1, 2]);
//!
//! // Batches fan out across threads and preserve order.
//! let reqs: Vec<QueryRequest> =
//!     (0..3).map(|v| QueryRequest::vertex(v).k(2)).collect();
//! for result in engine.query_batch(&reqs) {
//!     assert_eq!(result.unwrap().communities().len(), 1);
//! }
//! ```
//!
//! ## Migrating from `QueryContext`
//!
//! [`QueryContext`](pcs_core::QueryContext) remains public as the
//! borrowed reproduction layer (the engine delegates to it), but
//! application code should move to the facade:
//!
//! | before (borrowed) | after (owned) |
//! |---|---|
//! | `QueryContext::new(&g, &tax, &profiles)?` | `PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build()?` |
//! | `let idx = CpTree::build(..)?; ctx.with_index(&idx)` | automatic — lazy by default; `.index_mode(IndexMode::Eager)` to prebuild |
//! | `ctx.query(q, k, Algorithm::AdvP)?` | `engine.query(&QueryRequest::vertex(q).k(k))?` |
//! | `out.communities` | `resp.communities()` (plus `resp.elapsed`, `resp.index_used`, `resp.stats`) |
//! | `PcsError` / `IndexError` per call site | one `pcs_engine::Error` |
//!
//! The engine is `Send + Sync`, so one instance serves every thread:
//! wrap it in `Arc` (or keep it in `std::thread::scope`) and call
//! [`query`](pcs_engine::PcsEngine::query) concurrently, or hand a
//! whole slice of requests to
//! [`query_batch`](pcs_engine::PcsEngine::query_batch).

#![deny(unsafe_code)]

pub use pcs_baselines as baselines;
pub use pcs_core as core;
pub use pcs_datasets as datasets;
pub use pcs_engine as engine;
pub use pcs_graph as graph;
pub use pcs_index as index;
pub use pcs_metrics as metrics;
pub use pcs_ptree as ptree;
pub use pcs_serve as serve;
pub use pcs_store as store;

/// One-stop imports for applications.
pub mod prelude {
    pub use pcs_baselines::{
        acq_query, global_query, local_query, variant_query, CohesivenessMetric,
    };
    pub use pcs_core::{
        Algorithm, FindStrategy, PcsError, PcsOutcome, ProfiledCommunity, QueryContext,
    };
    pub use pcs_datasets::{
        update_stream, DatasetSpec, ProfiledDataset, StreamOp, SuiteConfig, SuiteDataset, TimedOp,
        UpdateStreamSpec,
    };
    pub use pcs_engine::{
        CacheMode, EngineBuilder, EngineSnapshot, Error as EngineError, IndexMode, PcsEngine,
        QueryRequest, QueryResponse, Update, UpdateBatch, UpdateReport, WalFollower,
    };
    pub use pcs_graph::{DynamicGraph, Graph, GraphBuilder, VertexId};
    pub use pcs_index::{ClTree, CpTree, IndexRef, IndexShard, ShardedCpIndex};
    pub use pcs_metrics::{best_f1, cpf, cps, f1_score, ldr};
    pub use pcs_ptree::{LabelId, PTree, Taxonomy};
    pub use pcs_serve::{
        run_load, HttpFollower, LoadConfig, LoadOp, LoadReport, PcsServer, ReplicaConfig,
        ServeConfig, StatsSnapshot,
    };
    pub use pcs_store::{SnapshotFile, StoreError, WalOptions};
}
