//! Shared machinery for the effectiveness experiments (Figs. 9-12).
//!
//! Runs the full method zoo — PCS, ACQ, Global, Local — over a query
//! workload and keeps each method's communities per query, including
//! the paper's two derived series: `P-ACs` (communities found by both
//! PCS and ACQ) and `PCs*` (communities only PCS finds).

use pcs_baselines::{acq_query, global_query, local_query};
use pcs_core::{Algorithm, ProfiledCommunity, QueryContext};
use pcs_datasets::ProfiledDataset;
use pcs_graph::VertexId;
use pcs_index::CpTree;

/// Method identifiers used in the quality figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Communities only PCS finds (not returned by ACQ).
    PcsOnly,
    /// Communities found by both PCS and ACQ.
    PcsAndAcq,
    /// All PCS communities.
    Pcs,
    /// ACQ communities.
    Acq,
    /// Global (structure-only, maximal).
    Global,
    /// Local (structure-only, expansion).
    Local,
}

impl Method {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Method::PcsOnly => "PCs*",
            Method::PcsAndAcq => "P-ACs",
            Method::Pcs => "PCS",
            Method::Acq => "ACQ",
            Method::Global => "Global",
            Method::Local => "Local",
        }
    }
}

/// All per-query community lists for one query vertex.
#[derive(Clone, Debug, Default)]
pub struct QueryResults {
    /// PCS communities.
    pub pcs: Vec<ProfiledCommunity>,
    /// ACQ communities.
    pub acq: Vec<ProfiledCommunity>,
    /// Global community (0 or 1 entries).
    pub global: Vec<ProfiledCommunity>,
    /// Local community (0 or 1 entries).
    pub local: Vec<ProfiledCommunity>,
}

impl QueryResults {
    /// Communities found by both PCS and ACQ (matched by vertex set).
    pub fn pcs_and_acq(&self) -> Vec<ProfiledCommunity> {
        self.pcs
            .iter()
            .filter(|p| self.acq.iter().any(|a| a.vertices == p.vertices))
            .cloned()
            .collect()
    }

    /// Communities only PCS finds.
    pub fn pcs_only(&self) -> Vec<ProfiledCommunity> {
        self.pcs
            .iter()
            .filter(|p| self.acq.iter().all(|a| a.vertices != p.vertices))
            .cloned()
            .collect()
    }

    /// The community list of a method.
    pub fn of(&self, m: Method) -> Vec<ProfiledCommunity> {
        match m {
            Method::PcsOnly => self.pcs_only(),
            Method::PcsAndAcq => self.pcs_and_acq(),
            Method::Pcs => self.pcs.clone(),
            Method::Acq => self.acq.clone(),
            Method::Global => self.global.clone(),
            Method::Local => self.local.clone(),
        }
    }
}

/// Runs every method for each query vertex.
pub fn run_all_methods(
    ds: &ProfiledDataset,
    index: &CpTree,
    queries: &[VertexId],
    k: u32,
) -> Vec<QueryResults> {
    let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles)
        .expect("dataset is consistent")
        .with_index(index);
    queries
        .iter()
        .map(|&q| {
            let pcs = ctx
                .query(q, k, Algorithm::AdvP)
                .map(|o| o.communities)
                .unwrap_or_default();
            let acq = acq_query(&ds.graph, &ds.tax, &ds.profiles, q, k)
                .communities
                .into_iter()
                .map(|c| c.community)
                .collect();
            let global = global_query(&ds.graph, &ds.profiles, q, k)
                .into_iter()
                .collect();
            let local = local_query(&ds.graph, &ds.profiles, q, k, usize::MAX)
                .into_iter()
                .collect();
            QueryResults { pcs, acq, global, local }
        })
        .collect()
}
