//! Community P-tree Frequency (Eq. 4 of the paper).
//!
//! Document-frequency-style cohesiveness: for every node of the query's
//! P-tree and every returned community, measure the fraction of members
//! whose profile contains that node, then average:
//!
//! `CPF(q) = (1/(|G|·|T(q)|)) Σ_i Σ_j fre_{i,j} / |G_i|`
//!
//! Ranges over `[0, 1]`; higher = the query's themes are widely carried
//! by the returned communities.

use pcs_core::ProfiledCommunity;
use pcs_ptree::PTree;

/// CPF for one query (Eq. 4). Returns 0 when no communities were
/// returned.
pub fn cpf(tq: &PTree, profiles: &[PTree], communities: &[ProfiledCommunity]) -> f64 {
    if communities.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for comm in communities {
        if comm.vertices.is_empty() {
            continue;
        }
        let size = comm.vertices.len() as f64;
        for &node in tq.nodes() {
            let fre = comm.vertices.iter().filter(|&&v| profiles[v as usize].contains(node)).count()
                as f64;
            acc += fre / size;
        }
    }
    acc / (communities.len() as f64 * tq.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_ptree::Taxonomy;

    fn setup() -> (Taxonomy, Vec<PTree>) {
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [a, b]).unwrap(),
            PTree::from_labels(&t, [a]).unwrap(),
            PTree::from_labels(&t, [b]).unwrap(),
        ];
        (t, profiles)
    }

    #[test]
    fn full_overlap_scores_one() {
        let (t, profiles) = setup();
        let tq = PTree::from_labels(&t, [t.id_of("a").unwrap()]).unwrap();
        let comm = ProfiledCommunity { subtree: tq.clone(), vertices: vec![0, 1] };
        let score = cpf(&tq, &profiles, &[comm]);
        assert!((score - 1.0).abs() < 1e-12, "{score}");
    }

    #[test]
    fn partial_overlap_scores_fraction() {
        let (t, profiles) = setup();
        // T(q) = {r, a}; community = {0, 2}: node r in 2/2, node a in 1/2.
        let tq = PTree::from_labels(&t, [t.id_of("a").unwrap()]).unwrap();
        let comm = ProfiledCommunity { subtree: PTree::root_only(), vertices: vec![0, 2] };
        let score = cpf(&tq, &profiles, &[comm]);
        assert!((score - 0.75).abs() < 1e-12, "{score}");
    }

    #[test]
    fn empty_inputs_are_zero() {
        let (t, profiles) = setup();
        let tq = PTree::from_labels(&t, [t.id_of("a").unwrap()]).unwrap();
        assert_eq!(cpf(&tq, &profiles, &[]), 0.0);
    }

    #[test]
    fn averaged_over_communities() {
        let (t, profiles) = setup();
        let tq = PTree::from_labels(&t, [t.id_of("a").unwrap()]).unwrap();
        let perfect = ProfiledCommunity { subtree: tq.clone(), vertices: vec![0, 1] };
        let half = ProfiledCommunity { subtree: PTree::root_only(), vertices: vec![0, 2] };
        let score = cpf(&tq, &profiles, &[perfect, half]);
        assert!((score - 0.875).abs() < 1e-12, "{score}");
    }
}
