//! # pcs-graph — graph substrate for profiled community search
//!
//! This crate provides every piece of graph machinery the PCS paper
//! (Chen et al., *Exploring Communities in Large Profiled Graphs*, ICDE
//! 2019) depends on, implemented from scratch:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) undirected graph,
//!   the storage format every algorithm in the workspace runs against;
//! * [`core`](crate::core) — the O(m) k-core decomposition of Batagelj &
//!   Zaversnik, connected k-ĉore extraction, and *localized* k-core
//!   peeling restricted to a candidate vertex subset (the inner loop of
//!   community verification);
//! * [`components`] — BFS-based connected components;
//! * [`hash`] — an FxHash-style integer hasher with [`FxHashMap`] /
//!   [`FxHashSet`] aliases (SipHash is needlessly slow for dense integer
//!   keys; see the Rust perf book);
//! * [`bitset`] — dynamic and epoch-stamped vertex sets used to make the
//!   hot verification path allocation-free;
//! * [`unionfind`] — a union-find with path halving + union by size, used
//!   by the CL-tree construction in `pcs-index`;
//! * [`gen`] — seeded random-graph primitives (G(n,m), preferential
//!   attachment, planted overlapping groups) backing `pcs-datasets`;
//! * [`io`] — a plain-text edge-list reader/writer.
//!
//! ## Quick example
//!
//! ```
//! use pcs_graph::{Graph, core::CoreDecomposition};
//!
//! // A triangle hanging off a pendant vertex.
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
//! let cores = CoreDecomposition::new(&g);
//! assert_eq!(cores.core_number(0), 2);
//! assert_eq!(cores.core_number(3), 1);
//! // The connected 2-core containing vertex 0 is the triangle.
//! let comm = cores.kcore_component(&g, 0, 2).unwrap();
//! assert_eq!(comm, vec![0, 1, 2]);
//! ```

#![deny(unsafe_code)]

pub mod bitset;
pub mod components;
pub mod core;
pub mod dynamic;
pub mod gen;
pub mod graph;
pub mod hash;
pub mod io;
pub mod lazy;
pub mod truss;
pub mod unionfind;

pub use bitset::{BitSet, EpochSet};
pub use components::{component_containing, connected_components};
pub use core::{CoreDecomposition, SubsetCore};
pub use dynamic::{demoted_by_deletion, promoted_by_insertion, DynamicGraph, IncrementalCores};
pub use graph::{Graph, GraphBuilder, VertexId};
pub use hash::{FxHashMap, FxHashSet};
pub use lazy::{GraphHandle, GraphSource};
pub use truss::{SubsetTruss, TrussDecomposition};
pub use unionfind::UnionFind;

/// Errors produced by the graph substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was `>= n` for a graph declared with `n` vertices.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: u64,
        /// The declared vertex count.
        n: usize,
    },
    /// A text edge list could not be parsed.
    Parse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Human-readable cause.
        message: String,
    },
    /// An I/O error surfaced while reading or writing a graph file.
    Io(String),
    /// A mutation would create a self-loop, which no PCS algorithm
    /// supports.
    SelfLoop {
        /// The vertex named by both endpoints.
        vertex: u32,
    },
    /// A foreign CSR layout violated a structural invariant
    /// (see [`Graph::validate`]).
    MalformedGraph {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex id {vertex} out of range for graph with {n} vertices")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "graph i/o error: {e}"),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not allowed")
            }
            GraphError::MalformedGraph { detail } => {
                write!(f, "malformed graph: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
