//! Property tests for the paper's Lemmas 1-3 across crate boundaries.

use pcs::prelude::*;
use pcs::ptree::enumerate::{count_all_subtrees, enumerate_rooted_subtrees, lemma1_upper_bound};
use pcs::ptree::QuerySpace;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_instance(seed: u64) -> (Graph, Taxonomy, Vec<PTree>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = rng.gen_range(5..=12usize);
    let mut tax = Taxonomy::new("r");
    let mut ids = vec![Taxonomy::ROOT];
    for i in 1..labels {
        let parent = ids[rng.gen_range(0..ids.len())];
        ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
    }
    let n = rng.gen_range(8..=20usize);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.25) {
                edges.push((a, b));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|_| {
            let count = rng.gen_range(0..=5usize);
            let picks: Vec<LabelId> =
                (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            PTree::from_labels(&tax, picks).unwrap()
        })
        .collect();
    (g, tax, profiles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 2: if Gk[T] exists then Gk[T'] exists for every T' ⊆ T,
    /// and moreover Gk[T] ⊆ Gk[T'] (Proposition 1).
    #[test]
    fn anti_monotonicity_holds(seed in 0u64..5_000) {
        let (g, tax, profiles) = random_instance(seed);
        let ctx = QueryContext::new(&g, &tax, &profiles).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x11);
        let q = rng.gen_range(0..g.num_vertices() as u32);
        let k = rng.gen_range(1..3u32);
        let space = ctx.space_for(q).unwrap();
        let mut ver = pcs::core::Verifier::new(&ctx, &space, q, k);
        for s in enumerate_rooted_subtrees(&space) {
            if let Some(comm) = ver.verify(&s) {
                // Every lattice parent is feasible and contains Gk[T].
                for leaf in space.lattice_parents(&s) {
                    let smaller = s.without(leaf);
                    let parent_comm = ver.verify(&smaller);
                    if smaller.is_empty() {
                        continue; // empty tree == Gk, handled below
                    }
                    let parent_comm = parent_comm.expect("anti-monotonicity violated");
                    for v in comm.iter() {
                        prop_assert!(parent_comm.binary_search(v).is_ok(),
                            "Gk[T] ⊄ Gk[T'] (seed {seed})");
                    }
                }
            }
        }
    }

    /// Lemma 1: the subtree count of T(q) never exceeds 2^(x-1)+1 and
    /// the enumerator produces exactly the counted number.
    #[test]
    fn lemma1_bound_and_enumeration(seed in 0u64..5_000) {
        let (g, tax, profiles) = random_instance(seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x22);
        let q = rng.gen_range(0..g.num_vertices() as u32);
        let space = QuerySpace::new(&tax, &profiles[q as usize]).unwrap();
        let x = space.len();
        let total = count_all_subtrees(&space);
        prop_assert!(total <= lemma1_upper_bound(x));
        let all = enumerate_rooted_subtrees(&space);
        prop_assert_eq!(all.len() as u128 + 1, total); // +1 = the empty tree
    }
}

#[test]
fn gk_monotone_in_k() {
    // The k-ĉore shrinks as k grows (nestedness used by the CL-tree).
    let (g, tax, profiles) = random_instance(99);
    let ctx = QueryContext::new(&g, &tax, &profiles).unwrap();
    for q in 0..g.num_vertices() as u32 {
        let mut prev: Option<Vec<VertexId>> = None;
        for k in (0..5u32).rev() {
            let space = ctx.space_for(q).unwrap();
            let ver = pcs::core::Verifier::new(&ctx, &space, q, k);
            let cur = ver.gk().map(|rc| rc.as_ref().clone());
            if let (Some(p), Some(c)) = (&prev, &cur) {
                for v in p {
                    assert!(c.binary_search(v).is_ok(), "higher-k core not nested");
                }
            }
            if cur.is_some() {
                prev = cur;
            }
        }
    }
}
