//! Plain-text edge-list persistence.
//!
//! Format: an optional header line `# vertices <n>`, then one `a b` pair
//! per line. Lines starting with `#` (other than the header) and blank
//! lines are ignored, so SNAP-style files load unchanged.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::graph::{Graph, GraphBuilder};
use crate::{GraphError, Result};

/// Writes `g` to `w` in edge-list form (with a `# vertices` header so
/// isolated trailing vertices survive a round-trip).
pub fn write_edge_list<W: Write>(g: &Graph, w: W) -> Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "# vertices {}", g.num_vertices())?;
    for (a, b) in g.edges() {
        writeln!(out, "{a} {b}")?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a graph from edge-list text.
pub fn read_edge_list<R: Read>(r: R) -> Result<Graph> {
    let reader = BufReader::new(r);
    let mut builder = GraphBuilder::new(0);
    let mut declared_n: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(n_str) = rest.strip_prefix("vertices") {
                declared_n = Some(n_str.trim().parse().map_err(|_| GraphError::Parse {
                    line: idx + 1,
                    message: format!("bad vertex count {n_str:?}"),
                })?);
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: "expected two endpoints".into(),
            })?;
            tok.parse().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("bad vertex id {tok:?}"),
            })
        };
        let a = parse(parts.next())?;
        let b = parse(parts.next())?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: "trailing tokens after edge".into(),
            });
        }
        builder.add_edge(a, b);
    }
    if let Some(n) = declared_n {
        builder.grow_to(n);
    }
    Ok(builder.build())
}

/// Convenience wrapper writing to a filesystem path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Convenience wrapper reading from a filesystem path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph> {
    read_edge_list(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.num_vertices(), 6); // isolated vertex 5 survives
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# SNAP style comment\n\n0 1\n# another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "0 1\nfoo bar\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_endpoint_rejected() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = read_edge_list("1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_edge_list("# vertices banana\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pcs_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
