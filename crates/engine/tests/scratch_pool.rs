//! Scratch-pool hardening: a poisoned pool mutex must recover (one
//! panicking query must never become a permanent denial of service),
//! and the pool must never retain more scratches than its cap even
//! after a concurrency spike.

use pcs_engine::{PcsEngine, QueryRequest};
use pcs_graph::Graph;
use pcs_ptree::{PTree, Taxonomy};

/// A small instance every query succeeds on.
fn engine_with(scratch_cap: Option<usize>) -> PcsEngine {
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(Taxonomy::ROOT, "b").unwrap();
    let n = 24usize;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for d in 1..=3u32 {
            let v = (u + d) % n as u32;
            let (lo, hi) = (u.min(v), u.max(v));
            if !edges.contains(&(lo, hi)) {
                edges.push((lo, hi));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|v| PTree::from_labels(&tax, if v % 2 == 0 { [a] } else { [b] }).unwrap())
        .collect();
    let mut builder = PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles);
    if let Some(cap) = scratch_cap {
        builder = builder.scratch_pool_cap(cap);
    }
    builder.build().unwrap()
}

#[test]
fn queries_survive_a_poisoned_scratch_pool() {
    let engine = engine_with(None);
    // Seed the pool with a scratch so recovery demonstrably discards
    // the poisoned contents rather than just limping along empty.
    let before = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    assert_eq!(engine.pooled_scratches(), 1);

    engine.poison_scratch_pool_for_test();

    // The next query must recover the lock (discarding the pool) and
    // answer identically — not panic on a poisoned mutex.
    let after = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    assert_eq!(before.communities(), after.communities());
    // The recovered pool works normally again: the query above
    // returned its scratch.
    assert_eq!(engine.pooled_scratches(), 1);

    // And the engine keeps serving across many subsequent queries.
    for v in 0..24u32 {
        engine.query(&QueryRequest::vertex(v).k(2)).unwrap();
    }
    assert!(engine.pooled_scratches() >= 1);
}

#[test]
fn poisoning_between_queries_is_recovered_repeatedly() {
    let engine = engine_with(None);
    for round in 0..3 {
        engine.poison_scratch_pool_for_test();
        let resp = engine.query(&QueryRequest::vertex(1).k(2));
        assert!(resp.is_ok(), "round {round}: query failed after poisoning");
    }
}

#[test]
fn scratch_pool_never_exceeds_its_cap_under_a_spike() {
    let cap = 3usize;
    let engine = engine_with(Some(cap));
    assert_eq!(engine.pooled_scratch_cap(), cap);
    let engine = &engine;

    // Spike: far more concurrent query threads than the cap, several
    // rounds so returns land on a full pool repeatedly.
    std::thread::scope(|s| {
        for t in 0..(cap * 4) as u32 {
            s.spawn(move || {
                for i in 0..8u32 {
                    let v = (t * 7 + i) % 24;
                    engine.query(&QueryRequest::vertex(v).k(2)).unwrap();
                }
            });
        }
    });

    let pooled = engine.pooled_scratches();
    assert!(pooled <= cap, "pool retained {pooled} scratches, cap is {cap}");
    // The pool did retain something (the spike ended with returns).
    assert!(pooled >= 1, "pool should retain up to the cap after load");

    // query_batch fan-out respects the same cap.
    let requests: Vec<_> = (0..24u32).map(|v| QueryRequest::vertex(v).k(2)).collect();
    for r in engine.query_batch(&requests) {
        r.unwrap();
    }
    assert!(engine.pooled_scratches() <= cap);
}

#[test]
fn default_cap_tracks_batch_threads() {
    let engine = engine_with(None);
    let cap = engine.pooled_scratch_cap();
    assert!((4..=64).contains(&cap), "default cap {cap} outside 4..=64");
}
