// Fixture: a line-form allow with a reason, directly above the
// violation it suppresses. Zero findings expected.

fn must(v: &[u32]) -> u32 {
    // audit:allow(no-panic): fixture reason; the caller guarantees non-empty input
    v.first().copied().unwrap()
}
