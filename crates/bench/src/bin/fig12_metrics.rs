//! Fig. 12: comparison of the four profile-cohesiveness definitions
//! (Section 5.3) on the ACMDL-like and PubMed-like datasets.
//!
//! For metrics (a) common-nodes, (b) common-paths, (c) common-subtree
//! (the PCS definition), and (d) similarity-threshold, report CPS, LDR
//! (vs the common-subtree answers), community count, and CPF.

use pcs_baselines::{variant_query, CohesivenessMetric};
use pcs_bench::{engine_owning, f, header, parse_args, row};
use pcs_core::ProfiledCommunity;
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_metrics::{cpf, cps, ldr};

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };
    let metrics = [
        CohesivenessMetric::CommonNodes,
        CohesivenessMetric::CommonPaths,
        CohesivenessMetric::CommonSubtree,
        CohesivenessMetric::Similarity { beta: 0.3 },
    ];

    for which in [SuiteDataset::Acmdl, SuiteDataset::Pubmed] {
        let ds = build(which, cfg);
        let name = ds.name.clone();
        let (queries, _) = sample_query_vertices(&ds, args.k, args.queries, args.seed ^ 0x12);
        // The dataset is fully sampled; move it into the owned engine.
        let engine = engine_owning(ds);
        let snap = engine.snapshot();
        let (tax, profiles) = (engine.taxonomy(), snap.profiles());

        // Per metric, per query: the returned communities. The §5.3
        // variants speak the borrowed paper layer, so borrow a context
        // from the engine for the sweep.
        let per_metric: Vec<Vec<Vec<ProfiledCommunity>>> = engine
            .with_context(|ctx| {
                metrics
                    .iter()
                    .map(|&m| queries.iter().map(|&q| variant_query(ctx, q, args.k, m)).collect())
                    .collect()
            })
            .expect("engine state is consistent");
        let pcs_idx = 2; // CommonSubtree's position in `metrics`

        println!("\nFig. 12 — {} ({} queries, k = {})\n", name, args.queries, args.k);
        header(&["metric", "CPS", "LDR", "#comm", "CPF"]);
        for (mi, m) in metrics.iter().enumerate() {
            let results = &per_metric[mi];
            let all: Vec<ProfiledCommunity> = results.iter().flatten().cloned().collect();
            let cps_v = cps(tax, profiles, &all);
            let mut ldr_acc = 0.0;
            let mut cpf_acc = 0.0;
            let mut counted = 0usize;
            for (qi, comms) in results.iter().enumerate() {
                let pcs_comms = &per_metric[pcs_idx][qi];
                if pcs_comms.is_empty() {
                    continue;
                }
                let tq = &profiles[queries[qi] as usize];
                ldr_acc += ldr(tax, tq, comms, pcs_comms);
                if !comms.is_empty() {
                    cpf_acc += cpf(tq, profiles, comms);
                }
                counted += 1;
            }
            let n = counted.max(1) as f64;
            let avg_count =
                results.iter().map(|c| c.len()).sum::<usize>() as f64 / results.len().max(1) as f64;
            row(&[m.name().to_string(), f(cps_v), f(ldr_acc / n), f(avg_count), f(cpf_acc / n)]);
        }
    }
    println!("\nPaper: metric (c), the common subtree, scores highest across all four indices.");
}
