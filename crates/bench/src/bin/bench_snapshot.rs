//! Machine-readable performance snapshot: the perf trajectory tracker.
//!
//! Runs the three load-bearing measurements — per-query latency of all
//! five PCS algorithms (`query_efficiency`), CP-tree construction
//! (`index_construction`), and the live-update path
//! (`update_throughput`) — in one **fixed configuration** (DBLP-like,
//! the largest generated dataset, at scale 0.01 with k = 6), then
//! writes `BENCH_query.json` and `BENCH_index.json` so the numbers can
//! be committed and diffed PR over PR.
//!
//! ```text
//! cargo run -p pcs-bench --release --bin bench_snapshot            # full run, writes ./BENCH_*.json
//! cargo run -p pcs-bench --release --bin bench_snapshot -- --record-baseline
//! cargo run -p pcs-bench --release --bin bench_snapshot -- --quick # CI smoke: tiny dataset, target/
//! ```
//!
//! `--record-baseline` re-reads the existing JSON files first and
//! stores their current results under `"baseline"` in the fresh files,
//! so a PR that changes performance commits before *and* after numbers
//! in one artifact. `--quick` is the CI bit-rot guard: a seconds-long
//! run on a tiny dataset that exercises every code path and the JSON
//! writer (into `target/`, leaving the committed files alone) and fails
//! only on panic, never on regression.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use pcs_core::Algorithm;
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_engine::{IndexMode, PcsEngine, QueryRequest, UpdateBatch};
use pcs_graph::VertexId;
use pcs_index::CpTree;

struct Config {
    quick: bool,
    record_baseline: bool,
    out_dir: PathBuf,
    scale: f64,
    k: u32,
    queries: usize,
    reps: usize,
    basic_queries: usize,
}

impl Config {
    fn parse() -> Config {
        let mut cfg = Config {
            quick: false,
            record_baseline: false,
            out_dir: PathBuf::from("."),
            scale: 0.01,
            k: 6,
            queries: 15,
            reps: 3,
            basic_queries: 5,
        };
        let mut out_dir_given = false;
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--quick" => cfg.quick = true,
                "--record-baseline" => cfg.record_baseline = true,
                "--out-dir" => {
                    cfg.out_dir = PathBuf::from(args.next().expect("--out-dir takes a path"));
                    out_dir_given = true;
                }
                "--help" | "-h" => {
                    eprintln!("options: --quick --record-baseline --out-dir <dir>");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        if cfg.quick {
            cfg.scale = 0.002;
            cfg.queries = 4;
            cfg.reps = 1;
            cfg.basic_queries = 2;
            // Keep the committed JSONs safe by default, but honour an
            // explicit --out-dir (the .quick suffix still applies).
            if !out_dir_given {
                cfg.out_dir = PathBuf::from("target");
            }
        }
        cfg
    }
}

/// Best-of-`reps` wall time of `f`, in microseconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Minimal JSON escaping for the keys/strings we emit (no control
/// characters ever appear in them).
fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Renders a `[(key, value_us)]` list as a JSON object body.
fn json_obj(pairs: &[(String, f64)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {v:.2}", json_str(k));
    }
    out.push('}');
    out
}

/// Pulls the `"results"` object back out of a previously written file
/// (verbatim, as text) so it can be re-embedded as `"baseline"`.
fn previous_results(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let start = text.find("\"results\":")? + "\"results\":".len();
    let open = text[start..].find('{')? + start;
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn write_snapshot(path: &Path, cfg: &Config, results: &str, baseline: Option<String>) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"pcs-bench-snapshot/v1\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"dataset\": \"DBLP-like\", \"scale\": {}, \"k\": {}, \"queries\": {}, \"reps\": {}, \"quick\": {}}},",
        cfg.scale, cfg.k, cfg.queries, cfg.reps, cfg.quick
    );
    let _ = writeln!(out, "  \"results\": {results},");
    let baseline = baseline.unwrap_or_else(|| "null".into());
    let _ = writeln!(out, "  \"baseline\": {baseline}");
    out.push_str("}\n");
    std::fs::create_dir_all(path.parent().unwrap_or(Path::new("."))).expect("create out dir");
    std::fs::write(path, out).expect("write snapshot file");
    println!("wrote {}", path.display());
}

fn churn_edges(ds: &pcs_datasets::ProfiledDataset, count: usize) -> Vec<(VertexId, VertexId)> {
    let (members, _) = sample_query_vertices(ds, 4, count * 8, 0xc4u64);
    let mut out = Vec::new();
    'outer: for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            let pair = (a.min(b), a.max(b));
            if a != b && !ds.graph.has_edge(a, b) && !out.contains(&pair) {
                out.push(pair);
                if out.len() == count {
                    break 'outer;
                }
            }
        }
    }
    out
}

fn main() {
    let cfg = Config::parse();
    let suite = SuiteConfig { scale: cfg.scale, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Dblp, suite);
    println!(
        "dataset: {} vertices, {} edges (DBLP-like @ scale {})",
        ds.graph.num_vertices(),
        ds.graph.num_edges(),
        cfg.scale
    );
    let (queries, _) = sample_query_vertices(&ds, cfg.k, cfg.queries, 0x14);
    assert!(!queries.is_empty(), "no query vertices with core >= k");

    // ---- query_efficiency: mean us per query, best of `reps` passes.
    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap();
    let ctx =
        pcs_core::QueryContext::new(&ds.graph, &ds.tax, &ds.profiles).unwrap().with_index(&index);
    let mut query_results: Vec<(String, f64)> = Vec::new();
    for algo in Algorithm::ALL {
        // `basic` is orders of magnitude slower (that is the paper's
        // point); sample fewer queries so the snapshot stays fast.
        let qs: &[VertexId] = if algo == Algorithm::Basic {
            &queries[..cfg.basic_queries.min(queries.len())]
        } else {
            &queries
        };
        let reps = if algo == Algorithm::Basic { 1 } else { cfg.reps };
        let total = best_of(reps, || {
            for &q in qs {
                std::hint::black_box(ctx.query(q, cfg.k, algo).unwrap().communities.len());
            }
        });
        let per_query = total / qs.len() as f64;
        println!("query_efficiency/{:<6} {per_query:>12.2} us/query", algo.name());
        query_results.push((algo.name().to_string(), per_query));
    }
    drop(ctx);

    // ---- index_construction: one full sequential CP-tree build.
    let mut index_results: Vec<(String, f64)> = Vec::new();
    let us = best_of(cfg.reps, || CpTree::build(&ds.graph, &ds.tax, &ds.profiles).unwrap());
    println!("index_construction/cptree_seq {:>12.2} us", us);
    index_results.push(("cptree_seq_us".into(), us));

    // ---- persistence: cold start via snapshot vs eager rebuild.
    // `eager_build_us` is the price a replica pays today (validate +
    // cores + full CP-tree build); `persist_load_us` is the warm-start
    // replacement. The roadmap target is load ≤ 1/10 of build.
    let eager_build_us = best_of(cfg.reps, || {
        PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap()
    });
    println!("persistence/eager_build {:>12.2} us", eager_build_us);
    index_results.push(("eager_build_us".into(), eager_build_us));
    let warm = PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();
    let snap_path =
        std::env::temp_dir().join(format!("pcs-bench-snapshot-{}.snapshot", std::process::id()));
    let save_us = best_of(cfg.reps, || warm.save(&snap_path).unwrap());
    println!("persistence/persist_save {:>12.2} us", save_us);
    index_results.push(("persist_save_us".into(), save_us));
    let load_us = best_of(cfg.reps, || {
        PcsEngine::builder().index_mode(IndexMode::Eager).load(&snap_path).unwrap()
    });
    println!(
        "persistence/persist_load {:>12.2} us ({:.1}x faster than eager build)",
        load_us,
        eager_build_us / load_us
    );
    index_results.push(("persist_load_us".into(), load_us));
    // Re-query smoke: the loaded engine answers exactly like the warm
    // one (this is the CI `--quick` save/load/re-query gate).
    let loaded = PcsEngine::builder().index_mode(IndexMode::Eager).load(&snap_path).unwrap();
    let _ = std::fs::remove_file(&snap_path);
    for &q in queries.iter().take(3) {
        let req = QueryRequest::vertex(q).k(cfg.k);
        let a = warm.query(&req).unwrap();
        let b = loaded.query(&req).unwrap();
        assert_eq!(
            a.communities(),
            b.communities(),
            "loaded engine diverged from its source at q={q}"
        );
    }
    drop((warm, loaded));

    // ---- update_throughput: state-neutral add+remove batch pairs
    // through the incremental engine, and the full-rebuild fallback.
    let edges = churn_edges(&ds, if cfg.quick { 2 } else { 8 });
    if edges.is_empty() {
        println!("update_throughput: skipped (no churn edges found)");
    } else {
        let adds = edges.iter().fold(UpdateBatch::new(), |b, &(u, v)| b.add_edge(u, v));
        let removes = edges.iter().fold(UpdateBatch::new(), |b, &(u, v)| b.remove_edge(u, v));
        for (name, cap) in [("apply_pair_incremental_us", 1.0), ("apply_pair_rebuild_us", 0.0)] {
            let engine = PcsEngine::builder()
                .graph(ds.graph.clone())
                .taxonomy(ds.tax.clone())
                .profiles(ds.profiles.clone())
                .index_mode(IndexMode::Eager)
                .incremental_patch_cap(cap)
                .build()
                .unwrap();
            let us = best_of(cfg.reps, || {
                engine.apply(&adds).unwrap();
                engine.apply(&removes).unwrap();
            });
            println!("update_throughput/{name} {us:>12.2} us");
            index_results.push((name.into(), us));
        }
        // Serving mix: 19 reads + 1 write per round.
        let engine = PcsEngine::builder()
            .graph(ds.graph.clone())
            .taxonomy(ds.tax.clone())
            .profiles(ds.profiles.clone())
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap();
        engine.warm().unwrap();
        let requests: Vec<QueryRequest> =
            queries.iter().map(|&q| QueryRequest::vertex(q).k(cfg.k)).collect();
        let (wu, wv) = edges[0];
        let us = best_of(cfg.reps, || {
            engine.add_edge(wu, wv).unwrap();
            for resp in engine.query_batch(&requests) {
                std::hint::black_box(resp.unwrap().communities().len());
            }
            engine.remove_edge(wu, wv).unwrap();
        });
        println!("update_throughput/mixed_round_us {us:>12.2} us");
        index_results.push(("mixed_round_us".into(), us));
    }

    // ---- emit.
    let query_path =
        cfg.out_dir.join(if cfg.quick { "BENCH_query.quick.json" } else { "BENCH_query.json" });
    let index_path =
        cfg.out_dir.join(if cfg.quick { "BENCH_index.quick.json" } else { "BENCH_index.json" });
    let query_baseline = cfg.record_baseline.then(|| previous_results(&query_path)).flatten();
    let index_baseline = cfg.record_baseline.then(|| previous_results(&index_path)).flatten();
    write_snapshot(&query_path, &cfg, &json_obj(&query_results), query_baseline);
    write_snapshot(&index_path, &cfg, &json_obj(&index_results), index_baseline);
}
