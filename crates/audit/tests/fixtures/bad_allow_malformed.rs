// Fixture: an allow comment with a rule but no reason — the reason is
// mandatory, so this is an allow-malformed hygiene finding.

// audit:allow(no-panic)
fn nothing() {}
