//! `pcs-audit` — repo-specific static analysis for the pcs workspace.
//!
//! Two deliberate constraints shape this crate:
//!
//! * **No `syn`, no external dependencies.** Like the in-tree shims, it must
//!   build in a sealed environment. A hand-rolled token scanner
//!   ([`lexer`]) is exact about comments/strings/lifetimes, which is all the
//!   precision the rules below need.
//! * **Rules are positional, not type-aware.** Each rule is scoped to a
//!   designated file list (the hot paths the ROADMAP cares about), so token
//!   patterns plus local context are sufficient and false positives stay
//!   near zero.
//!
//! Rule catalog (ids as used in diagnostics and `audit:allow`):
//!
//! | id | scope | forbids |
//! |----|-------|---------|
//! | `no-panic` | hot-path modules | `.unwrap()`, `.expect(..)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `no-index` | hot-path modules | postfix slice/array indexing `expr[..]` |
//! | `store-cast` | `pcs-store` codec | narrowing `as` casts (`as u8/u16/u32/i8/i16/i32/VertexId/LabelId`) |
//! | `query-hash` | allocation-free query path | `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet` |
//! | `instant-in-loop` | hot-path + engine | `Instant::now()` inside a loop body |
//! | `error-enum` | whole workspace | `pub enum *Error` without `#[non_exhaustive]` |
//! | `allow-malformed` | everywhere | `audit:allow` without a `(rule)` or `: reason` |
//! | `allow-unused` | everywhere | `audit:allow` that suppresses nothing |
//!
//! Suppression: `// audit:allow(<rule>): <reason>` on the offending line or
//! the line directly above. The reason is mandatory. For dense
//! invariant-backed regions (e.g. a validation loop that has already
//! bounds-checked its indices) the block form
//! `// audit:allow-block(<rule>): <reason>` placed before a `{ ... }` block
//! covers that entire block with one documented justification.
//!
//! `#[cfg(test)]` items (modules, functions, impls) are skipped entirely:
//! test code is allowed to panic.

#![deny(unsafe_code)]

pub mod lexer;

use lexer::{lex, TokKind, Token};
use std::fmt;
use std::path::{Path, PathBuf};

pub const RULE_NO_PANIC: &str = "no-panic";
pub const RULE_NO_INDEX: &str = "no-index";
pub const RULE_STORE_CAST: &str = "store-cast";
pub const RULE_QUERY_HASH: &str = "query-hash";
pub const RULE_INSTANT_IN_LOOP: &str = "instant-in-loop";
pub const RULE_ERROR_ENUM: &str = "error-enum";
pub const RULE_ALLOW_MALFORMED: &str = "allow-malformed";
pub const RULE_ALLOW_UNUSED: &str = "allow-unused";

/// One diagnostic. Rendered as `path:line:col: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

/// Which rules apply to which files, expressed as path suffixes
/// (`crates/core/src/verify.rs` style, matched with `ends_with`).
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// `no-panic` + `no-index`: the designated hot-path modules.
    pub hot_path: Vec<String>,
    /// `store-cast`: the snapshot codec.
    pub store_codec: Vec<String>,
    /// `query-hash`: the allocation-free query path.
    pub query_alloc_free: Vec<String>,
    /// `instant-in-loop`: files with per-vertex loops worth guarding.
    pub instant_loops: Vec<String>,
}

impl RuleConfig {
    /// The workspace's designated hot paths. Adding a module to the serving
    /// tier means adding it here — the lint is the contract.
    pub fn workspace_default() -> Self {
        let hot: &[&str] = &[
            // pcs-core query execution (the PR 3 allocation-free path)
            "crates/core/src/verify.rs",
            "crates/core/src/basic.rs",
            "crates/core/src/advanced.rs",
            "crates/core/src/incre.rs",
            // pcs-index read / materialization path
            "crates/index/src/cltree.rs",
            "crates/index/src/sharded.rs",
            // pcs-engine snapshot read path
            "crates/engine/src/snapshot.rs",
            "crates/engine/src/persist.rs",
            // result-cache lookup/fill runs on every cached query and
            // inside every epoch publish (carry_surviving)
            "crates/engine/src/cache.rs",
            // pcs-store decode path: must return typed StoreError, never panic
            "crates/store/src/codec.rs",
            "crates/store/src/format.rs",
            // lazy-load hot path: positioned reads + deferred decode
            // run on every replica first touch
            "crates/store/src/source.rs",
            "crates/store/src/lazy.rs",
            // WAL hot path: append/commit run inside every durable
            // apply, and the recovery reader must fail typed, not
            // panic, on arbitrary on-disk bytes
            "crates/store/src/wal.rs",
            "crates/engine/src/durable.rs",
        ];
        let store: &[&str] = &[
            "crates/store/src/codec.rs",
            "crates/store/src/format.rs",
            "crates/store/src/source.rs",
            "crates/store/src/lazy.rs",
            "crates/store/src/wal.rs",
            "crates/engine/src/durable.rs",
        ];
        let query: &[&str] = &[
            "crates/core/src/verify.rs",
            "crates/core/src/basic.rs",
            "crates/core/src/advanced.rs",
            "crates/core/src/incre.rs",
        ];
        let mut instant: Vec<String> = hot.iter().map(|s| s.to_string()).collect();
        instant.push("crates/engine/src/engine.rs".to_string());
        let mut hot_path: Vec<String> = hot.iter().map(|s| s.to_string()).collect();
        // pcs-serve request path: panic-free and index-free like the
        // rest of the serving tier. Deliberately NOT in `instant_loops`:
        // its loops are connection-scale (accept, poll, batch-gather),
        // not per-vertex, and taking timestamps inside them is the
        // mechanism for keep-alive timeouts and batch windows.
        for f in [
            "crates/serve/src/http.rs",
            "crates/serve/src/protocol.rs",
            "crates/serve/src/server.rs",
            "crates/serve/src/batch.rs",
            "crates/serve/src/replica.rs",
        ] {
            hot_path.push(f.to_string());
        }
        RuleConfig {
            hot_path,
            store_codec: store.iter().map(|s| s.to_string()).collect(),
            query_alloc_free: query.iter().map(|s| s.to_string()).collect(),
            instant_loops: instant,
        }
    }

    fn matches(list: &[String], path: &str) -> bool {
        list.iter().any(|s| path.ends_with(s.as_str()))
    }
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while", "yield", "Self", "self",
];

const NARROW_CAST_TARGETS: &[&str] =
    &["u8", "u16", "u32", "i8", "i16", "i32", "VertexId", "LabelId"];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Lint one file's source text. `path` is only used for rule scoping and
/// diagnostics; nothing is read from disk.
pub fn check_source(path: &str, src: &str, cfg: &RuleConfig) -> Vec<Finding> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let skip = cfg_test_skip_mask(toks);

    let is_hot = RuleConfig::matches(&cfg.hot_path, path);
    let is_store = RuleConfig::matches(&cfg.store_codec, path);
    let is_query = RuleConfig::matches(&cfg.query_alloc_free, path);
    let is_instant = RuleConfig::matches(&cfg.instant_loops, path);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |tok: &Token, rule: &'static str, message: String| {
        raw.push(Finding { path: path.to_string(), line: tok.line, col: tok.col, rule, message });
    };

    // Brace stack: `true` frames are loop bodies. `pending_loop` is armed by
    // a `for`/`while`/`loop` keyword and consumed by the next `{`.
    let mut brace_stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    let mut in_loop_depth = 0usize;

    // Index of the previous non-skipped token, for local-context rules.
    let mut prev: Option<usize> = None;

    for i in 0..toks.len() {
        if skip[i] {
            continue;
        }
        let t = &toks[i];
        let next = next_unskipped(toks, &skip, i);

        match &t.kind {
            TokKind::Punct('{') => {
                brace_stack.push(pending_loop);
                if pending_loop {
                    in_loop_depth += 1;
                }
                pending_loop = false;
            }
            TokKind::Punct('}') => {
                if let Some(was_loop) = brace_stack.pop() {
                    if was_loop {
                        in_loop_depth -= 1;
                    }
                }
            }
            TokKind::Punct('[') if is_hot => {
                if let Some(p) = prev {
                    let pt = &toks[p];
                    let indexes = match &pt.kind {
                        TokKind::Ident => !KEYWORDS.contains(&pt.text.as_str()),
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        TokKind::Literal => true,
                        _ => false,
                    };
                    if indexes {
                        push(
                            t,
                            RULE_NO_INDEX,
                            "slice indexing in hot-path module can panic; use a checked accessor or document the invariant with audit:allow".to_string(),
                        );
                    }
                }
            }
            TokKind::Ident => {
                let text = t.text.as_str();
                match text {
                    "for" | "while" | "loop" => pending_loop = true,
                    "unwrap" | "expect"
                        if is_hot
                            && prev.is_some_and(|p| toks[p].kind == TokKind::Punct('.'))
                            && next.is_some_and(|n| toks[n].kind == TokKind::Punct('(')) =>
                    {
                        push(
                            t,
                            RULE_NO_PANIC,
                            format!(".{text}() in hot-path module; return a typed error instead"),
                        );
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if is_hot && next.is_some_and(|n| toks[n].kind == TokKind::Punct('!')) =>
                    {
                        push(
                            t,
                            RULE_NO_PANIC,
                            format!("{text}! in hot-path module; return a typed error instead"),
                        );
                    }
                    "as" if is_store => {
                        if let Some(n) = next {
                            if toks[n].kind == TokKind::Ident
                                && NARROW_CAST_TARGETS.contains(&toks[n].text.as_str())
                            {
                                push(
                                    &toks[n],
                                    RULE_STORE_CAST,
                                    format!(
                                        "narrowing `as {}` in store codec can silently wrap; use try_into() and surface StoreError::Corrupt",
                                        toks[n].text
                                    ),
                                );
                            }
                        }
                    }
                    _ if is_query && HASH_TYPES.contains(&text) => {
                        push(
                            t,
                            RULE_QUERY_HASH,
                            format!("{text} in the allocation-free query path; use the epoch-stamped scratch structures"),
                        );
                    }
                    "Instant"
                        if is_instant
                            && in_loop_depth > 0
                            && is_path_call(toks, &skip, i, "now") =>
                    {
                        push(
                            t,
                            RULE_INSTANT_IN_LOOP,
                            "Instant::now() inside a loop body; hoist the clock read out of the per-vertex loop".to_string(),
                        );
                    }
                    "enum"
                        if prev.is_some_and(|p| {
                            toks[p].kind == TokKind::Ident && toks[p].text == "pub"
                        }) =>
                    {
                        if let Some(n) = next {
                            if toks[n].kind == TokKind::Ident && toks[n].text.ends_with("Error") {
                                let pub_idx = prev.unwrap_or(i);
                                if !attrs_contain(toks, pub_idx, "non_exhaustive") {
                                    push(
                                        &toks[n],
                                        RULE_ERROR_ENUM,
                                        format!(
                                            "public error enum {} must be #[non_exhaustive] so variants can be added without a breaking change",
                                            toks[n].text
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        prev = Some(i);
    }

    apply_allows(path, raw, &lexed.allows, toks)
}

/// Match `Instant :: now` starting at token `i` (which holds `Instant`).
fn is_path_call(toks: &[Token], skip: &[bool], i: usize, method: &str) -> bool {
    let mut rest = (i + 1..toks.len()).filter(|&j| !skip[j]);
    let (Some(a), Some(b), Some(c)) = (rest.next(), rest.next(), rest.next()) else {
        return false;
    };
    toks[a].kind == TokKind::Punct(':')
        && toks[b].kind == TokKind::Punct(':')
        && toks[c].kind == TokKind::Ident
        && toks[c].text == method
}

fn next_unskipped(toks: &[Token], skip: &[bool], i: usize) -> Option<usize> {
    (i + 1..toks.len()).find(|&j| !skip[j])
}

/// Walk the attribute groups immediately preceding token `before` (e.g. the
/// `pub` of `pub enum`) and report whether any contains `needle` as an ident.
fn attrs_contain(toks: &[Token], before: usize, needle: &str) -> bool {
    let mut end = before;
    loop {
        if end == 0 {
            return false;
        }
        let close = end - 1;
        if toks[close].kind != TokKind::Punct(']') {
            return false;
        }
        // scan back to the matching `[`
        let mut depth = 1i32;
        let mut open = close;
        while open > 0 && depth > 0 {
            open -= 1;
            match toks[open].kind {
                TokKind::Punct(']') => depth += 1,
                TokKind::Punct('[') => depth -= 1,
                _ => {}
            }
        }
        if depth != 0 || open == 0 {
            return false;
        }
        let hash = open - 1;
        if toks[hash].kind != TokKind::Punct('#') {
            return false;
        }
        if toks[open..close].iter().any(|t| t.kind == TokKind::Ident && t.text == needle) {
            return true;
        }
        end = hash;
    }
}

/// Mark every token inside a `#[cfg(test)]` item (the attribute itself, the
/// item header, and its balanced `{...}` body or trailing `;`).
fn cfg_test_skip_mask(toks: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].kind == TokKind::Punct('#')
            && toks[i + 1].kind == TokKind::Punct('[')
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 2].text == "cfg"
            && toks[i + 3].kind == TokKind::Punct('(')
            && toks[i + 4].kind == TokKind::Ident
            && toks[i + 4].text == "test"
            && toks[i + 5].kind == TokKind::Punct(')')
            && toks[i + 6].kind == TokKind::Punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip forward past one item: either a balanced brace block or a
        // top-level `;` (e.g. `#[cfg(test)] mod harness;`).
        let mut j = i + 7;
        let mut depth = 0i32;
        let end = loop {
            if j >= toks.len() {
                break toks.len() - 1;
            }
            match toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break j;
                    }
                }
                TokKind::Punct(';') if depth == 0 => break j,
                _ => {}
            }
            j += 1;
        };
        for s in skip.iter_mut().take(end + 1).skip(i) {
            *s = true;
        }
        i = end + 1;
    }
    skip
}

/// Filter raw findings through the allow comments; emit hygiene findings for
/// malformed or unused allows.
fn apply_allows(
    path: &str,
    raw: Vec<Finding>,
    allows: &[lexer::AllowComment],
    toks: &[Token],
) -> Vec<Finding> {
    let mut used = vec![false; allows.len()];
    let mut out: Vec<Finding> = Vec::new();

    // For the block form, coverage is the line span of the first `{...}`
    // block opening at or after the comment line.
    let coverage: Vec<(u32, u32)> = allows
        .iter()
        .map(|a| {
            if !a.block {
                return (a.line, a.line + 1);
            }
            let Some(open) =
                toks.iter().position(|t| t.line >= a.line && t.kind == TokKind::Punct('{'))
            else {
                return (a.line, a.line);
            };
            let mut depth = 0i32;
            let mut close_line = toks[open].line;
            for t in &toks[open..] {
                match t.kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            close_line = t.line;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            (a.line, close_line)
        })
        .collect();

    'findings: for f in raw {
        for (ai, a) in allows.iter().enumerate() {
            let (lo, hi) = coverage[ai];
            if f.line >= lo && f.line <= hi && a.rule == f.rule && !a.reason.is_empty() {
                used[ai] = true;
                continue 'findings;
            }
        }
        out.push(f);
    }

    for (ai, a) in allows.iter().enumerate() {
        if a.rule.is_empty() || a.reason.is_empty() {
            out.push(Finding {
                path: path.to_string(),
                line: a.line,
                col: 1,
                rule: RULE_ALLOW_MALFORMED,
                message: "audit:allow must name a rule and give a reason: // audit:allow(<rule>): <why this site cannot fail>".to_string(),
            });
        } else if !used[ai] {
            out.push(Finding {
                path: path.to_string(),
                line: a.line,
                col: 1,
                rule: RULE_ALLOW_UNUSED,
                message: format!(
                    "audit:allow({}) suppresses nothing in its coverage span; remove it",
                    a.rule
                ),
            });
        }
    }

    out.sort_by_key(|f| (f.line, f.col));
    out
}

/// Recursively collect workspace `.rs` files, skipping build output, VCS
/// metadata, and the lint's own fixture corpus (which is intentionally bad).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                if name == "fixtures" && dir.ends_with("crates/audit/tests") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Run the full check over a workspace rooted at `root`.
pub fn run_check(root: &Path, cfg: &RuleConfig) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in collect_rs_files(root)? {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        findings.extend(check_source(&rel, &src, cfg));
    }
    Ok(findings)
}
