//! Connected components via BFS.

use crate::graph::{Graph, VertexId};

/// Labels every vertex with a component id in `0..#components` and
/// returns `(labels, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue: Vec<VertexId> = Vec::new();
    for s in 0..n as u32 {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = next;
        queue.push(s);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    queue.push(u);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// The sorted vertex set of the connected component containing `q`.
pub fn component_containing(g: &Graph, q: VertexId) -> Vec<VertexId> {
    let n = g.num_vertices();
    assert!((q as usize) < n, "query vertex out of range");
    let mut seen = vec![false; n];
    let mut queue = vec![q];
    seen[q as usize] = true;
    let mut out = Vec::new();
    while let Some(v) = queue.pop() {
        out.push(v);
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push(u);
            }
        }
    }
    out.sort_unstable();
    out
}

/// True when the subgraph induced by `vertices` (which must be sorted)
/// is connected and non-empty.
pub fn is_connected_subset(g: &Graph, vertices: &[VertexId]) -> bool {
    if vertices.is_empty() {
        return false;
    }
    debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]), "must be sorted");
    let inside = |v: VertexId| vertices.binary_search(&v).is_ok();
    let mut seen = vec![false; vertices.len()];
    let mut queue = vec![vertices[0]];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = queue.pop() {
        for &u in g.neighbors(v) {
            if inside(u) {
                let idx = vertices.binary_search(&u).unwrap();
                if !seen[idx] {
                    seen[idx] = true;
                    count += 1;
                    queue.push(u);
                }
            }
        }
    }
    count == vertices.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = Graph::from_edges(3, &[]).unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 3);
    }

    #[test]
    fn component_containing_query() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(component_containing(&g, 1), vec![0, 1, 2]);
        assert_eq!(component_containing(&g, 4), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn component_containing_panics_out_of_range() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        component_containing(&g, 7);
    }

    #[test]
    fn connected_subset_checks() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert!(is_connected_subset(&g, &[0, 1, 2]));
        assert!(is_connected_subset(&g, &[3, 4]));
        assert!(!is_connected_subset(&g, &[0, 1, 3]));
        assert!(!is_connected_subset(&g, &[0, 2])); // 0-2 not adjacent
        assert!(!is_connected_subset(&g, &[]));
        assert!(is_connected_subset(&g, &[2]));
    }
}
