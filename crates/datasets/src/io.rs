//! Dataset persistence: save/load a [`ProfiledDataset`] as a directory
//! of plain-text files.
//!
//! Layout:
//!
//! ```text
//! <dir>/
//!   name.txt        dataset display name
//!   graph.edges     edge list (pcs-graph format, with vertex header)
//!   taxonomy.tsv    one line per non-root label: "<id>\t<parent>\t<name>"
//!   profiles.tsv    one line per vertex: tab-separated leaf label ids
//!   groups.tsv      one line per ground-truth group: space-separated ids
//! ```
//!
//! The formats are deliberately diff-able text so generated benchmark
//! inputs can be inspected and versioned.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use pcs_graph::{GraphError, VertexId};
use pcs_ptree::{PTree, Taxonomy};

use crate::gen::ProfiledDataset;

/// Errors from dataset persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatasetIoError {
    /// Filesystem or format error from the graph layer.
    Graph(GraphError),
    /// Raw I/O error.
    Io(std::io::Error),
    /// A malformed record.
    Parse {
        /// Offending file.
        file: String,
        /// 1-based line.
        line: usize,
        /// Cause.
        message: String,
    },
}

impl std::fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetIoError::Graph(e) => write!(f, "graph: {e}"),
            DatasetIoError::Io(e) => write!(f, "io: {e}"),
            DatasetIoError::Parse { file, line, message } => {
                write!(f, "{file}:{line}: {message}")
            }
        }
    }
}

impl std::error::Error for DatasetIoError {}

impl From<std::io::Error> for DatasetIoError {
    fn from(e: std::io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

impl From<GraphError> for DatasetIoError {
    fn from(e: GraphError) -> Self {
        DatasetIoError::Graph(e)
    }
}

/// Saves `ds` under `dir` (created if missing).
pub fn save_dataset<P: AsRef<Path>>(ds: &ProfiledDataset, dir: P) -> Result<(), DatasetIoError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("name.txt"), format!("{}\n", ds.name))?;
    pcs_graph::io::save_edge_list(&ds.graph, dir.join("graph.edges"))?;

    let mut tax = BufWriter::new(std::fs::File::create(dir.join("taxonomy.tsv"))?);
    writeln!(tax, "# root\t{}", ds.tax.label(Taxonomy::ROOT))?;
    for id in 1..ds.tax.len() as u32 {
        writeln!(tax, "{id}\t{}\t{}", ds.tax.parent(id), ds.tax.label(id))?;
    }
    tax.flush()?;

    let mut prof = BufWriter::new(std::fs::File::create(dir.join("profiles.tsv"))?);
    for p in &ds.profiles {
        let leaves: Vec<String> = p.leaves(&ds.tax).iter().map(|l| l.to_string()).collect();
        writeln!(prof, "{}", leaves.join("\t"))?;
    }
    prof.flush()?;

    let mut groups = BufWriter::new(std::fs::File::create(dir.join("groups.tsv"))?);
    for g in &ds.groups {
        let ids: Vec<String> = g.iter().map(|v| v.to_string()).collect();
        writeln!(groups, "{}", ids.join(" "))?;
    }
    groups.flush()?;
    Ok(())
}

/// Loads a dataset saved by [`save_dataset`].
pub fn load_dataset<P: AsRef<Path>>(dir: P) -> Result<ProfiledDataset, DatasetIoError> {
    let dir = dir.as_ref();
    let name = std::fs::read_to_string(dir.join("name.txt"))?.trim().to_owned();
    let graph = pcs_graph::io::load_edge_list(dir.join("graph.edges"))?;

    // Taxonomy: ids must arrive in ascending order (parents first).
    let tax_file = dir.join("taxonomy.tsv");
    let reader = BufReader::new(std::fs::File::open(&tax_file)?);
    let mut tax: Option<Taxonomy> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let parse_err = |message: String| DatasetIoError::Parse {
            file: "taxonomy.tsv".into(),
            line: idx + 1,
            message,
        };
        if let Some(rest) = line.strip_prefix("# root\t") {
            tax = Some(Taxonomy::new(rest.trim()));
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let id: u32 =
            parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| parse_err("bad id".into()))?;
        let parent: u32 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err("bad parent".into()))?;
        let label = parts.next().ok_or_else(|| parse_err("missing label".into()))?;
        let t = tax.as_mut().ok_or_else(|| parse_err("root line missing".into()))?;
        let new_id = t.add_child(parent, label).map_err(|e| parse_err(e.to_string()))?;
        if new_id != id {
            return Err(parse_err(format!("non-dense id {id}, expected {new_id}")));
        }
    }
    let tax = tax.ok_or_else(|| DatasetIoError::Parse {
        file: "taxonomy.tsv".into(),
        line: 0,
        message: "empty taxonomy file".into(),
    })?;

    // Profiles: leaf label ids per vertex.
    let reader = BufReader::new(std::fs::File::open(dir.join("profiles.tsv"))?);
    let mut profiles = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let leaves: Result<Vec<u32>, _> =
            line.split('\t').filter(|t| !t.is_empty()).map(|t| t.parse::<u32>()).collect();
        let leaves = leaves.map_err(|e| DatasetIoError::Parse {
            file: "profiles.tsv".into(),
            line: idx + 1,
            message: e.to_string(),
        })?;
        let p = PTree::from_labels(&tax, leaves).map_err(|e| DatasetIoError::Parse {
            file: "profiles.tsv".into(),
            line: idx + 1,
            message: e.to_string(),
        })?;
        profiles.push(p);
    }

    // Groups (optional file).
    let mut groups: Vec<Vec<VertexId>> = Vec::new();
    let groups_path = dir.join("groups.tsv");
    if groups_path.exists() {
        let reader = BufReader::new(std::fs::File::open(groups_path)?);
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let ids: Result<Vec<u32>, _> =
                line.split_whitespace().map(|t| t.parse::<u32>()).collect();
            groups.push(ids.map_err(|e| DatasetIoError::Parse {
                file: "groups.tsv".into(),
                line: idx + 1,
                message: e.to_string(),
            })?);
        }
    }

    Ok(ProfiledDataset { name, graph, tax, profiles, groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec};
    use crate::taxonomy::random_taxonomy;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pcs_dataset_io_{tag}"));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = generate(&DatasetSpec::small("rt", 120, 4), random_taxonomy(80, 4, 8, 1));
        let dir = tmpdir("roundtrip");
        save_dataset(&ds, &dir).unwrap();
        let back = load_dataset(&dir).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.graph, ds.graph);
        assert_eq!(back.tax.len(), ds.tax.len());
        for id in 0..ds.tax.len() as u32 {
            assert_eq!(back.tax.label(id), ds.tax.label(id));
            assert_eq!(back.tax.parent(id), ds.tax.parent(id));
        }
        assert_eq!(back.profiles, ds.profiles);
        assert_eq!(back.groups, ds.groups);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_groups_file_tolerated() {
        let ds = generate(&DatasetSpec::small("ng", 60, 5), random_taxonomy(40, 4, 6, 2));
        let dir = tmpdir("nogroups");
        save_dataset(&ds, &dir).unwrap();
        std::fs::remove_file(dir.join("groups.tsv")).unwrap();
        let back = load_dataset(&dir).unwrap();
        assert!(back.groups.is_empty());
        assert_eq!(back.profiles, ds.profiles);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_profiles_detected() {
        let ds = generate(&DatasetSpec::small("bad", 40, 6), random_taxonomy(30, 4, 6, 3));
        let dir = tmpdir("corrupt");
        save_dataset(&ds, &dir).unwrap();
        std::fs::write(dir.join("profiles.tsv"), "1\t2\nbanana\n").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert!(err.to_string().contains("profiles.tsv:2"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_errors() {
        assert!(load_dataset("/definitely/not/here").is_err());
    }
}
