// Fixture: #[cfg(test)] items are skipped entirely — test code is
// allowed to panic. Zero findings expected.

pub fn shipping() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![shipping()];
        assert_eq!(v.first().copied().unwrap(), 7);
        let w = [1u32, 2];
        assert_eq!(w[0], 1);
    }
}
