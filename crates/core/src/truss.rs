//! Truss-based profiled community search — the paper's §6 extension.
//!
//! The PCS definition is parametric in its structure-cohesiveness
//! measure; the conclusion proposes swapping minimum degree for
//! **k-truss** (every edge inside the community closes ≥ k − 2
//! triangles), which yields tighter, triangle-rich communities. The
//! whole enumeration machinery carries over unchanged because truss
//! feasibility is anti-monotone in the subtree exactly like Lemma 2:
//! restricting to a larger subtree only removes vertices, and a
//! connected k-truss inside a vertex set survives in every superset.
//!
//! [`truss_query`] mirrors Algorithm 1 with the localized truss engine
//! from `pcs-graph` as its verifier.

use std::rc::Rc;

use pcs_graph::truss::{SubsetTruss, TrussDecomposition};
use pcs_graph::{FxHashMap, VertexId};
use pcs_ptree::Subtree;

use crate::problem::{PcsOutcome, ProfiledCommunity, QueryContext, QueryStats};
use crate::Result;

/// Runs truss-based PCS for `(q, k)`: every maximal feasible subtree
/// `T ⊆ T(q)` whose connected k-truss containing `q` (restricted to
/// vertices carrying `T`) exists, with that truss community.
pub fn truss_query(ctx: &QueryContext<'_>, q: VertexId, k: u32) -> Result<PcsOutcome> {
    let space = ctx.space_for(q)?;
    let mut stats = QueryStats { query_tree_size: space.len() as u32, ..Default::default() };
    let g = ctx.graph;
    let mut engine = SubsetTruss::new(g.num_vertices());

    // The truss analogue of Gk: the global k-truss component of q.
    let global = TrussDecomposition::new(g);
    let base = global.ktruss_component(g, q, k);

    let mut results: FxHashMap<Subtree, Rc<Vec<VertexId>>> = FxHashMap::default();
    if let Some(base) = base {
        let base = Rc::new(base);
        let mut memo: FxHashMap<Subtree, Option<Rc<Vec<VertexId>>>> = FxHashMap::default();
        let mut verify = |s: &Subtree,
                          memo: &mut FxHashMap<Subtree, Option<Rc<Vec<VertexId>>>>,
                          stats: &mut QueryStats|
         -> Option<Rc<Vec<VertexId>>> {
            if s.count() <= 1 {
                return Some(base.clone());
            }
            if let Some(hit) = memo.get(s) {
                stats.memo_hits += 1;
                return hit.clone();
            }
            let want = space.to_ptree(s);
            let cands: Vec<VertexId> = base
                .iter()
                .copied()
                .filter(|&v| ctx.profiles.get(v as usize).is_some_and(|p| want.is_subtree_of(p)))
                .collect();
            stats.verifications += 1;
            let res = engine.ktruss_component_within(g, &cands, q, k).map(Rc::new);
            if res.is_some() {
                stats.feasible += 1;
            }
            memo.insert(s.clone(), res.clone());
            res
        };

        // Algorithm 1 skeleton with truss verification.
        let mut stack = vec![space.root_only()];
        stats.subtrees_generated += 1;
        while let Some(t_prime) = stack.pop() {
            let mut flag = true;
            let extensions = space.rightmost_extensions(&t_prime);
            stats.subtrees_generated += extensions.len() as u64;
            for pos in extensions {
                let t = t_prime.with(pos);
                if verify(&t, &mut memo, &mut stats).is_some() {
                    flag = false;
                    stack.push(t);
                }
            }
            if flag {
                // Full maximality: every lattice child infeasible.
                let maximal = space.lattice_children(&t_prime).into_iter().all(|p| {
                    stats.subtrees_generated += 1;
                    verify(&t_prime.with(p), &mut memo, &mut stats).is_none()
                });
                if maximal {
                    let community =
                        verify(&t_prime, &mut memo, &mut stats).expect("maximal is feasible");
                    results.insert(t_prime, community);
                }
            }
        }
    }

    let mut communities: Vec<ProfiledCommunity> = results
        .into_iter()
        .map(|(s, vs)| ProfiledCommunity {
            subtree: space.to_ptree(&s),
            vertices: vs.as_ref().clone(),
        })
        .collect();
    communities.sort_by(|a, b| a.subtree.cmp(&b.subtree));
    Ok(PcsOutcome { communities, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::Graph;
    use pcs_ptree::{PTree, Taxonomy};

    /// Two K4s sharing vertex 0, with different themes.
    fn two_k4s() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            7,
            &[
                // K4 A: 0,1,2,3
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                // K4 B: 0,4,5,6
                (0, 4),
                (0, 5),
                (0, 6),
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let mut profiles = Vec::new();
        profiles.push(PTree::from_labels(&t, [a, b]).unwrap()); // hub has both
        for _ in 0..3 {
            profiles.push(PTree::from_labels(&t, [a]).unwrap());
        }
        for _ in 0..3 {
            profiles.push(PTree::from_labels(&t, [b]).unwrap());
        }
        (g, t, profiles)
    }

    #[test]
    fn finds_both_truss_communities() {
        let (g, t, profiles) = two_k4s();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let out = truss_query(&ctx, 0, 4).unwrap();
        let sets: Vec<Vec<u32>> = out.communities.iter().map(|c| c.vertices.clone()).collect();
        assert!(sets.contains(&vec![0, 1, 2, 3]), "{sets:?}");
        assert!(sets.contains(&vec![0, 4, 5, 6]), "{sets:?}");
        // Each theme is the group label.
        for c in &out.communities {
            assert_eq!(c.subtree.len(), 2);
        }
    }

    #[test]
    fn truss_stricter_than_core() {
        // A 4-cycle is a 2-core but only a 2-truss (no triangles): the
        // min-degree PCS finds it at k=2, the truss PCS at k=3 does not.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let t = Taxonomy::new("r");
        let profiles = vec![PTree::root_only(); 4];
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let core_out = ctx.query(0, 2, crate::Algorithm::Basic).unwrap();
        assert_eq!(core_out.communities.len(), 1);
        let truss_out = truss_query(&ctx, 0, 3).unwrap();
        assert!(truss_out.communities.is_empty());
    }

    #[test]
    fn k2_truss_is_component_search() {
        let (g, t, profiles) = two_k4s();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let out = truss_query(&ctx, 1, 2).unwrap();
        assert!(!out.communities.is_empty());
        for c in &out.communities {
            assert!(c.vertices.binary_search(&1).is_ok());
        }
    }

    #[test]
    fn themes_pairwise_incomparable() {
        let (g, t, profiles) = two_k4s();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        for q in 0..7u32 {
            for k in 2..=4u32 {
                let out = truss_query(&ctx, q, k).unwrap();
                for a in &out.communities {
                    for b in &out.communities {
                        if a.subtree != b.subtree {
                            assert!(!a.subtree.is_subtree_of(&b.subtree));
                        }
                    }
                    // Reported theme is the true common subtree.
                    let m = PTree::intersect_all(a.vertices.iter().map(|&v| &profiles[v as usize]))
                        .unwrap();
                    assert_eq!(&m, &a.subtree);
                }
            }
        }
    }

    #[test]
    fn no_truss_no_answer() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let t = Taxonomy::new("r");
        let profiles = vec![PTree::root_only(); 3];
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let out = truss_query(&ctx, 0, 3).unwrap();
        assert!(out.communities.is_empty());
    }
}
