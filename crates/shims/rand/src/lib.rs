//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The workspace builds in containers without registry access, so the
//! handful of `rand` APIs the sources rely on are reimplemented here:
//! [`rngs::SmallRng`] (xoshiro256++), [`Rng::gen_range`] over half-open
//! and inclusive integer/float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom::shuffle`].
//! Streams are deterministic per seed but are NOT bit-compatible with
//! crates.io `rand`; nothing in-tree depends on the exact stream.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        f64_from_bits(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding interface; only the `seed_from_u64` entry point is needed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Wrapping arithmetic keeps signed ranges (negative
                // bounds, near-full-width spans) exact under
                // two's-complement; offset < span guarantees the
                // wrapped sum lands back inside the range.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform integer in `[0, span)` by rejection from the top 64 bits;
/// span 0 means the full 2^64 range collapsed into u128 arithmetic.
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return (rng.next_u64() as u128) & (span - 1);
    }
    // Rejection sampling keeps the draw exactly uniform.
    let zone = (u64::MAX as u128 + 1) - ((u64::MAX as u128 + 1) % span);
    loop {
        let draw = rng.next_u64() as u128;
        if draw < zone {
            return draw % span;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64_from_bits(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast xoshiro256++ generator (the role `rand`'s `SmallRng`
    /// plays; the concrete algorithm differs between rand versions and
    /// platforms anyway, so no stream compatibility is promised).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice extension trait: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice uniformly in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
            let w: i64 = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-width span must not overflow
            let v: i32 = rng.gen_range(-10..-2);
            assert!((-10..-2).contains(&v));
            let f: f64 = rng.gen_range(0.75..1.25);
            assert!((0.75..1.25).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
