//! # pcs-ptree — profile trees and the subtree search space
//!
//! The PCS paper attaches to every vertex a **P-tree**: a rooted tree of
//! attribute labels that is an *induced rooted subtree* of a global
//! taxonomy (the **GP-tree**, e.g. ACM CCS or MeSH). This crate builds
//! that entire substrate:
//!
//! * [`Taxonomy`] — the GP-tree: an interned label hierarchy with dense
//!   `LabelId`s assigned so that `parent(id) < id`;
//! * [`PTree`] — a vertex profile: an ancestor-closed set of taxonomy
//!   nodes containing the root, stored as a sorted id list. Subtree
//!   inclusion is a sorted-subset test, intersection of P-trees is a
//!   sorted merge, and the **maximal common subtree** `M(G)` of a
//!   community is an intersection fold ([`PTree::intersect_all`]);
//! * [`QuerySpace`] / [`Subtree`] — the per-query lattice of candidate
//!   subtrees of `T(q)`, as fixed-width bitsets over DFS positions, with
//!   non-redundant rightmost-path generation (Asai et al.), lattice
//!   parent/child moves (for the MARGIN adaptation), and Lemma 1
//!   counting helpers;
//! * [`ted`] — the Zhang–Shasha tree edit distance used by the CPS
//!   quality metric (Eq. 2 of the paper).
//!
//! ```
//! use pcs_ptree::{Taxonomy, PTree};
//!
//! let mut tax = Taxonomy::new("r");
//! let cm = tax.add_child(Taxonomy::ROOT, "CM").unwrap();
//! let ml = tax.add_child(cm, "ML").unwrap();
//! let ai = tax.add_child(cm, "AI").unwrap();
//! let is = tax.add_child(Taxonomy::ROOT, "IS").unwrap();
//!
//! let b = PTree::from_labels(&tax, [ml, ai]).unwrap(); // closure adds CM and r
//! let c = PTree::from_labels(&tax, [ml, is]).unwrap();
//! let common = b.intersect(&c);
//! assert!(common.contains(ml) && common.contains(cm));
//! assert!(!common.contains(is));
//! ```

#![deny(unsafe_code)]

pub mod enumerate;
pub mod intern;
pub mod profiles;
pub mod ptree;
pub mod query;
pub mod taxonomy;
pub mod ted;

pub use intern::{SubtreeId, SubtreeIdSet, SubtreeInterner};
pub use profiles::{ProfileSource, ProfilesHandle, ProfilesRef};
pub use ptree::{PTree, ProfileLoader};
pub use query::{QuerySpace, Subtree};
pub use taxonomy::{LabelId, Taxonomy};
pub use ted::{symmetric_difference_distance, tree_edit_distance, OrderedTree};

/// Errors produced by the profile-tree substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PTreeError {
    /// A label name was already used elsewhere in the taxonomy (label
    /// names are globally unique so that `id_of` is unambiguous).
    DuplicateLabel(String),
    /// A label id does not exist in the taxonomy.
    UnknownLabel(LabelId),
    /// A P-tree operation mixed trees from different taxonomies (the ids
    /// were out of range for the taxonomy supplied).
    TaxonomyMismatch,
}

impl std::fmt::Display for PTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PTreeError::DuplicateLabel(l) => write!(f, "duplicate label name {l:?}"),
            PTreeError::UnknownLabel(id) => write!(f, "unknown label id {id}"),
            PTreeError::TaxonomyMismatch => write!(f, "label ids out of range for taxonomy"),
        }
    }
}

impl std::error::Error for PTreeError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PTreeError>;
