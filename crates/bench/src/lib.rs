//! # pcs-bench — the paper-reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (see
//! DESIGN.md §4 for the full index) plus Criterion micro-benchmarks.
//! This library holds the shared plumbing: a tiny CLI parser, timing
//! helpers, and table printing.
//!
//! Every binary accepts `--scale <f64>` (dataset size multiplier,
//! default 0.02), `--queries <n>` (query count, default 100), and
//! `--seed <u64>`; run e.g.
//!
//! ```text
//! cargo run -p pcs-bench --release --bin fig14_query_efficiency -- --section k
//! ```

#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Common harness options parsed from `std::env::args`.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Dataset scale multiplier against paper sizes.
    pub scale: f64,
    /// Number of query vertices per dataset.
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
    /// Degree bound `k` (paper default 6).
    pub k: u32,
    /// Figure-specific section selector (e.g. fig14's `k`, `vertex`,
    /// `ptree`, `gptree`, `find`, `all`).
    pub section: String,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs { scale: 0.02, queries: 100, seed: 0x9c5_5eed, k: 6, section: "all".into() }
    }
}

/// Parses `--scale`, `--queries`, `--seed`, `--k`, `--section` from the
/// process arguments; unknown flags abort with a usage message.
pub fn parse_args() -> HarnessArgs {
    let mut out = HarnessArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => out.scale = take("--scale").parse().expect("--scale takes a float"),
            "--queries" => {
                out.queries = take("--queries").parse().expect("--queries takes an integer")
            }
            "--seed" => out.seed = take("--seed").parse().expect("--seed takes an integer"),
            "--k" => out.k = take("--k").parse().expect("--k takes an integer"),
            "--section" => out.section = take("--section"),
            "--help" | "-h" => {
                eprintln!(
                    "options: --scale <f64> --queries <n> --seed <u64> --k <u32> --section <name>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Owned [`PcsEngine`] over a dataset the harness keeps borrowing for
/// query sampling and subsampling: graph, taxonomy, and profiles are
/// cloned in, and the CP-tree index is prebuilt so timed regions
/// measure queries only. Binaries that are done with their dataset
/// should use [`engine_owning`] instead to avoid the copy.
pub fn engine_for(ds: &pcs_datasets::ProfiledDataset) -> pcs_engine::PcsEngine {
    engine_owning(ds.clone())
}

/// Owned [`PcsEngine`] consuming a dataset outright (no clone), with
/// the CP-tree index prebuilt. The dataset's ground-truth groups and
/// name are dropped; extract them first if the harness needs them.
pub fn engine_owning(ds: pcs_datasets::ProfiledDataset) -> pcs_engine::PcsEngine {
    pcs_engine::PcsEngine::builder()
        .graph(ds.graph)
        .taxonomy(ds.tax)
        .profiles(ds.profiles)
        .index_mode(pcs_engine::IndexMode::Eager)
        .build()
        .expect("consistent dataset")
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Milliseconds with two decimals, right-aligned to 12 columns.
pub fn ms(d: Duration) -> String {
    format!("{:>12.2}", d.as_secs_f64() * 1e3)
}

/// Prints a header row followed by a separator.
pub fn header(cols: &[&str]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    let joined = line.join(" ");
    println!("{joined}");
    println!("{}", "-".repeat(joined.len()));
}

/// Prints one row of right-aligned cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Convenience: format a float cell.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Convenience: format a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = HarnessArgs::default();
        assert_eq!(a.queries, 100);
        assert_eq!(a.k, 6);
        assert!(a.scale > 0.0);
        assert_eq!(a.section, "all");
    }

    #[test]
    fn time_measures() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.5), "0.500");
        assert_eq!(pct(0.43), "43%");
        assert!(ms(Duration::from_millis(5)).trim().starts_with('5'));
    }
}

/// Shared quality-experiment machinery (Figs. 9-12).
pub mod quality;
