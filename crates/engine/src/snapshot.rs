//! Epoch snapshots: the engine's lock-free read path.
//!
//! Every mutation publishes a fresh immutable [`SnapshotInner`] behind
//! an `Arc`; queries clone the current `Arc` once and then read without
//! any synchronization. In-flight queries keep the snapshot they
//! started on alive until they finish, so a writer can never yank state
//! out from under a reader — the epoch number stamped on every
//! [`QueryResponse`](crate::QueryResponse) says exactly which graph
//! version answered.

use crate::cache::QueryCache;
use pcs_graph::core::CoreDecomposition;
use pcs_graph::Graph;
use pcs_index::{IndexError, ShardedCpIndex};
use pcs_ptree::PTree;
use std::sync::{Arc, OnceLock};

/// One immutable version of the engine's data: graph, profiles, and the
/// lazily materialized derived state (core decomposition, CP-tree).
///
/// The big components sit behind their own `Arc`s so publication cost
/// tracks what a batch actually changed: an edge-only batch shares the
/// previous epoch's profiles, a profile-only batch shares its graph
/// *and* cores, and only the touched component is deep-copied.
pub(crate) struct SnapshotInner {
    pub(crate) graph: Arc<Graph>,
    pub(crate) profiles: Arc<Vec<PTree>>,
    /// Computed on first use; update batches with edge changes publish
    /// it pre-seeded from the incrementally maintained master copy,
    /// profile-only batches share the previous epoch's cell.
    pub(crate) cores: Arc<OnceLock<CoreDecomposition>>,
    /// The sharded index facade, created lazily (policy permitting);
    /// update batches publish it pre-seeded when incremental patching
    /// or an eager rebuild ran. Individual shards inside materialize
    /// on their own per-label `OnceLock`s.
    pub(crate) index: OnceLock<std::result::Result<ShardedCpIndex, IndexError>>,
    /// The epoch-keyed result cache, present when the engine was built
    /// with a [`CacheMode`](crate::CacheMode) other than `Off`. Bound
    /// to this snapshot's version: a hit can only return an answer
    /// computed against exactly this graph and these profiles.
    pub(crate) cache: Option<QueryCache>,
    pub(crate) epoch: u64,
}

impl SnapshotInner {
    /// The core decomposition of this snapshot's graph.
    pub(crate) fn cores(&self) -> &CoreDecomposition {
        self.cores.get_or_init(|| CoreDecomposition::new(&self.graph))
    }

    /// The sharded index, if this snapshot has its facade built
    /// already (individual shards may still be cold).
    pub(crate) fn index_if_built(&self) -> Option<&ShardedCpIndex> {
        self.index.get().and_then(|r| r.as_ref().ok())
    }

    /// A structural copy of this snapshot — sharing every `Arc`'d
    /// component and whatever the index cell holds (index clones share
    /// resident shards, so this is cheap) — with `cache` swapped in.
    pub(crate) fn clone_with_cache(&self, cache: Option<QueryCache>) -> SnapshotInner {
        let index = OnceLock::new();
        if let Some(r) = self.index.get() {
            let _ = index.set(r.clone());
        }
        SnapshotInner {
            graph: Arc::clone(&self.graph),
            profiles: Arc::clone(&self.profiles),
            cores: Arc::clone(&self.cores),
            index,
            cache,
            epoch: self.epoch,
        }
    }
}

/// The deep invariant verifier. Compiled only under `debug-invariants`;
/// release builds carry none of this code.
#[cfg(feature = "debug-invariants")]
impl SnapshotInner {
    /// Cross-checks every invariant one epoch's published state must
    /// satisfy:
    ///
    /// * **CSR structure** via [`Graph::validate`]: monotone offsets,
    ///   sorted duplicate-free adjacency, no self-loops, symmetric
    ///   half-edges;
    /// * **profiles**: one per vertex, every label in range, every
    ///   node set ancestor-closed in the taxonomy;
    /// * **cores** (when computed): one per vertex, `core(v) ≤ deg(v)`,
    ///   and the k-core closure spot-check at every vertex —
    ///   `|{u ∈ N(v) : core(u) ≥ core(v)}| ≥ core(v)` (a forged
    ///   decomposition that claims a deeper ĉore than the graph
    ///   supports fails here);
    /// * **index** (when built): the full
    ///   [`ShardedCpIndex::verify_deep`] pass against this snapshot's
    ///   authoritative graph and profiles.
    ///
    /// Epoch monotonicity is checked one level up, in
    /// [`PcsEngine::verify_deep`](crate::PcsEngine::verify_deep),
    /// which owns the high-water mark.
    pub(crate) fn verify_deep(&self, tax: &pcs_ptree::Taxonomy) -> std::result::Result<(), String> {
        let at = |detail: String| format!("epoch {}: {detail}", self.epoch);
        let n = self.graph.num_vertices();
        self.graph.validate().map_err(|e| at(format!("CSR invariant broken: {e}")))?;
        if self.profiles.len() != n {
            return Err(at(format!("{} profiles for {n} vertices", self.profiles.len())));
        }
        for (v, p) in self.profiles.iter().enumerate() {
            if let Some(&l) = p.nodes().iter().find(|&&l| l as usize >= tax.len()) {
                return Err(at(format!("profile of vertex {v} names unknown label {l}")));
            }
            if !tax.is_ancestor_closed(p.nodes()) {
                return Err(at(format!("profile of vertex {v} is not ancestor-closed")));
            }
        }
        if let Some(cores) = self.cores.get() {
            let core = cores.core_numbers();
            if core.len() != n {
                return Err(at(format!("{} core numbers for {n} vertices", core.len())));
            }
            for (v, &c) in core.iter().enumerate() {
                let nbrs = self.graph.neighbors(v as u32);
                if c as usize > nbrs.len() {
                    return Err(at(format!(
                        "core number {c} of vertex {v} exceeds its degree {}",
                        nbrs.len()
                    )));
                }
                let support = nbrs
                    .iter()
                    .filter(|&&u| core.get(u as usize).is_some_and(|&cu| cu >= c))
                    .count();
                if support < c as usize {
                    return Err(at(format!(
                        "k-core closure violated at vertex {v}: core {c} but only \
                         {support} neighbors at that level"
                    )));
                }
            }
        }
        if let Some(idx) = self.index_if_built() {
            idx.verify_deep(tax, &self.graph, &self.profiles)
                .map_err(|e| at(format!("index: {e}")))?;
        }
        Ok(())
    }
}

/// A consistent, immutable view of the engine at one epoch.
///
/// Obtained from [`PcsEngine::snapshot`](crate::PcsEngine::snapshot);
/// cheap to clone (one `Arc`). All accessors borrow from the same
/// version: a concurrent [`apply`](crate::PcsEngine::apply) can never
/// make `graph()` and `profiles()` disagree. Holding a snapshot only
/// pins memory — it never blocks writers.
#[derive(Clone)]
pub struct EngineSnapshot {
    pub(crate) inner: Arc<SnapshotInner>,
}

impl EngineSnapshot {
    /// The graph at this epoch.
    pub fn graph(&self) -> &Graph {
        &self.inner.graph
    }

    /// The per-vertex P-trees at this epoch.
    pub fn profiles(&self) -> &[PTree] {
        &self.inner.profiles
    }

    /// The core decomposition at this epoch (computed on first call if
    /// no query has needed it yet).
    pub fn cores(&self) -> &CoreDecomposition {
        self.inner.cores()
    }

    /// The sharded CP-tree index at this epoch, if its facade is
    /// built. Never triggers facade construction (probing the returned
    /// index can still materialize individual shards — that is its
    /// contract).
    pub fn index(&self) -> Option<&ShardedCpIndex> {
        self.inner.index_if_built()
    }

    /// Number of materialized index shards at this epoch (0 when no
    /// facade is built). Never triggers any construction — the serving
    /// observability companion to [`EngineSnapshot::index`].
    pub fn resident_shards(&self) -> usize {
        self.inner.index_if_built().map_or(0, ShardedCpIndex::resident_shards)
    }

    /// The epoch counter: 0 for the engine as built, +1 per published
    /// update batch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// Runs the deep invariant verifier on this snapshot alone (no
    /// epoch-monotonicity check — that needs the engine's high-water
    /// mark; see [`PcsEngine::verify_deep`](crate::PcsEngine::verify_deep)).
    /// `tax` must be the owning engine's taxonomy.
    #[cfg(feature = "debug-invariants")]
    pub fn verify_deep(&self, tax: &pcs_ptree::Taxonomy) -> std::result::Result<(), String> {
        self.inner.verify_deep(tax)
    }
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("epoch", &self.inner.epoch)
            .field("vertices", &self.inner.graph.num_vertices())
            .field("edges", &self.inner.graph.num_edges())
            .field("index_built", &self.inner.index.get().is_some())
            .finish()
    }
}
