//! # pcs — profiled community search
//!
//! A from-scratch Rust implementation of **"Exploring Communities in
//! Large Profiled Graphs"** (Chen, Fang, Cheng, Li, Chen, Zhang — ICDE
//! 2019): community search over graphs whose vertices carry
//! hierarchical attribute trees (P-trees) drawn from a global taxonomy
//! (GP-tree, e.g. ACM CCS or MeSH).
//!
//! Given a query vertex `q` and a degree bound `k`, a **profiled
//! community** is a connected subgraph containing `q` in which every
//! vertex has internal degree ≥ `k` and whose members share a *maximal*
//! common subtree — the community's interpretable "theme".
//!
//! ## Crates
//!
//! | module | backing crate | contents |
//! |---|---|---|
//! | [`graph`] | `pcs-graph` | CSR graph, k-core decomposition, localized peeling |
//! | [`ptree`] | `pcs-ptree` | taxonomy, P-trees, subtree lattice, tree edit distance |
//! | [`index`] | `pcs-index` | CL-tree and CP-tree indexes |
//! | [`core`]  | `pcs-core`  | `basic`, `incre`, `adv-I/D/P` query algorithms |
//! | [`baselines`] | `pcs-baselines` | Global, Local, ACQ, §5.3 metric variants |
//! | [`metrics`] | `pcs-metrics` | CPS, LDR, CPF, F1 |
//! | [`datasets`] | `pcs-datasets` | paper-calibrated synthetic datasets |
//!
//! ## Quickstart
//!
//! ```
//! use pcs::prelude::*;
//!
//! // A tiny collaboration triangle where everyone works on ML and AI.
//! let mut tax = Taxonomy::new("r");
//! let cm = tax.add_child(Taxonomy::ROOT, "CM").unwrap();
//! let ml = tax.add_child(cm, "ML").unwrap();
//! let ai = tax.add_child(cm, "AI").unwrap();
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
//! let profiles: Vec<PTree> = (0..3)
//!     .map(|_| PTree::from_labels(&tax, [ml, ai]).unwrap())
//!     .collect();
//!
//! // Index once, query online.
//! let index = CpTree::build(&g, &tax, &profiles).unwrap();
//! let ctx = QueryContext::new(&g, &tax, &profiles).unwrap().with_index(&index);
//! let out = ctx.query(0, 2, Algorithm::AdvP).unwrap();
//! assert_eq!(out.communities.len(), 1);
//! assert_eq!(out.communities[0].vertices, vec![0, 1, 2]);
//! ```

pub use pcs_baselines as baselines;
pub use pcs_core as core;
pub use pcs_datasets as datasets;
pub use pcs_graph as graph;
pub use pcs_index as index;
pub use pcs_metrics as metrics;
pub use pcs_ptree as ptree;

/// One-stop imports for applications.
pub mod prelude {
    pub use pcs_baselines::{
        acq_query, global_query, local_query, variant_query, CohesivenessMetric,
    };
    pub use pcs_core::{
        Algorithm, FindStrategy, PcsError, PcsOutcome, ProfiledCommunity, QueryContext,
    };
    pub use pcs_datasets::{DatasetSpec, ProfiledDataset, SuiteConfig, SuiteDataset};
    pub use pcs_graph::{Graph, GraphBuilder, VertexId};
    pub use pcs_index::{ClTree, CpTree};
    pub use pcs_metrics::{best_f1, cpf, cps, f1_score, ldr};
    pub use pcs_ptree::{LabelId, PTree, Taxonomy};
}
