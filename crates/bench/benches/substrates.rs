//! Criterion micro-benchmarks for the substrate layers: k-core
//! decomposition, localized peeling, CL-tree `get`, subtree operations,
//! and tree edit distance. These support the complexity claims in
//! DESIGN.md (O(m) decomposition, O(answer) `get`, word-wise subtree
//! tests).

use criterion::{criterion_group, criterion_main, Criterion};
use pcs_datasets::gen::random_ptree;
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::SuiteDataset;
use pcs_graph::core::{CoreDecomposition, SubsetCore};
use pcs_index::ClTree;
use pcs_ptree::{tree_edit_distance, OrderedTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_substrates(c: &mut Criterion) {
    let cfg = SuiteConfig { scale: 0.01, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Acmdl, cfg);
    let g = &ds.graph;

    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    group.bench_function("core_decomposition", |b| {
        b.iter(|| CoreDecomposition::new(g));
    });

    let cd = CoreDecomposition::new(g);
    let q = (0..g.num_vertices() as u32).max_by_key(|&v| cd.core_number(v)).unwrap();
    group.bench_function("kcore_component", |b| {
        b.iter(|| cd.kcore_component(g, q, 6));
    });

    let candidates: Vec<u32> = cd.kcore_vertices(4);
    let mut sc = SubsetCore::new(g.num_vertices());
    group.bench_function("subset_core_peel", |b| {
        b.iter(|| sc.kcore_component_within(g, &candidates, q, 6));
    });

    let cl = ClTree::build(g);
    // The zero-copy hot path: O(depth) + borrowed arena slice.
    group.bench_function("cltree_community_ref", |b| {
        b.iter(|| cl.community_ref(q, 6).map(|s| s.len()));
    });
    // The owned compatibility path (copies + sorts every call).
    group.bench_function("cltree_get_owned", |b| {
        b.iter(|| cl.get(q, 6));
    });

    let mut rng = SmallRng::seed_from_u64(3);
    let a = random_ptree(&ds.tax, 30, &mut rng);
    let bb = random_ptree(&ds.tax, 30, &mut rng);
    group.bench_function("ptree_intersect", |b| {
        b.iter(|| a.intersect(&bb));
    });
    group.bench_function("ptree_subtree_test", |b| {
        b.iter(|| a.is_subtree_of(&bb));
    });

    let oa = OrderedTree::from_ptree(&ds.tax, &a);
    let ob = OrderedTree::from_ptree(&ds.tax, &bb);
    group.bench_function("tree_edit_distance_30", |b| {
        b.iter(|| tree_edit_distance(&oa, &ob));
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
