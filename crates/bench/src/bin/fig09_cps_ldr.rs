//! Fig. 9: (a) Community Pairwise Similarity and (b) Level-Diversity
//! Ratio, comparing PCS against ACQ, Global, and Local.
//!
//! CPS is reported for the paper's series PCs* (PCS-only communities),
//! P-ACs (found by both PCS and ACQ), ACQ, Global, and Local; LDR is
//! each method's per-level label coverage relative to PCS.

use pcs_bench::quality::{run_all_methods, Method};
use pcs_bench::{engine_owning, f, header, parse_args, row};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_metrics::{cps, ldr};

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };
    let methods = [Method::PcsOnly, Method::PcsAndAcq, Method::Acq, Method::Global, Method::Local];

    println!("Fig. 9(a) — CPS per method ({} queries, k = {})\n", args.queries, args.k);
    header(&["dataset", "PCs*", "P-ACs", "ACQ", "Global", "Local"]);
    let mut ldr_rows: Vec<Vec<String>> = Vec::new();
    for which in SuiteDataset::ALL {
        let ds = build(which, cfg);
        let name = ds.name.clone();
        let (queries, _) = sample_query_vertices(&ds, args.k, args.queries, args.seed ^ 0x9a);
        // The dataset is fully sampled; move it into the owned engine.
        let engine = engine_owning(ds);
        let results = run_all_methods(&engine, &queries, args.k);
        let mut cells = vec![name.clone()];
        for m in methods {
            let comms: Vec<_> = results.iter().flat_map(|r| r.of(m)).collect();
            cells.push(f(cps(engine.taxonomy(), engine.snapshot().profiles(), &comms)));
        }
        row(&cells);

        // Compute the Fig. 9(b) row now, while this dataset's engine is
        // alive, so graph + index drop at the end of the iteration
        // instead of staying resident across all four datasets.
        let snap = engine.snapshot();
        let (tax, profiles) = (engine.taxonomy(), snap.profiles());
        let mut acq_acc = 0.0;
        let mut global_acc = 0.0;
        let mut local_acc = 0.0;
        let mut counted = 0usize;
        for (qi, r) in results.iter().enumerate() {
            if r.pcs.is_empty() {
                continue;
            }
            let tq = &profiles[queries[qi] as usize];
            acq_acc += ldr(tax, tq, &r.acq, &r.pcs);
            global_acc += ldr(tax, tq, &r.global, &r.pcs);
            local_acc += ldr(tax, tq, &r.local, &r.pcs);
            counted += 1;
        }
        let n = counted.max(1) as f64;
        ldr_rows.push(vec![name, f(acq_acc / n), f(global_acc / n), f(local_acc / n)]);
    }
    println!("\nPaper: P-ACs highest, PCs* close behind, Global/Local lowest.\n");

    println!("Fig. 9(b) — LDR relative to PCS (1.0 = same diversity)\n");
    header(&["dataset", "ACQ", "Global", "Local"]);
    for cells in &ldr_rows {
        row(cells);
    }
    println!("\nPaper: ACQ covers only 40-60% of PCS's per-level labels.");
}
