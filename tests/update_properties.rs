//! Property tests for the update subsystem: randomized `UpdateBatch`
//! sequences — interleaved edge insertions/removals and profile
//! rewrites, seasoned with deliberate no-ops and duplicate edges — must
//! preserve the paper's structural invariants on the mutated graph:
//!
//! * **anti-monotonicity** (Lemma 2): if `Gk[T]` exists, `Gk[T']`
//!   exists for every `T' ⊆ T` and contains it;
//! * **maximality** (Problem 1): every reported community is exactly
//!   `Gk[theme]` recomputed from scratch, and themes are pairwise
//!   incomparable;
//! * **differential agreement**: the mutated engine answers exactly
//!   like an engine built from scratch on the mutated data.

use pcs::graph::core::SubsetCore;
use pcs::prelude::*;
use pcs::ptree::enumerate::enumerate_rooted_subtrees;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_instance(seed: u64) -> (Graph, Taxonomy, Vec<PTree>, Vec<LabelId>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = rng.gen_range(6..=12usize);
    let mut tax = Taxonomy::new("r");
    let mut ids = vec![Taxonomy::ROOT];
    for i in 1..labels {
        let parent = ids[rng.gen_range(0..ids.len())];
        ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
    }
    let n = rng.gen_range(10..=22usize);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.2) {
                edges.push((a, b));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|_| {
            let count = rng.gen_range(0..=5usize);
            let picks: Vec<LabelId> =
                (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            PTree::from_labels(&tax, picks).unwrap()
        })
        .collect();
    (g, tax, profiles, ids)
}

/// A seed-driven sequence of batches, including duplicate edges within
/// one batch, guaranteed no-ops, and profile rewrites.
fn random_batches(seed: u64, n: u32, tax: &Taxonomy, ids: &[LabelId]) -> Vec<UpdateBatch> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbadc0de);
    let mut batches = Vec::new();
    for _ in 0..rng.gen_range(2..=4usize) {
        let mut batch = UpdateBatch::new();
        for _ in 0..rng.gen_range(1..=6usize) {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            match rng.gen_range(0..6) {
                0 | 1 => {
                    if a != b {
                        batch = batch.add_edge(a, b);
                        if rng.gen_bool(0.3) {
                            batch = batch.add_edge(b, a); // duplicate in-batch
                        }
                    }
                }
                2 => {
                    if a != b {
                        batch = batch.remove_edge(a, b); // possibly absent: no-op
                    }
                }
                3 => {
                    if a != b {
                        // add-then-remove: net no-op pair
                        batch = batch.add_edge(a, b).remove_edge(a, b);
                    }
                }
                _ => {
                    let count = rng.gen_range(0..=4usize);
                    let picks: Vec<LabelId> =
                        (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
                    batch = batch.set_profile(a, PTree::from_labels(tax, picks).unwrap());
                }
            }
        }
        batches.push(batch);
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Anti-monotonicity survives arbitrary mutation: on the mutated
    /// graph, every feasible subtree's lattice parents are feasible and
    /// contain it.
    #[test]
    fn anti_monotonicity_survives_mutation(seed in 0u64..5_000) {
        let (g, tax, profiles, ids) = random_instance(seed);
        let n = g.num_vertices() as u32;
        let engine = PcsEngine::builder()
            .graph(g)
            .taxonomy(tax.clone())
            .profiles(profiles)
            .index_mode(if seed % 2 == 0 { IndexMode::Eager } else { IndexMode::Lazy })
            .build()
            .unwrap();
        for batch in random_batches(seed, n, &tax, &ids) {
            engine.apply(&batch).unwrap();
        }
        let snap = engine.snapshot();
        let ctx = pcs::core::QueryContext::new(snap.graph(), &tax, snap.profiles()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x11);
        let q = rng.gen_range(0..n);
        let k = rng.gen_range(1..3u32);
        let space = ctx.space_for(q).unwrap();
        let mut ver = pcs::core::Verifier::new(&ctx, &space, q, k);
        for s in enumerate_rooted_subtrees(&space) {
            if let Some(comm) = ver.verify(&s) {
                for leaf in space.lattice_parents(&s) {
                    let smaller = s.without(leaf);
                    if smaller.is_empty() {
                        continue;
                    }
                    let parent_comm =
                        ver.verify(&smaller).expect("anti-monotonicity violated post-mutation");
                    for v in comm.iter() {
                        prop_assert!(
                            parent_comm.binary_search(v).is_ok(),
                            "Gk[T] ⊄ Gk[T'] after mutation (seed {seed})"
                        );
                    }
                }
            }
        }
    }

    /// Maximality survives mutation, and the mutated engine matches a
    /// from-scratch engine query for query.
    #[test]
    fn maximality_and_differential_agreement_survive_mutation(seed in 0u64..5_000) {
        let (g, tax, profiles, ids) = random_instance(seed);
        let n = g.num_vertices() as u32;
        let engine = PcsEngine::builder()
            .graph(g)
            .taxonomy(tax.clone())
            .profiles(profiles)
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap();
        let mut epochs = vec![engine.epoch()];
        for batch in random_batches(seed, n, &tax, &ids) {
            epochs.push(engine.apply(&batch).unwrap().epoch);
        }
        prop_assert!(epochs.windows(2).all(|w| w[0] <= w[1]), "epochs monotone");
        let snap = engine.snapshot();
        let fresh = PcsEngine::builder()
            .graph(snap.graph().clone())
            .taxonomy(tax.clone())
            .profiles(snap.profiles().to_vec())
            .index_mode(IndexMode::Eager)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        for _ in 0..3 {
            let q = rng.gen_range(0..n);
            let k = rng.gen_range(1..3u32);
            let live = engine.query(&QueryRequest::vertex(q).k(k)).unwrap();
            let refr = fresh.query(&QueryRequest::vertex(q).k(k)).unwrap();
            prop_assert_eq!(
                &live.outcome.communities, &refr.outcome.communities,
                "mutated engine disagrees with rebuild (seed {}, q {}, k {})", seed, q, k
            );
            // Structure maximality: each community is exactly Gk[theme]
            // recomputed from scratch on the mutated graph.
            let mut sc = SubsetCore::new(snap.graph().num_vertices());
            for c in live.communities() {
                let cands: Vec<VertexId> = snap
                    .graph()
                    .vertices()
                    .filter(|&v| c.subtree.is_subtree_of(&snap.profiles()[v as usize]))
                    .collect();
                let full = sc
                    .kcore_component_within(snap.graph(), &cands, q, k)
                    .expect("community members survive their own theme");
                prop_assert_eq!(&full, &c.vertices);
            }
            // Profile maximality: themes pairwise incomparable.
            for a in live.communities() {
                for b in live.communities() {
                    if a.subtree != b.subtree {
                        prop_assert!(
                            !a.subtree.is_subtree_of(&b.subtree),
                            "theme subsumed post-mutation (seed {})", seed
                        );
                    }
                }
            }
        }
    }
}
