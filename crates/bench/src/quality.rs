//! Shared machinery for the effectiveness experiments (Figs. 9-12).
//!
//! Runs the full method zoo — PCS, ACQ, Global, Local — over a query
//! workload and keeps each method's communities per query, including
//! the paper's two derived series: `P-ACs` (communities found by both
//! PCS and ACQ) and `PCs*` (communities only PCS finds).

use pcs_baselines::{acq_query, global_query, local_query};
use pcs_core::{Algorithm, ProfiledCommunity};
use pcs_engine::{PcsEngine, QueryRequest};
use pcs_graph::VertexId;

/// Method identifiers used in the quality figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Communities only PCS finds (not returned by ACQ).
    PcsOnly,
    /// Communities found by both PCS and ACQ.
    PcsAndAcq,
    /// All PCS communities.
    Pcs,
    /// ACQ communities.
    Acq,
    /// Global (structure-only, maximal).
    Global,
    /// Local (structure-only, expansion).
    Local,
}

impl Method {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Method::PcsOnly => "PCs*",
            Method::PcsAndAcq => "P-ACs",
            Method::Pcs => "PCS",
            Method::Acq => "ACQ",
            Method::Global => "Global",
            Method::Local => "Local",
        }
    }
}

/// All per-query community lists for one query vertex.
#[derive(Clone, Debug, Default)]
pub struct QueryResults {
    /// PCS communities.
    pub pcs: Vec<ProfiledCommunity>,
    /// ACQ communities.
    pub acq: Vec<ProfiledCommunity>,
    /// Global community (0 or 1 entries).
    pub global: Vec<ProfiledCommunity>,
    /// Local community (0 or 1 entries).
    pub local: Vec<ProfiledCommunity>,
}

impl QueryResults {
    /// Communities found by both PCS and ACQ (matched by vertex set).
    pub fn pcs_and_acq(&self) -> Vec<ProfiledCommunity> {
        self.pcs
            .iter()
            .filter(|p| self.acq.iter().any(|a| a.vertices == p.vertices))
            .cloned()
            .collect()
    }

    /// Communities only PCS finds.
    pub fn pcs_only(&self) -> Vec<ProfiledCommunity> {
        self.pcs
            .iter()
            .filter(|p| self.acq.iter().all(|a| a.vertices != p.vertices))
            .cloned()
            .collect()
    }

    /// The community list of a method.
    pub fn of(&self, m: Method) -> Vec<ProfiledCommunity> {
        match m {
            Method::PcsOnly => self.pcs_only(),
            Method::PcsAndAcq => self.pcs_and_acq(),
            Method::Pcs => self.pcs.clone(),
            Method::Acq => self.acq.clone(),
            Method::Global => self.global.clone(),
            Method::Local => self.local.clone(),
        }
    }
}

/// Runs every method for each query vertex. PCS goes through the
/// engine's order-preserving batch path; the baselines borrow the
/// engine's data through its accessors.
pub fn run_all_methods(engine: &PcsEngine, queries: &[VertexId], k: u32) -> Vec<QueryResults> {
    let snap = engine.snapshot();
    let (g, tax, profiles) = (snap.graph(), engine.taxonomy(), snap.profiles());
    let requests: Vec<QueryRequest> =
        queries.iter().map(|&q| QueryRequest::vertex(q).k(k).algorithm(Algorithm::AdvP)).collect();
    let batch = engine.query_batch(&requests);
    queries
        .iter()
        .zip(batch)
        .map(|(&q, pcs_result)| {
            let pcs = pcs_result.map(|r| r.outcome.communities).unwrap_or_default();
            let acq = acq_query(g, tax, profiles, q, k)
                .communities
                .into_iter()
                .map(|c| c.community)
                .collect();
            let global = global_query(g, profiles, q, k).into_iter().collect();
            let local = local_query(g, profiles, q, k, usize::MAX).into_iter().collect();
            QueryResults { pcs, acq, global, local }
        })
        .collect()
}
