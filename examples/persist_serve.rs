//! Persist-then-serve: the warm-start workflow, now with per-shard
//! laziness.
//!
//! A serving fleet should pay the offline cost (validation, core
//! decomposition, CP-tree construction) **once**, persist the result,
//! and boot every replica from the snapshot. This example builds a
//! DBLP-like profiled graph, warms and saves an engine, then boots two
//! kinds of replica from the file:
//!
//! * an **eager** replica — every persisted shard decoded and
//!   validated up front, predictable latency from the first request;
//! * a **lazy** replica — the snapshot's shard directory is mapped but
//!   each shard payload decodes only on its first probe (and any shard
//!   missing from the file rebuilds from the graph on demand), so
//!   *time to first query* tracks the labels the first request
//!   actually touches, not the whole taxonomy.
//!
//! Finally the warm replica goes **behind a real socket**: `pcs-serve`
//! binds a loopback port, HTTP clients query it concurrently, and the
//! server is drained gracefully — the full persist → load → serve
//! lifecycle in one process.
//!
//! Run with: `cargo run --release --example persist_serve`

use pcs::datasets::suite::{build, SuiteConfig};
use pcs::datasets::{sample_query_vertices, SuiteDataset};
use pcs::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let scale = 0.005;
    let ds = build(SuiteDataset::Dblp, SuiteConfig { scale, ..SuiteConfig::default() });
    println!(
        "dataset: {} vertices, {} edges, {} labels (DBLP-like @ {scale})",
        ds.graph.num_vertices(),
        ds.graph.num_edges(),
        ds.tax.len()
    );

    // --- Offline: build once, eagerly, and persist -----------------------
    let start = Instant::now();
    let primary = PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .index_mode(IndexMode::Eager)
        .build()
        .expect("consistent inputs");
    let build_time = start.elapsed();

    let path =
        std::env::temp_dir().join(format!("pcs-persist-serve-{}.snapshot", std::process::id()));
    let start = Instant::now();
    primary.save(&path).expect("snapshot written");
    let save_time = start.elapsed();
    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    // --- Online: an eager replica decodes everything up front ------------
    let start = Instant::now();
    let replica = PcsEngine::builder()
        .index_mode(IndexMode::Eager)
        .load(&path)
        .expect("snapshot validated and loaded");
    let load_time = start.elapsed();

    println!("eager build : {build_time:>10.2?}");
    println!("save        : {save_time:>10.2?}  ({:.1} MB on disk)", file_len as f64 / 1e6);
    println!(
        "eager load  : {load_time:>10.2?}  ({:.0}x faster than building)",
        build_time.as_secs_f64() / load_time.as_secs_f64()
    );

    // --- Online: a lazy replica reaches its first answer sooner ----------
    // Pick the first query up front so the timer covers load + answer;
    // real traffic concentrates on few labels, so take the sampled
    // vertex with the smallest profile.
    let k = 5;
    let (queries, _) = sample_query_vertices(&ds, k, 5, 0x7e);
    let first = queries
        .iter()
        .copied()
        .min_by_key(|&q| ds.profiles[q as usize].len())
        .expect("sampled queries");
    let start = Instant::now();
    let lazy_replica = PcsEngine::builder()
        .index_mode(IndexMode::Lazy)
        .load(&path)
        .expect("partial load: shard table mapped, payloads deferred");
    let partial_load = start.elapsed();
    let first_answer = lazy_replica.query(&QueryRequest::vertex(first).k(k)).unwrap();
    let ttfq = start.elapsed();
    let snap = lazy_replica.snapshot();
    let (resident, populated) =
        (snap.resident_shards(), snap.index().map_or(0, |i| i.num_populated_labels()));
    println!("partial load: {partial_load:>10.2?}  (shard payloads deferred to first touch)");
    println!(
        "time to 1st answer: {ttfq:>7.2?}  ({} communities; {resident}/{populated} shards \
         materialized by this query)",
        first_answer.communities().len()
    );

    // Identical answers on all three engines, same epoch.
    for &q in &queries {
        let a = primary.query(&QueryRequest::vertex(q).k(k)).unwrap();
        let b = replica.query(&QueryRequest::vertex(q).k(k)).unwrap();
        let c = lazy_replica.query(&QueryRequest::vertex(q).k(k)).unwrap();
        assert_eq!(a.communities(), b.communities(), "eager replica diverged at q={q}");
        assert_eq!(a.communities(), c.communities(), "lazy replica diverged at q={q}");
    }
    println!(
        "both replicas answer {} sampled queries identically (epoch {} everywhere)",
        queries.len(),
        replica.epoch()
    );

    // The loaded replicas are fully live: updates apply incrementally —
    // resident shards are patched, absent ones merely invalidated and
    // rebuilt only if some later query needs them.
    let (u, v) = (queries[0], queries[1 % queries.len()]);
    if u != v && !ds.graph.has_edge(u, v) {
        let report = lazy_replica.add_edge(u, v).unwrap();
        println!(
            "applied a live edge insertion on the lazy replica: epoch {} -> {}, index {:?}",
            report.epoch - 1,
            report.epoch,
            report.index
        );
    }

    let _ = std::fs::remove_file(&path);

    // --- Serve the warm replica over a real socket -----------------------
    // The eager replica becomes the network-facing engine: bind a
    // loopback port, replay a small closed-loop workload over HTTP, and
    // shut down gracefully. This is exactly what `pcs-serve`'s CI smoke
    // does at larger scale (see crates/README.md, "Serving layer").
    let server = PcsServer::start(Arc::new(replica), "127.0.0.1:0", ServeConfig::default())
        .expect("loopback bind");
    println!("serving the warm replica on http://{}/query", server.local_addr());
    let ops: Vec<LoadOp> = queries.iter().map(|&q| LoadOp::Query { vertex: q, k }).collect();
    let report = run_load(
        server.local_addr(),
        &ops,
        &LoadConfig { concurrency: 2, ..LoadConfig::default() },
    );
    let stats = server.shutdown();
    assert_eq!(report.ok, ops.len(), "every HTTP query must answer 200");
    assert_eq!(stats.http_5xx, 0, "a healthy server never answers 5xx");
    println!(
        "served {} HTTP queries at {:.0} qps (p50 {} us, p99 {} us); \
         {} batches, dedup saved {}; drained cleanly",
        report.ok,
        report.qps,
        report.read_latency.p50,
        report.read_latency.p99,
        stats.batches,
        stats.dedup_saved
    );

    // --- Crash and recover: the WAL carries acked, un-snapshotted work ---
    // A durable engine fsyncs every apply to a write-ahead log before
    // acknowledging it, so updates survive a crash *without* any
    // `save()`. Build one, apply edges, "crash" by dropping the engine
    // with the checkpoint still at epoch 0, then recover with `open()`
    // — the reopened engine must land on the exact pre-crash epoch and
    // serve answers that include every acknowledged update.
    let wal_dir =
        std::env::temp_dir().join(format!("pcs-persist-serve-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let durable = PcsEngine::builder()
        .graph(ds.graph.clone())
        .taxonomy(ds.tax.clone())
        .profiles(ds.profiles.clone())
        .durable(&wal_dir)
        .build()
        .expect("durable engine: epoch-0 checkpoint + empty WAL");
    for (i, &qu) in queries.iter().enumerate() {
        for &qv in &queries[i + 1..] {
            if qu != qv && !durable.snapshot().graph().has_edge(qu, qv) {
                durable.add_edge(qu, qv).expect("durable apply: logged and fsynced before ack");
            }
        }
    }
    if durable.epoch() == 0 {
        // The sampled vertices formed a clique; a profile replace is
        // always applicable.
        let root_only = PTree::from_labels(&ds.tax, [Taxonomy::ROOT]).unwrap();
        durable.update_profile(queries[0], root_only).expect("durable apply");
    }
    let pre_crash_epoch = durable.epoch();
    assert!(pre_crash_epoch > 0, "at least one update must have been acknowledged");
    assert!(
        durable.durable_epoch().expect("durable engine reports a durable epoch") >= pre_crash_epoch,
        "an acked epoch is on disk before it is published"
    );
    let probe = QueryRequest::vertex(queries[0]).k(k);
    let before_crash = durable.query(&probe).unwrap();
    drop(durable); // crash: no save(), no checkpoint — only the WAL tail survives

    let recovered = PcsEngine::builder()
        .durable(&wal_dir)
        .open()
        .expect("recovery: load checkpoint, replay fsynced WAL tail");
    assert_eq!(recovered.epoch(), pre_crash_epoch, "recovery lands on the pre-crash epoch");
    let after_crash = recovered.query(&probe).unwrap();
    assert_eq!(
        before_crash.communities(),
        after_crash.communities(),
        "recovered answers include the post-snapshot updates"
    );
    println!(
        "crash-recovered {pre_crash_epoch} acked updates from the WAL alone \
         (checkpoint was epoch 0); answers match the pre-crash engine"
    );

    // The recovered engine serves like any other — and keeps logging.
    let server = PcsServer::start(Arc::new(recovered), "127.0.0.1:0", ServeConfig::default())
        .expect("loopback bind");
    let report = run_load(
        server.local_addr(),
        &ops,
        &LoadConfig { concurrency: 2, ..LoadConfig::default() },
    );
    let stats = server.shutdown();
    assert_eq!(report.ok, ops.len(), "every HTTP query against the recovered engine answers 200");
    assert_eq!(stats.epoch, pre_crash_epoch, "the served epoch is the recovered one");
    assert_eq!(
        stats.durable_epoch,
        Some(pre_crash_epoch),
        "quiescent: everything published is durable"
    );
    println!(
        "served {} HTTP queries from the recovered engine (epoch {}, durable epoch {})",
        report.ok,
        stats.epoch,
        stats.durable_epoch.unwrap_or(0)
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}
