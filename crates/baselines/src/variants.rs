//! The four profile-cohesiveness definitions compared in Section 5.3.
//!
//! A good PCS definition must pick *what "shared profile" means*. The
//! paper tries four metrics and shows (Fig. 12) that the common-subtree
//! metric (c) dominates on every quality index:
//!
//! | metric | shared structure maximized |
//! |---|---|
//! | (a) common nodes | number of shared P-tree labels (flat, = ACQ) |
//! | (b) common paths | number of shared root-to-leaf paths |
//! | (c) common subtree | the maximal common subtree (= PCS) |
//! | (d) similarity | a TED-similarity threshold to the query profile |

use pcs_core::{Algorithm, ProfiledCommunity, QueryContext};
use pcs_graph::core::SubsetCore;
use pcs_graph::{FxHashSet, VertexId};
use pcs_ptree::{tree_edit_distance, LabelId, OrderedTree};

use crate::acq::acq_query;
use crate::community_from_vertices;

/// Which profile-cohesiveness definition to use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CohesivenessMetric {
    /// (a) Maximize the number of shared P-tree labels (flat keywords).
    CommonNodes,
    /// (b) Maximize the number of shared root-to-leaf paths.
    CommonPaths,
    /// (c) Maximize the common subtree — the PCS definition.
    CommonSubtree,
    /// (d) Keep vertices whose TED similarity to `T(q)` is ≥ `beta`.
    Similarity {
        /// Similarity threshold in `[0, 1]`.
        beta: f64,
    },
}

impl CohesivenessMetric {
    /// Display name used by the Fig. 12 harness.
    pub fn name(self) -> &'static str {
        match self {
            CohesivenessMetric::CommonNodes => "(a) common-nodes",
            CohesivenessMetric::CommonPaths => "(b) common-paths",
            CohesivenessMetric::CommonSubtree => "(c) common-subtree",
            CohesivenessMetric::Similarity { .. } => "(d) similarity",
        }
    }
}

/// Runs one community query under the chosen metric. The context must
/// carry an index when `CommonSubtree` is requested (it delegates to
/// the advanced PCS method).
pub fn variant_query(
    ctx: &QueryContext<'_>,
    q: VertexId,
    k: u32,
    metric: CohesivenessMetric,
) -> Vec<ProfiledCommunity> {
    match metric {
        CohesivenessMetric::CommonNodes => acq_query(ctx.graph, ctx.tax, ctx.profiles, q, k)
            .communities
            .into_iter()
            .map(|c| c.community)
            .collect(),
        CohesivenessMetric::CommonPaths => common_paths_query(ctx, q, k),
        CohesivenessMetric::CommonSubtree => {
            let algo = if ctx.index.is_some() { Algorithm::AdvP } else { Algorithm::Basic };
            ctx.query(q, k, algo).map(|o| o.communities).unwrap_or_default()
        }
        CohesivenessMetric::Similarity { beta } => similarity_query(ctx, q, k, beta),
    }
}

/// Metric (b): maximize how many full root-to-leaf paths of `T(q)` the
/// community shares. Uses the same closed-set DFS as `crate::acq` (a
/// community sharing `t` paths would make all `2^t` path subsets
/// feasible under Apriori), with the leaves of `T(q)` as items: a
/// vertex "has" a path iff its profile contains the leaf (ancestor
/// closure supplies the rest).
fn common_paths_query(ctx: &QueryContext<'_>, q: VertexId, k: u32) -> Vec<ProfiledCommunity> {
    let g = ctx.graph;
    if q as usize >= g.num_vertices() {
        return Vec::new();
    }
    let mut sc = SubsetCore::new(g.num_vertices());
    let all: Vec<VertexId> = g.vertices().collect();
    let Some(gk) = sc.kcore_component_within(g, &all, q, k) else {
        return Vec::new();
    };
    let Some(pq) = ctx.profiles.get(q as usize) else {
        return Vec::new();
    };
    let leaves: Vec<LabelId> = pq.leaves(ctx.tax);
    let has_path =
        |v: VertexId, leaf: LabelId| ctx.profiles.get(v as usize).is_some_and(|p| p.contains(leaf));
    let shared = |community: &[VertexId]| -> Vec<LabelId> {
        leaves
            .iter()
            .copied()
            .filter(|&leaf| community.iter().all(|&v| has_path(v, leaf)))
            .collect()
    };

    let root_set = shared(&gk);
    let mut visited: FxHashSet<Vec<LabelId>> = FxHashSet::default();
    visited.insert(root_set.clone());
    let mut stack: Vec<(Vec<LabelId>, Vec<VertexId>)> = vec![(root_set, gk)];
    let mut closed: Vec<(Vec<LabelId>, Vec<VertexId>)> = Vec::new();
    while let Some((s, community)) = stack.pop() {
        closed.push((s.clone(), community.clone()));
        for &leaf in &leaves {
            if s.binary_search(&leaf).is_ok() {
                continue;
            }
            let cands: Vec<VertexId> =
                community.iter().copied().filter(|&v| has_path(v, leaf)).collect();
            if let Some(next_comm) = sc.kcore_component_within(g, &cands, q, k) {
                let next_set = shared(&next_comm);
                if visited.insert(next_set.clone()) {
                    stack.push((next_set, next_comm));
                }
            }
        }
    }
    let best = closed.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
    let mut out: Vec<ProfiledCommunity> = closed
        .into_iter()
        .filter(|(s, _)| s.len() == best)
        .map(|(_, verts)| community_from_vertices(verts, ctx.profiles))
        .collect();
    out.sort_by(|a, b| a.subtree.cmp(&b.subtree).then(a.vertices.cmp(&b.vertices)));
    out.dedup();
    out
}

/// Metric (d): one community — the k-ĉore of `q` among vertices whose
/// P-tree is TED-similar to `T(q)` (similarity `1 − TED/|Ti ∪ Tq|`
/// ≥ `beta`).
fn similarity_query(
    ctx: &QueryContext<'_>,
    q: VertexId,
    k: u32,
    beta: f64,
) -> Vec<ProfiledCommunity> {
    let g = ctx.graph;
    if q as usize >= g.num_vertices() {
        return Vec::new();
    }
    let Some(tq) = ctx.profiles.get(q as usize) else {
        return Vec::new();
    };
    let tq_ord = OrderedTree::from_ptree(ctx.tax, tq);
    let mut sc = SubsetCore::new(g.num_vertices());
    let all: Vec<VertexId> = g.vertices().collect();
    let Some(gk) = sc.kcore_component_within(g, &all, q, k) else {
        return Vec::new();
    };
    let cands: Vec<VertexId> = gk
        .into_iter()
        .filter(|&v| {
            let Some(tv) = ctx.profiles.get(v as usize) else {
                return false;
            };
            let ted = tree_edit_distance(&OrderedTree::from_ptree(ctx.tax, tv), &tq_ord);
            let denom = tv.union(tq).len().max(1);
            1.0 - (ted as f64 / denom as f64) >= beta
        })
        .collect();
    match sc.kcore_component_within(g, &cands, q, k) {
        Some(verts) => vec![community_from_vertices(verts, ctx.profiles)],
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::Graph;
    use pcs_index::CpTree;
    use pcs_ptree::{PTree, Taxonomy};

    fn figure1() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [ml, ai]).unwrap(),
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(),
            PTree::from_labels(&t, [dms, hw]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
            PTree::from_labels(&t, [hw, cm]).unwrap(),
            PTree::from_labels(&t, [is, hw]).unwrap(),
        ];
        (g, t, profiles)
    }

    #[test]
    fn common_subtree_matches_pcs() {
        let (g, t, profiles) = figure1();
        let index = CpTree::build(&g, &t, &profiles).unwrap();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap().with_index(&index);
        let via_variant = variant_query(&ctx, 3, 2, CohesivenessMetric::CommonSubtree);
        let direct = ctx.query(3, 2, Algorithm::AdvP).unwrap().communities;
        assert_eq!(via_variant, direct);
        assert_eq!(via_variant.len(), 2);
    }

    #[test]
    fn common_nodes_is_acq() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let got = variant_query(&ctx, 3, 2, CohesivenessMetric::CommonNodes);
        let acq = acq_query(&g, &t, &profiles, 3, 2);
        assert_eq!(got.len(), acq.communities.len());
    }

    #[test]
    fn common_paths_maximizes_leaf_paths() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let got = variant_query(&ctx, 3, 2, CohesivenessMetric::CommonPaths);
        assert!(!got.is_empty());
        for c in &got {
            assert!(c.vertices.binary_search(&3).is_ok());
            // Valid k-core.
            for &v in &c.vertices {
                let deg =
                    g.neighbors(v).iter().filter(|u| c.vertices.binary_search(u).is_ok()).count();
                assert!(deg >= 2);
            }
        }
    }

    #[test]
    fn similarity_threshold_sweeps() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        // beta = 0 accepts everyone: the full 2-ĉore of D.
        let loose = variant_query(&ctx, 3, 2, CohesivenessMetric::Similarity { beta: 0.0 });
        assert_eq!(loose.len(), 1);
        assert_eq!(loose[0].vertices, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // beta = 1 keeps only vertices with identical profiles to D.
        let strict = variant_query(&ctx, 3, 2, CohesivenessMetric::Similarity { beta: 1.0 });
        assert!(strict.is_empty(), "{strict:?}");
        // Monotone: higher beta, no larger community.
        let mid = variant_query(&ctx, 3, 2, CohesivenessMetric::Similarity { beta: 0.4 });
        if let Some(m) = mid.first() {
            assert!(m.vertices.len() <= loose[0].vertices.len());
        }
    }

    #[test]
    fn names_are_stable() {
        assert!(CohesivenessMetric::CommonNodes.name().contains("(a)"));
        assert!(CohesivenessMetric::CommonPaths.name().contains("(b)"));
        assert!(CohesivenessMetric::CommonSubtree.name().contains("(c)"));
        assert!(CohesivenessMetric::Similarity { beta: 0.5 }.name().contains("(d)"));
    }

    #[test]
    fn out_of_range_queries_are_empty() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        assert!(variant_query(&ctx, 99, 2, CohesivenessMetric::CommonPaths).is_empty());
        assert!(variant_query(&ctx, 99, 2, CohesivenessMetric::Similarity { beta: 0.5 }).is_empty());
    }
}
