//! Subtree counting and exhaustive enumeration.
//!
//! Supports Lemma 1 of the paper (a P-tree with `x` nodes has at most
//! `2^(x−1) + 1` subtrees, the empty tree included) and provides the
//! reference enumerator the algorithm crates test against.

use crate::query::{QuerySpace, Subtree};

/// Number of induced rooted subtrees of `T(q)` **containing the root**,
/// computed by the product recurrence `g(v) = Π_c (1 + g(c))`.
///
/// Add 1 for the empty tree to match the paper's `f(x)` (Lemma 1).
/// Saturates at `u128::MAX` for pathologically large spaces.
pub fn count_rooted_subtrees(space: &QuerySpace) -> u128 {
    fn g(space: &QuerySpace, pos: u32) -> u128 {
        let mut prod: u128 = 1;
        for &c in space.children_of(pos) {
            prod = prod.saturating_mul(1u128.saturating_add(g(space, c)));
        }
        prod
    }
    g(space, 0)
}

/// Total search-space size including the empty tree — the paper's
/// `f(x)`.
pub fn count_all_subtrees(space: &QuerySpace) -> u128 {
    count_rooted_subtrees(space).saturating_add(1)
}

/// The paper's Lemma 1 upper bound `2^(x−1) + 1` for a P-tree with `x`
/// nodes (saturating).
pub fn lemma1_upper_bound(x: usize) -> u128 {
    if x == 0 {
        return 1;
    }
    if x > 128 {
        return u128::MAX;
    }
    (1u128 << (x - 1)).saturating_add(1)
}

/// Exhaustively enumerates every valid non-empty subtree of `T(q)` via
/// rightmost-path extension. Intended for tests and for the Table 3
/// search-space statistics on query-sized trees; cost is proportional to
/// the output size, which is exponential in `|T(q)|`.
pub fn enumerate_rooted_subtrees(space: &QuerySpace) -> Vec<Subtree> {
    let mut out = Vec::new();
    let mut stack = vec![space.empty()];
    while let Some(s) = stack.pop() {
        for p in space.rightmost_extensions(&s) {
            let child = s.with(p);
            out.push(child.clone());
            stack.push(child);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptree::PTree;
    use crate::taxonomy::Taxonomy;

    fn space_of(tax: &Taxonomy, labels: &[u32]) -> QuerySpace {
        let tq = PTree::from_labels(tax, labels.iter().copied()).unwrap();
        QuerySpace::new(tax, &tq).unwrap()
    }

    #[test]
    fn star_tree_achieves_lemma1_bound() {
        // Root with x-1 children: subtree count is exactly 2^(x-1)+1.
        for x in 1..=10usize {
            let mut t = Taxonomy::new("r");
            let kids: Vec<u32> =
                (0..x - 1).map(|i| t.add_child(0, &format!("c{i}")).unwrap()).collect();
            let qs = space_of(&t, &kids);
            assert_eq!(qs.len(), x);
            assert_eq!(count_all_subtrees(&qs), lemma1_upper_bound(x), "x={x}");
        }
    }

    #[test]
    fn path_tree_is_linear() {
        // A path of x nodes has x rooted subtrees (+1 empty).
        let mut t = Taxonomy::new("r");
        let mut parent = 0;
        for i in 0..7 {
            parent = t.add_child(parent, &format!("p{i}")).unwrap();
        }
        let qs = space_of(&t, &[parent]);
        assert_eq!(qs.len(), 8);
        assert_eq!(count_all_subtrees(&qs), 9);
    }

    #[test]
    fn counting_matches_enumeration() {
        // r -> {a, b}; a -> {c, d}; b -> {e}.
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let c = t.add_child(a, "c").unwrap();
        let d = t.add_child(a, "d").unwrap();
        let e = t.add_child(b, "e").unwrap();
        let qs = space_of(&t, &[c, d, e]);
        let all = enumerate_rooted_subtrees(&qs);
        assert_eq!(all.len() as u128, count_rooted_subtrees(&qs));
        // g(a)= (1+1)(1+1)=4, g(b)=2, g(r)=(1+4)(1+2)=15.
        assert_eq!(count_rooted_subtrees(&qs), 15);
        // All enumerated are valid, unique, and contain the root.
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
        for s in &all {
            assert!(qs.is_valid(s));
            assert!(s.contains(0));
        }
    }

    #[test]
    fn lemma1_bound_never_exceeded_on_random_trees() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..50 {
            let mut t = Taxonomy::new("r");
            let mut ids = vec![0u32];
            let x = rng.gen_range(1..=12);
            for i in 1..x {
                let parent = ids[rng.gen_range(0..ids.len())];
                ids.push(t.add_child(parent, &format!("n{i}")).unwrap());
            }
            let qs = space_of(&t, &ids);
            let count = count_all_subtrees(&qs);
            assert!(count <= lemma1_upper_bound(x), "x={x} count={count}");
            assert!(count > x as u128); // at least the chain prefixes
        }
    }

    #[test]
    fn lemma1_bound_edge_cases() {
        assert_eq!(lemma1_upper_bound(0), 1);
        assert_eq!(lemma1_upper_bound(1), 2);
        assert_eq!(lemma1_upper_bound(2), 3);
        assert_eq!(lemma1_upper_bound(200), u128::MAX);
    }

    #[test]
    fn root_only_space() {
        let t = Taxonomy::new("r");
        let qs = space_of(&t, &[]);
        assert_eq!(qs.len(), 1);
        assert_eq!(count_rooted_subtrees(&qs), 1);
        let all = enumerate_rooted_subtrees(&qs);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], qs.root_only());
    }
}
