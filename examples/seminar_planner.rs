//! Case study: organizing a seminar around a renowned expert
//! (the paper's Section 5.2 "Jim Gray" study, Figs. 7-8).
//!
//! A hub author in a synthetic ACMDL-like collaboration network wants
//! to invite groups of researchers who (a) collaborate tightly (k-core)
//! and (b) share research themes. PCS surfaces *several* differently-
//! themed circles; ACQ — which only counts flat shared keywords —
//! collapses to the single largest-keyword-overlap group and misses the
//! alternatives.
//!
//! Run with: `cargo run --release --example seminar_planner`

use pcs::prelude::*;

fn main() {
    // A small ACMDL-like collaboration network.
    let cfg = SuiteConfig { scale: 0.02, ..SuiteConfig::default() };
    let ds = pcs::datasets::suite::build(SuiteDataset::Acmdl, cfg);
    println!(
        "collaboration network: {} authors, {} co-authorships, d̂ = {:.2}, P̂ = {:.2}",
        ds.graph.num_vertices(),
        ds.graph.num_edges(),
        ds.graph.avg_degree(),
        ds.avg_ptree_size()
    );

    let index = CpTree::build(&ds.graph, &ds.tax, &ds.profiles).expect("dataset is consistent");
    let ctx = QueryContext::new(&ds.graph, &ds.tax, &ds.profiles)
        .expect("dataset is consistent")
        .with_index(&index);

    // The "renowned expert": a high-degree vertex with a rich profile,
    // like Jim Gray in the paper.
    let expert = ds
        .graph
        .vertices()
        .max_by_key(|&v| (ds.profiles[v as usize].len(), ds.graph.degree(v)))
        .expect("non-empty graph");
    println!(
        "renowned expert: author #{expert} (degree {}, profile of {} CCS subjects)\n",
        ds.graph.degree(expert),
        ds.profiles[expert as usize].len()
    );

    let k = 4; // the paper's case-study setting
    let out = ctx.query(expert, k, Algorithm::AdvP).expect("query in range");
    println!("PCS (k = {k}) proposes {} seminar circles:", out.communities.len());
    for (i, c) in out.communities.iter().enumerate().take(6) {
        println!(
            "  circle #{}: {} researchers, theme of {} subjects (height {}):",
            i + 1,
            c.vertices.len(),
            c.subtree.len(),
            c.subtree.height(&ds.tax),
        );
        for line in c.subtree.render(&ds.tax).lines().take(8) {
            println!("      {line}");
        }
    }
    if out.communities.len() > 6 {
        println!("  … and {} more.", out.communities.len() - 6);
    }

    let acq = acq_query(&ds.graph, &ds.tax, &ds.profiles, expert, k);
    println!(
        "\nACQ proposes {} circle(s) (all maximizing the same flat keyword count of {}).",
        acq.communities.len(),
        acq.keyword_count
    );
    println!(
        "PCS surfaces {} distinct themes vs ACQ's {} — the organizer can now choose.",
        out.communities.len(),
        acq.communities.len()
    );
}
