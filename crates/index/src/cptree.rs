//! The CP-tree index (Section 4.2 / Algorithm 2 of the paper).
//!
//! One node per GP-tree label; each node stores the CL-tree of the
//! subgraph induced by the vertices whose P-trees contain that label.
//! Parent/child links between CP-tree nodes simply follow the taxonomy.
//! A `headMap` records, per vertex, the leaf labels of its P-tree so
//! the whole profile can be restored from the index (upward closure).
//!
//! Build cost is `O(|P| · m · α(n))` and space `O(|P| · n)` as analyzed
//! in the paper; the per-label CL-trees are independent, so construction
//! optionally fans out across threads.

use pcs_graph::{demoted_by_deletion, promoted_by_insertion, FxHashMap, FxHashSet};
use pcs_graph::{Graph, VertexId};
use pcs_ptree::{LabelId, PTree, Taxonomy};

use crate::cltree::ClTree;
use crate::{IndexError, Result};

/// One applied change to the underlying profiled graph, as reported to
/// the index for incremental maintenance. Deltas describe *effective*
/// changes only — no-ops (duplicate insertions, absent removals,
/// identical profile writes) must be filtered out by the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphDelta {
    /// The undirected edge `{u, v}` was inserted.
    EdgeAdded {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// The undirected edge `{u, v}` was removed.
    EdgeRemoved {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Vertex `v`'s P-tree was replaced (at most one such delta per
    /// vertex per batch, describing the net old → new change).
    ProfileChanged {
        /// The vertex whose profile changed.
        v: VertexId,
    },
}

/// What [`CpTree::apply_batch`] (or the sharded equivalent,
/// [`crate::ShardedCpIndex::apply_batch`]) did, label by label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpPatchStats {
    /// Labels whose induced subgraph was touched by at least one delta
    /// (the invalidation set).
    pub labels_touched: usize,
    /// Touched labels whose CL-tree was actually rebuilt.
    pub labels_rebuilt: usize,
    /// Touched labels proven unchanged by the bounded traversal check
    /// and left as-is.
    pub labels_skipped: usize,
    /// Touched labels whose shard was not resident and was merely
    /// invalidated — membership bookkeeping only, no CL-tree built.
    /// Always 0 for the monolithic [`CpTree`], whose labels are all
    /// resident by construction.
    pub labels_invalidated: usize,
}

/// One CP-tree node: a taxonomy label plus the CL-tree of its induced
/// subgraph. The sorted vertex list of the label is the CL-tree's
/// member array ([`ClTree::members`]) — not duplicated here, so
/// cloning an index for incremental patching copies each list once.
#[derive(Clone, Debug)]
pub struct CpNode {
    /// The label this node indexes.
    pub label: LabelId,
    /// The CL-tree over the vertices whose P-tree contains `label`
    /// (the paper's per-node `vertexNodeMap`).
    pub cl: ClTree,
}

/// The CP-tree index.
#[derive(Clone, Debug)]
pub struct CpTree {
    /// Indexed by `LabelId`; `None` when no vertex carries the label.
    nodes: Vec<Option<CpNode>>,
    /// `headMap`: per vertex, the leaf labels of its P-tree.
    head_map: Vec<Vec<LabelId>>,
    n: usize,
}

impl CpTree {
    /// Builds the index sequentially (Algorithm 2).
    pub fn build(g: &Graph, tax: &Taxonomy, profiles: &[PTree]) -> Result<CpTree> {
        Self::build_with_threads(g, tax, profiles, 1)
    }

    /// Builds the index, constructing per-label CL-trees on up to
    /// `threads` worker threads (they are fully independent).
    pub fn build_with_threads(
        g: &Graph,
        tax: &Taxonomy,
        profiles: &[PTree],
        threads: usize,
    ) -> Result<CpTree> {
        if g.num_vertices() != profiles.len() {
            return Err(IndexError::ProfileCountMismatch {
                vertices: g.num_vertices(),
                profiles: profiles.len(),
            });
        }
        // Lines 2-7 of Algorithm 2: bucket vertices per label and fill
        // the headMap from P-tree leaves.
        let mut vertices_of: Vec<Vec<VertexId>> = vec![Vec::new(); tax.len()];
        let mut head_map: Vec<Vec<LabelId>> = Vec::with_capacity(profiles.len());
        for (v, p) in profiles.iter().enumerate() {
            for &l in p.nodes() {
                if l as usize >= tax.len() {
                    return Err(IndexError::UnknownLabel(l));
                }
                vertices_of[l as usize].push(v as VertexId);
            }
            head_map.push(p.leaves(tax));
        }
        // Lines 8-10: build one CL-tree per populated label.
        let threads = threads.max(1);
        let mut nodes: Vec<Option<CpNode>> = vec![None; tax.len()];
        if threads == 1 {
            for (label, verts) in vertices_of.into_iter().enumerate() {
                if verts.is_empty() {
                    continue;
                }
                let cl = ClTree::build_on_subset(g, &verts);
                nodes[label] = Some(CpNode { label: label as LabelId, cl });
            }
        } else {
            // Shard-parallel: every label is one independent work item,
            // claimed from a shared counter. Static chunking used to
            // strand the few giant labels (root, top-level areas) on
            // one worker; work stealing keeps all threads busy until
            // the last shard finishes.
            let work: Vec<(usize, Vec<VertexId>)> =
                vertices_of.into_iter().enumerate().filter(|(_, v)| !v.is_empty()).collect();
            let next = std::sync::atomic::AtomicUsize::new(0);
            let built: Vec<(usize, CpNode)> = std::thread::scope(|scope| {
                let (work, next) = (&work, &next);
                let handles: Vec<_> = (0..threads.min(work.len()).max(1))
                    .map(|_| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some((label, verts)) = work.get(i) else { break };
                                let cl = ClTree::build_on_subset(g, verts);
                                out.push((*label, CpNode { label: *label as LabelId, cl }));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("index worker panicked")).collect()
            });
            for (label, node) in built {
                nodes[label] = Some(node);
            }
        }
        Ok(CpTree { nodes, head_map, n: g.num_vertices() })
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of populated CP-tree nodes (labels carried by at least
    /// one vertex).
    pub fn num_populated_labels(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// The CP-tree node of `label`, if populated.
    pub fn node(&self, label: LabelId) -> Option<&CpNode> {
        self.nodes.get(label as usize)?.as_ref()
    }

    /// Sorted vertices carrying `label` (empty slice when none).
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.node(label).map_or(&[], |n| n.cl.members())
    }

    /// The paper's `I.get(k, q, t)` as a **borrowed slice**: the k-ĉore
    /// containing `q` in the subgraph of vertices carrying `label`.
    /// O(depth of the label's CL-tree), zero allocation — the answer is
    /// one contiguous range of the CL-tree's DFS arena. Distinct but
    /// unsorted; `None` when the ĉore does not exist.
    ///
    /// This is the probe the indexed query hot path runs thousands of
    /// times per query.
    #[inline]
    pub fn get_ref(&self, k: u32, q: VertexId, label: LabelId) -> Option<&[VertexId]> {
        self.node(label)?.cl.community_ref(q, k)
    }

    /// Leaf labels of `v`'s P-tree (the `headMap` entry).
    pub fn head(&self, v: VertexId) -> &[LabelId] {
        &self.head_map[v as usize]
    }

    /// Restores `T(v)` from the headMap by upward closure — the paper's
    /// "Restore P-trees" operation.
    pub fn restore_ptree(&self, tax: &Taxonomy, v: VertexId) -> PTree {
        PTree::from_labels(tax, self.head_map[v as usize].iter().copied())
            .expect("headMap labels always come from the build taxonomy")
    }

    // ------------------------------------------------------------------
    // Incremental maintenance (the serving engine's update path)
    // ------------------------------------------------------------------

    /// The labels whose CP-tree node a batch of deltas can possibly
    /// affect, deduplicated and sorted.
    ///
    /// An edge `{u, v}` exists in a label's induced subgraph only when
    /// *both* endpoints carry the label, so an edge delta touches
    /// `T(u) ∩ T(v)`; a profile delta touches the symmetric difference
    /// of the old and new label sets. Labels outside this set keep
    /// their CL-trees verbatim — the whole point of the incremental
    /// path. Callers use the set's size to decide between patching
    /// ([`CpTree::apply_batch`]) and a full rebuild.
    pub fn invalidation_set(
        &self,
        tax: &Taxonomy,
        profiles_after: &[PTree],
        deltas: &[GraphDelta],
    ) -> Vec<LabelId> {
        invalidation_set_from(&|v| carried_labels(&self.head_map, tax, v), profiles_after, deltas)
    }

    /// Applies a batch of effective graph deltas in place, rebuilding
    /// only the CL-trees that can have changed.
    ///
    /// `g_after` and `profiles_after` describe the graph **after** the
    /// whole batch; `deltas` lists the applied changes (no no-ops, and
    /// at most one [`GraphDelta::ProfileChanged`] per vertex). Labels
    /// outside the [invalidation set](CpTree::invalidation_set) are
    /// untouched. A label touched by exactly one edge delta and no
    /// profile delta first runs the bounded no-op check and keeps its
    /// CL-tree when the change provably cannot alter it (frequent for
    /// intra-community edges); everything else is rebuilt from
    /// `g_after` via [`ClTree::build_on_subset`].
    ///
    /// The result is semantically identical to a fresh
    /// [`CpTree::build`] on the post-batch inputs (the differential
    /// suite in `tests/incremental_vs_rebuild.rs` enforces this).
    pub fn apply_batch(
        &mut self,
        g_after: &Graph,
        tax: &Taxonomy,
        profiles_after: &[PTree],
        deltas: &[GraphDelta],
    ) -> CpPatchStats {
        debug_assert_eq!(self.n, g_after.num_vertices(), "vertex set is fixed");
        debug_assert_eq!(self.n, profiles_after.len());
        // Pass 1: classify touched labels (shared with the sharded
        // index — see `classify_batch`).
        let touch =
            classify_batch(&|v| carried_labels(&self.head_map, tax, v), profiles_after, deltas);
        // Pass 2: decide, per touched label, between skip and rebuild.
        // Decisions read only pre-batch state, so order is irrelevant.
        let mut rebuild: Vec<LabelId> = touch.profile_touch.iter().copied().collect();
        let mut stats =
            CpPatchStats { labels_touched: touch.profile_touch.len(), ..CpPatchStats::default() };
        for (&label, &(count, (u, v, added))) in &touch.edge_touch {
            if touch.profile_touch.contains(&label) {
                continue; // already queued for rebuild
            }
            stats.labels_touched += 1;
            let preserved = count == 1
                && self
                    .node(label)
                    .is_some_and(|node| edge_change_preserves(&node.cl, g_after, u, v, added));
            if preserved {
                stats.labels_skipped += 1;
            } else {
                rebuild.push(label);
            }
        }
        rebuild.sort_unstable();
        // Pass 3: rebuild.
        for label in rebuild {
            let mut verts = match self.nodes[label as usize].take() {
                Some(node) => node.cl.into_members(),
                None => Vec::new(),
            };
            touch.patch_members(label, &mut verts);
            stats.labels_rebuilt += 1;
            if verts.is_empty() {
                continue; // node stays vacated
            }
            let cl = ClTree::build_on_subset(g_after, &verts);
            self.nodes[label as usize] = Some(CpNode { label, cl });
        }
        // Pass 4: refresh the headMap for re-profiled vertices.
        for &v in &touch.profile_vertices {
            self.head_map[v as usize] = profiles_after[v as usize].leaves(tax);
        }
        stats
    }

    /// Decomposes the index into its per-label nodes and `headMap` (the
    /// monolithic → sharded conversion seed).
    pub(crate) fn into_parts(self) -> (Vec<Option<CpNode>>, Vec<Vec<LabelId>>, usize) {
        (self.nodes, self.head_map, self.n)
    }

    /// Approximate heap footprint in bytes (for the paper's space-cost
    /// discussion and the scalability harness).
    pub fn memory_bytes(&self) -> usize {
        let mut total = 0usize;
        for node in self.nodes.iter().flatten() {
            total += node.cl.memory_bytes();
        }
        for h in &self.head_map {
            total += h.len() * std::mem::size_of::<LabelId>();
        }
        total
    }
}

// ---------------------------------------------------------------------
// Maintenance helpers shared by the monolithic `CpTree` and the
// per-label `ShardedCpIndex`. Each shape supplies its own pre-batch
// carried-label oracle (`labels_of`): the monolithic index closes its
// `headMap` upward, the sharded index reads its shared profile `Arc`
// directly — but the classification logic is one function, so the two
// shapes can never drift in how they treat a batch.
// ---------------------------------------------------------------------

/// The carried-label oracle: all labels `T(v)` held **before** the
/// batch being planned.
pub(crate) type LabelsOf<'a> = dyn Fn(VertexId) -> FxHashSet<LabelId> + 'a;

/// All labels carried by `v` according to a `headMap`: the upward
/// closure of its leaves. This is exactly `T(v).nodes()` for the
/// profiles the index was built from, so it reflects the *pre-batch*
/// state while a patch is being planned.
pub(crate) fn carried_labels(
    head_map: &[Vec<LabelId>],
    tax: &Taxonomy,
    v: VertexId,
) -> FxHashSet<LabelId> {
    let mut out = FxHashSet::default();
    out.insert(Taxonomy::ROOT);
    for &leaf in &head_map[v as usize] {
        for a in tax.ancestors_inclusive(leaf) {
            if !out.insert(a) {
                break; // the rest of the path is already present
            }
        }
    }
    out
}

/// [`CpTree::invalidation_set`] as a free function of the carried-label
/// oracle.
pub(crate) fn invalidation_set_from(
    labels_of: &LabelsOf<'_>,
    profiles_after: &[PTree],
    deltas: &[GraphDelta],
) -> Vec<LabelId> {
    let mut touched: FxHashSet<LabelId> = FxHashSet::default();
    let mut carried_memo: FxHashMap<VertexId, FxHashSet<LabelId>> = FxHashMap::default();
    for delta in deltas {
        match *delta {
            GraphDelta::EdgeAdded { u, v } | GraphDelta::EdgeRemoved { u, v } => {
                for w in [u, v] {
                    carried_memo.entry(w).or_insert_with(|| labels_of(w));
                }
                let (cu, cv) = (&carried_memo[&u], &carried_memo[&v]);
                touched.extend(cu.intersection(cv).copied());
            }
            GraphDelta::ProfileChanged { v } => {
                let old = labels_of(v);
                let new: FxHashSet<LabelId> =
                    profiles_after[v as usize].nodes().iter().copied().collect();
                touched.extend(old.symmetric_difference(&new).copied());
            }
        }
    }
    let mut out: Vec<LabelId> = touched.into_iter().collect();
    out.sort_unstable();
    out
}

/// The per-label classification of one delta batch: which labels were
/// touched by edges (with the delta count and the last edge, so the
/// bounded no-op check only runs when sound), which by membership
/// changes, and the net member additions/removals per label.
pub(crate) struct BatchTouch {
    pub(crate) edge_touch: FxHashMap<LabelId, (usize, (VertexId, VertexId, bool))>,
    pub(crate) profile_touch: FxHashSet<LabelId>,
    pub(crate) member_add: FxHashMap<LabelId, Vec<VertexId>>,
    pub(crate) member_remove: FxHashMap<LabelId, Vec<VertexId>>,
    pub(crate) profile_vertices: Vec<VertexId>,
}

impl BatchTouch {
    /// Applies `label`'s net membership delta to a sorted member list
    /// in place (result stays sorted).
    pub(crate) fn patch_members(&self, label: LabelId, verts: &mut Vec<VertexId>) {
        if let Some(removed) = self.member_remove.get(&label) {
            verts.retain(|v| !removed.contains(v));
        }
        if let Some(added) = self.member_add.get(&label) {
            verts.extend_from_slice(added);
            verts.sort_unstable();
        }
    }
}

/// Pass 1 of every incremental patch: walk the deltas once, bucketing
/// touched labels. Reads only pre-batch state (through `labels_of`).
pub(crate) fn classify_batch(
    labels_of: &LabelsOf<'_>,
    profiles_after: &[PTree],
    deltas: &[GraphDelta],
) -> BatchTouch {
    let mut touch = BatchTouch {
        edge_touch: FxHashMap::default(),
        profile_touch: FxHashSet::default(),
        member_add: FxHashMap::default(),
        member_remove: FxHashMap::default(),
        profile_vertices: Vec::new(),
    };
    let mut carried_memo: FxHashMap<VertexId, FxHashSet<LabelId>> = FxHashMap::default();
    for delta in deltas {
        match *delta {
            GraphDelta::EdgeAdded { u, v } | GraphDelta::EdgeRemoved { u, v } => {
                let added = matches!(delta, GraphDelta::EdgeAdded { .. });
                for w in [u, v] {
                    carried_memo.entry(w).or_insert_with(|| labels_of(w));
                }
                let (cu, cv) = (&carried_memo[&u], &carried_memo[&v]);
                for &label in cu.intersection(cv) {
                    let entry = touch.edge_touch.entry(label).or_insert((0, (u, v, added)));
                    entry.0 += 1;
                    entry.1 = (u, v, added);
                }
            }
            GraphDelta::ProfileChanged { v } => {
                debug_assert!(
                    !touch.profile_vertices.contains(&v),
                    "one ProfileChanged delta per vertex"
                );
                touch.profile_vertices.push(v);
                let old = labels_of(v);
                let new: FxHashSet<LabelId> =
                    profiles_after[v as usize].nodes().iter().copied().collect();
                for &label in new.difference(&old) {
                    touch.profile_touch.insert(label);
                    touch.member_add.entry(label).or_default().push(v);
                }
                for &label in old.difference(&new) {
                    touch.profile_touch.insert(label);
                    touch.member_remove.entry(label).or_default().push(v);
                }
            }
        }
    }
    touch
}

/// True when the single edge change `{u, v}` (inserted when `added`)
/// provably leaves `cl` — one label's CL-tree — unchanged.
///
/// Both tests are bounded traversals of the label's induced subgraph,
/// never O(n):
///
/// * **Insertion** is a no-op iff no member's subgraph core number
///   rises ([`promoted_by_insertion`] over the label-filtered
///   adjacency returns nothing) *and* the endpoints already shared
///   their `min(core)`-ĉore (same [`ClTree::summit`]), so no ĉores
///   merge at any level.
/// * **Removal** is a no-op iff no member's core number drops *and*
///   the endpoints are still connected within the `min(core)`-level
///   members, so no ĉore splits.
pub(crate) fn edge_change_preserves(
    cl: &ClTree,
    g_after: &Graph,
    u: VertexId,
    v: VertexId,
    added: bool,
) -> bool {
    let (Some(cu), Some(cv)) = (cl.core_of(u), cl.core_of(v)) else {
        return false;
    };
    let k = cu.min(cv);
    let adj = |w: VertexId| g_after.neighbors(w).iter().copied().filter(|&z| cl.contains_vertex(z));
    let core = |w: VertexId| cl.core_of(w).expect("adjacency filtered to members");
    if added {
        if cl.summit(u, k) != cl.summit(v, k) {
            return false; // two ĉores merge at level ≤ k
        }
        promoted_by_insertion(u, v, adj, core).is_empty()
    } else {
        if !demoted_by_deletion(u, v, adj, core).is_empty() {
            return false;
        }
        // Still connected within the k-level members? (Connectivity
        // at level k implies connectivity at every level below it.)
        let mut seen: FxHashSet<VertexId> = FxHashSet::default();
        let mut stack = vec![u];
        seen.insert(u);
        while let Some(w) = stack.pop() {
            if w == v {
                return true;
            }
            for z in adj(w) {
                if core(z) >= k && seen.insert(z) {
                    stack.push(z);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::core::CoreDecomposition;

    /// Test-only resurrection of the removed owned `CpTree::get`
    /// wrapper: the production query surface is [`CpTree::get_ref`];
    /// tests keep the sorted-copy shorthand for readable assertions.
    trait GetSorted {
        fn get(&self, k: u32, q: VertexId, label: LabelId) -> Option<Vec<VertexId>>;
    }

    impl GetSorted for CpTree {
        fn get(&self, k: u32, q: VertexId, label: LabelId) -> Option<Vec<VertexId>> {
            let mut out = self.get_ref(k, q, label)?.to_vec();
            out.sort_unstable();
            Some(out)
        }
    }

    /// Fig. 1(a): graph A..H with the CCS-fragment profiles.
    fn figure1() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),         // A
            PTree::from_labels(&t, [ml, ai]).unwrap(),          // B
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),      // C
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(), // D
            PTree::from_labels(&t, [dms, hw]).unwrap(),         // E
            PTree::from_labels(&t, [is, hw]).unwrap(),          // F
            PTree::from_labels(&t, [hw, cm]).unwrap(),          // G
            PTree::from_labels(&t, [is, hw]).unwrap(),          // H
        ];
        (g, t, profiles)
    }

    #[test]
    fn build_validates_inputs() {
        let (g, t, mut profiles) = figure1();
        profiles.pop();
        assert_eq!(
            CpTree::build(&g, &t, &profiles).unwrap_err(),
            IndexError::ProfileCountMismatch { vertices: 8, profiles: 7 }
        );
    }

    #[test]
    fn per_label_get_matches_bruteforce() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        for label in 0..t.len() as u32 {
            let with_label: Vec<u32> =
                (0..8u32).filter(|&v| profiles[v as usize].contains(label)).collect();
            assert_eq!(idx.vertices_with_label(label), &with_label[..]);
            if with_label.is_empty() {
                continue;
            }
            let (sub, ids) = g.induced_subgraph(&with_label);
            let cd = CoreDecomposition::new(&sub);
            for &q in &with_label {
                let q_local = ids.binary_search(&q).unwrap() as u32;
                for k in 0..4 {
                    let expect = cd
                        .kcore_component(&sub, q_local, k)
                        .map(|c| c.into_iter().map(|v| ids[v as usize]).collect::<Vec<_>>());
                    assert_eq!(idx.get(k, q, label), expect, "label={label} q={q} k={k}");
                }
            }
            // Vertices without the label are absent.
            for v in 0..8u32 {
                if !with_label.contains(&v) {
                    assert!(idx.get(0, v, label).is_none());
                }
            }
        }
    }

    #[test]
    fn root_label_indexes_everyone() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        assert_eq!(idx.vertices_with_label(Taxonomy::ROOT).len(), 8);
        // 2-ĉore of D under the root label = whole graph's 2-ĉore.
        assert_eq!(idx.get(2, 3, Taxonomy::ROOT).unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let _ = g;
    }

    #[test]
    fn head_map_restores_ptrees() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        for v in 0..8u32 {
            assert_eq!(idx.restore_ptree(&t, v), profiles[v as usize], "vertex {v}");
        }
        // B's leaves are exactly ML and AI.
        let mut head = idx.head(1).to_vec();
        head.sort_unstable();
        let mut expect = vec![t.id_of("ML").unwrap(), t.id_of("AI").unwrap()];
        expect.sort_unstable();
        assert_eq!(head, expect);
        let _ = g;
    }

    #[test]
    fn nested_label_cores_shrink() {
        // I.get(k,q,t) ⊆ I.get(k,q,parent(t)) — the containment the
        // paper's verifyPtree relies on.
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        for label in 1..t.len() as u32 {
            let parent = t.parent(label);
            for q in 0..8u32 {
                for k in 0..3 {
                    if let Some(child_core) = idx.get(k, q, label) {
                        let parent_core =
                            idx.get(k, q, parent).expect("parent label core must exist");
                        assert!(
                            child_core.iter().all(|v| parent_core.binary_search(v).is_ok()),
                            "label={label} q={q} k={k}"
                        );
                    }
                }
            }
        }
        let _ = g;
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let (g, t, profiles) = figure1();
        let seq = CpTree::build(&g, &t, &profiles).unwrap();
        let par = CpTree::build_with_threads(&g, &t, &profiles, 4).unwrap();
        assert_eq!(seq.num_populated_labels(), par.num_populated_labels());
        for label in 0..t.len() as u32 {
            assert_eq!(seq.vertices_with_label(label), par.vertices_with_label(label));
            for q in 0..8u32 {
                for k in 0..4 {
                    assert_eq!(seq.get(k, q, label), par.get(k, q, label));
                }
            }
        }
    }

    #[test]
    fn unpopulated_label_behaviour() {
        let (g, mut t, mut profiles) = figure1();
        let lonely = t.add_child(Taxonomy::ROOT, "lonely").unwrap();
        // Rebuild profiles against the grown taxonomy (ids unchanged).
        profiles = profiles
            .into_iter()
            .map(|p| PTree::from_labels(&t, p.nodes().iter().copied().skip(1)).unwrap())
            .collect();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        assert!(idx.node(lonely).is_none());
        assert!(idx.get(0, 0, lonely).is_none());
        assert!(idx.vertices_with_label(lonely).is_empty());
    }

    /// The incremental contract: after `apply_batch`, the index must be
    /// indistinguishable from a fresh build through its whole query
    /// surface (per-label vertex lists, every `get`, `headMap`).
    fn assert_semantically_equal(a: &CpTree, b: &CpTree, tax: &Taxonomy, n: usize) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_populated_labels(), b.num_populated_labels());
        for v in 0..n as u32 {
            assert_eq!(a.restore_ptree(tax, v), b.restore_ptree(tax, v), "headMap of {v}");
        }
        for label in 0..tax.len() as u32 {
            assert_eq!(
                a.vertices_with_label(label),
                b.vertices_with_label(label),
                "members of label {label}"
            );
            for &q in a.vertices_with_label(label) {
                for k in 0..8 {
                    assert_eq!(a.get(k, q, label), b.get(k, q, label), "label={label} q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn apply_batch_edge_deltas_match_rebuild() {
        let (g, t, profiles) = figure1();
        let mut idx = CpTree::build(&g, &t, &profiles).unwrap();
        // Add C-E (promotes C inside several labels) and remove F-H.
        let mut dyn_g = pcs_graph::DynamicGraph::from_graph(&g);
        dyn_g.add_edge(2, 4).unwrap();
        dyn_g.remove_edge(5, 7).unwrap();
        let g_after = dyn_g.to_graph();
        let deltas = [GraphDelta::EdgeAdded { u: 2, v: 4 }, GraphDelta::EdgeRemoved { u: 5, v: 7 }];
        let stats = idx.apply_batch(&g_after, &t, &profiles, &deltas);
        assert!(stats.labels_touched > 0);
        assert_eq!(stats.labels_rebuilt + stats.labels_skipped, stats.labels_touched);
        let fresh = CpTree::build(&g_after, &t, &profiles).unwrap();
        assert_semantically_equal(&idx, &fresh, &t, 8);
    }

    #[test]
    fn apply_batch_profile_delta_moves_vertex_between_labels() {
        let (g, t, mut profiles) = figure1();
        let mut idx = CpTree::build(&g, &t, &profiles).unwrap();
        // Re-profile G (vertex 6): drop CM/HW, adopt DMS (under IS).
        let dms = t.id_of("DMS").unwrap();
        profiles[6] = PTree::from_labels(&t, [dms]).unwrap();
        let stats = idx.apply_batch(&g, &t, &profiles, &[GraphDelta::ProfileChanged { v: 6 }]);
        assert!(stats.labels_rebuilt > 0);
        let fresh = CpTree::build(&g, &t, &profiles).unwrap();
        assert_semantically_equal(&idx, &fresh, &t, 8);
        assert!(idx.vertices_with_label(dms).contains(&6));
        assert!(!idx.vertices_with_label(t.id_of("CM").unwrap()).contains(&6));
    }

    #[test]
    fn redundant_intra_core_edge_is_skipped() {
        // A 4-clique of vertices all sharing one label, plus a chord
        // target: adding an edge between two vertices already in the
        // same 2-ĉore whose cores cannot rise is provably a no-op.
        let mut t = Taxonomy::new("r");
        let a = t.add_child(Taxonomy::ROOT, "a").unwrap();
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)]).unwrap();
        let profiles: Vec<PTree> = (0..5).map(|_| PTree::from_labels(&t, [a]).unwrap()).collect();
        let mut idx = CpTree::build(&g, &t, &profiles).unwrap();
        // 1-4 closes no triangle that lifts anyone past core 2 and both
        // endpoints sit in the same ĉores already? 4 has core 1... that
        // merge is real. Use 1-3 instead: both core 2, same 2-ĉore, and
        // the diagonal leaves the 4-cycle's cores at 2.
        let mut dyn_g = pcs_graph::DynamicGraph::from_graph(&g);
        dyn_g.add_edge(1, 3).unwrap();
        let g_after = dyn_g.to_graph();
        let stats =
            idx.apply_batch(&g_after, &t, &profiles, &[GraphDelta::EdgeAdded { u: 1, v: 3 }]);
        assert_eq!(stats.labels_skipped, 2, "root + a both skip");
        assert_eq!(stats.labels_rebuilt, 0);
        let fresh = CpTree::build(&g_after, &t, &profiles).unwrap();
        assert_semantically_equal(&idx, &fresh, &t, 5);
    }

    #[test]
    fn randomized_churn_matches_rebuild() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xcb7);
        for trial in 0..4 {
            // Random taxonomy.
            let labels = 10 + trial;
            let mut tax = Taxonomy::new("r");
            let mut ids = vec![Taxonomy::ROOT];
            for i in 1..labels {
                let parent = ids[rng.gen_range(0..ids.len())];
                ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
            }
            // Random graph + profiles.
            let n = 18 + trial * 4;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.18) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let mut profiles: Vec<PTree> = (0..n)
                .map(|_| {
                    let count = rng.gen_range(0..=5usize);
                    let picks: Vec<u32> =
                        (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
                    PTree::from_labels(&tax, picks).unwrap()
                })
                .collect();
            let mut dyn_g = pcs_graph::DynamicGraph::from_graph(&g);
            let mut idx = CpTree::build(&g, &tax, &profiles).unwrap();
            for step in 0..60 {
                // Mixed batch of 1..4 effective deltas.
                let mut deltas = Vec::new();
                let mut reprofiled: Vec<u32> = Vec::new();
                for _ in 0..rng.gen_range(1..4) {
                    match rng.gen_range(0..3) {
                        0 => {
                            let a = rng.gen_range(0..n as u32);
                            let b = rng.gen_range(0..n as u32);
                            if a != b && dyn_g.add_edge(a, b).unwrap() {
                                deltas.push(GraphDelta::EdgeAdded { u: a, v: b });
                            }
                        }
                        1 => {
                            let a = rng.gen_range(0..n as u32);
                            let b = rng.gen_range(0..n as u32);
                            if a != b && dyn_g.remove_edge(a, b).unwrap() {
                                deltas.push(GraphDelta::EdgeRemoved { u: a, v: b });
                            }
                        }
                        _ => {
                            let v = rng.gen_range(0..n as u32);
                            if reprofiled.contains(&v) {
                                continue;
                            }
                            let count = rng.gen_range(0..=5usize);
                            let picks: Vec<u32> =
                                (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
                            let p = PTree::from_labels(&tax, picks).unwrap();
                            if p != profiles[v as usize] {
                                profiles[v as usize] = p;
                                reprofiled.push(v);
                                deltas.push(GraphDelta::ProfileChanged { v });
                            }
                        }
                    }
                }
                if deltas.is_empty() {
                    continue;
                }
                let g_after = dyn_g.to_graph();
                idx.apply_batch(&g_after, &tax, &profiles, &deltas);
                let fresh = CpTree::build(&g_after, &tax, &profiles).unwrap();
                assert_semantically_equal(&idx, &fresh, &tax, n);
                let _ = step;
            }
        }
    }

    #[test]
    fn invalidation_set_is_tight() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        // Edge A-E: both carry {r, IS, DMS, HW} — intersection is
        // exactly those labels.
        let touched = idx.invalidation_set(&t, &profiles, &[GraphDelta::EdgeAdded { u: 0, v: 4 }]);
        let mut expect = vec![
            Taxonomy::ROOT,
            t.id_of("IS").unwrap(),
            t.id_of("DMS").unwrap(),
            t.id_of("HW").unwrap(),
        ];
        expect.sort_unstable();
        assert_eq!(touched, expect);
        let _ = g;
    }

    #[test]
    fn memory_accounting_positive() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.num_vertices(), 8);
        assert!(idx.num_populated_labels() >= 6);
    }
}
