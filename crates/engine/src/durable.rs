//! Durability and replication: the WAL-backed engine lifecycle.
//!
//! A crash must never cost an acknowledged update. This module wires
//! `pcs_store`'s write-ahead log into the engine's update path so that
//! every applied [`UpdateBatch`](crate::UpdateBatch) is on stable
//! storage *before* its epoch is published to readers:
//!
//! ```text
//!   apply:    validate → mutate master → encode batch
//!           → WAL append (epoch N) → group-commit fsync
//!           → publish snapshot N        (readers see N only after fsync)
//!   recover:  load snapshot (epoch S) → replay WAL records S+1.. → serve
//! ```
//!
//! The durable directory layout is one snapshot plus one WAL
//! subdirectory:
//!
//! ```text
//!   <dir>/snapshot.pcs   — latest checkpoint (atomic rename + dir fsync)
//!   <dir>/wal/wal-*.seg  — epoch-stamped, checksummed update records
//! ```
//!
//! [`EngineBuilder::durable`] + [`EngineBuilder::build`] initialize a
//! fresh directory (epoch-0 snapshot, empty log);
//! [`EngineBuilder::open`] recovers an existing one, resuming at the
//! exact pre-crash epoch; [`PcsEngine::checkpoint`] rewrites the
//! snapshot and reclaims WAL segments the snapshot now covers.
//!
//! Replication rides the same log: [`WalFollower`] tails a primary's
//! durable directory read-only (never truncating the primary's live
//! tail), and [`PcsEngine::wal_tail_since`] re-frames the fsynced tail
//! for the HTTP `GET /wal?from=epoch` endpoint, which a network
//! follower applies via [`PcsEngine::apply_wal_frames`]. Either way the
//! follower's state at epoch N is byte-for-byte the primary's: the same
//! batches, applied in the same order, through the same `apply` path
//! the differential harness proves equivalent to a from-scratch build.
//!
//! ## Failure contract
//!
//! Every failure on the durable pipeline — injected kill point, real
//! I/O error, torn frame — is **fail-stop**: the WAL refuses further
//! appends, in-flight and later `apply` calls return typed errors, and
//! the already-published prefix keeps serving reads. Reopening the
//! directory recovers exactly the fsynced prefix; nothing is ever
//! half-applied, because publication happens only after the fsync that
//! covers it.

use pcs_graph::VertexId;
use pcs_ptree::{LabelId, PTree, Taxonomy};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard};

use pcs_store::wal::{self, Wal, WalOptions};
use pcs_store::{SectionReader, SectionWriter, StoreError, WAL_SECTION};

use crate::engine::{EngineBuilder, PcsEngine};
use crate::error::{BuildError, Error, Result};
use crate::update::{Update, UpdateBatch};

/// File name of the checkpoint snapshot inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pcs";
/// Subdirectory holding the WAL segments inside a durable directory.
pub const WAL_DIR: &str = "wal";

/// Hard cap on one serialized batch payload, far below the WAL's own
/// frame cap so an absurd batch fails with a typed error before it
/// bloats a segment.
const MAX_BATCH_BYTES: usize = (wal::MAX_RECORD_LEN as usize) / 2;

// Operation tags on the wire. Part of the WAL payload format; changing
// them (or the field layout below) requires a new record section id.
const TAG_ADD_EDGE: u32 = 0;
const TAG_REMOVE_EDGE: u32 = 1;
const TAG_SET_PROFILE: u32 = 2;

/// Serializes one update batch into a WAL record payload.
///
/// Wire layout (little-endian, validated by [`decode_update_batch`]):
///
/// ```text
///   u32 op_count
///   op_count × { u32 tag,
///                tag 0/1 (edge):    u32 u, u32 v
///                tag 2 (profile):   u32 vertex, u32 k, k × u32 label }
/// ```
///
/// Profiles are stored as their sorted, ancestor-closed node sets —
/// exactly the [`PTree`] invariant — so decode re-validates closure
/// against the engine's taxonomy instead of trusting the bytes.
pub fn encode_update_batch(batch: &UpdateBatch) -> std::result::Result<Vec<u8>, StoreError> {
    let mut w = SectionWriter::new();
    let count = u32::try_from(batch.len()).map_err(|_| StoreError::Corrupt {
        section: WAL_SECTION,
        detail: format!("batch of {} ops exceeds the u32 op-count field", batch.len()),
    })?;
    w.put_u32(count);
    for op in batch.ops() {
        match op {
            Update::AddEdge { u, v } => {
                w.put_u32(TAG_ADD_EDGE);
                w.put_u32(*u);
                w.put_u32(*v);
            }
            Update::RemoveEdge { u, v } => {
                w.put_u32(TAG_REMOVE_EDGE);
                w.put_u32(*u);
                w.put_u32(*v);
            }
            Update::SetProfile { vertex, profile } => {
                w.put_u32(TAG_SET_PROFILE);
                w.put_u32(*vertex);
                let nodes = profile.nodes();
                let k = u32::try_from(nodes.len()).map_err(|_| StoreError::Corrupt {
                    section: WAL_SECTION,
                    detail: format!(
                        "profile of {} labels exceeds the u32 length field",
                        nodes.len()
                    ),
                })?;
                w.put_u32(k);
                w.put_u32_slice(nodes);
            }
        }
    }
    let payload = w.finish();
    if payload.len() > MAX_BATCH_BYTES {
        return Err(StoreError::Corrupt {
            section: WAL_SECTION,
            detail: format!("serialized batch of {} bytes exceeds the record cap", payload.len()),
        });
    }
    Ok(payload)
}

/// Deserializes a WAL record payload written by [`encode_update_batch`],
/// re-validating every profile against `tax` (bounds, strict sort,
/// ancestor closure). Malformed bytes yield a typed
/// [`StoreError::Corrupt`], never a panic.
pub fn decode_update_batch(
    payload: &[u8],
    tax: &Taxonomy,
) -> std::result::Result<UpdateBatch, StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt { section: WAL_SECTION, detail };
    let mut r = SectionReader::new(payload, WAL_SECTION);
    let count = r.u32()? as usize;
    let mut batch = UpdateBatch::new();
    for i in 0..count {
        let tag = r.u32()?;
        match tag {
            TAG_ADD_EDGE | TAG_REMOVE_EDGE => {
                let u: VertexId = r.u32()?;
                let v: VertexId = r.u32()?;
                batch.push(if tag == TAG_ADD_EDGE {
                    Update::AddEdge { u, v }
                } else {
                    Update::RemoveEdge { u, v }
                });
            }
            TAG_SET_PROFILE => {
                let vertex: VertexId = r.u32()?;
                let k = r.u32()? as usize;
                let nodes: Vec<LabelId> = r.u32_vec(k)?;
                if !nodes.windows(2).all(|p| p.first() < p.get(1)) {
                    return Err(corrupt(format!(
                        "op {i}: profile node set is not strictly sorted"
                    )));
                }
                if let Some(&max) = nodes.last() {
                    if max as usize >= tax.len() {
                        return Err(corrupt(format!(
                            "op {i}: profile label {max} outside taxonomy of {} labels",
                            tax.len()
                        )));
                    }
                }
                let profile = PTree::from_closed_sorted(tax, nodes)
                    .map_err(|e| corrupt(format!("op {i}: profile rejected: {e}")))?;
                batch.push(Update::SetProfile { vertex, profile });
            }
            other => return Err(corrupt(format!("op {i}: unknown operation tag {other}"))),
        }
    }
    r.finish()?;
    Ok(batch)
}

/// The engine's attachment to its durable directory: the open WAL plus
/// the publication sequencer that keeps snapshot swaps in epoch order
/// even though appliers release the writer lock before their fsync.
pub(crate) struct DurableState {
    pub(crate) dir: PathBuf,
    pub(crate) wal: Wal,
    /// Highest epoch published to readers. Appliers wait here until
    /// every earlier epoch is published, so a fast fsync can never
    /// publish ahead of a slower predecessor.
    published: Mutex<u64>,
    publish_cv: Condvar,
}

impl DurableState {
    pub(crate) fn new(dir: PathBuf, wal: Wal, published: u64) -> Self {
        DurableState { dir, wal, published: Mutex::new(published), publish_cv: Condvar::new() }
    }

    /// Path of the WAL subdirectory.
    pub(crate) fn wal_dir(&self) -> PathBuf {
        self.dir.join(WAL_DIR)
    }

    fn lock_published(&self) -> MutexGuard<'_, u64> {
        // A poisoned publish lock means an applier panicked mid-swap;
        // the WAL fail-stops (matching its own poisoning policy) so
        // later appends error instead of publishing over unknown state.
        match self.published.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.wal.fail_stop();
                poisoned.into_inner()
            }
        }
    }

    /// Publishes epoch `epoch` via `swap`, strictly after epoch
    /// `epoch - 1`. Returns a typed error (without swapping) if the
    /// pipeline fail-stopped while waiting — a predecessor died between
    /// its fsync and its publish, so this epoch's base state will never
    /// become visible.
    pub(crate) fn publish_in_order(&self, epoch: u64, swap: impl FnOnce()) -> Result<()> {
        let mut published = self.lock_published();
        while *published != epoch - 1 {
            if self.wal.is_failed() || *published >= epoch {
                self.publish_cv.notify_all();
                return Err(Error::Store(StoreError::Io {
                    op: "wal-publish",
                    detail: format!(
                        "epoch {epoch} cannot be published: pipeline fail-stopped at \
                         published epoch {}",
                        *published
                    ),
                }));
            }
            published = match self.publish_cv.wait(published) {
                Ok(g) => g,
                Err(poisoned) => {
                    self.wal.fail_stop();
                    poisoned.into_inner()
                }
            };
        }
        swap();
        *published = epoch;
        self.publish_cv.notify_all();
        Ok(())
    }

    /// Fail-stops the whole durable pipeline: refuses further WAL
    /// appends and wakes every applier parked on the publication
    /// sequencer so they return typed errors instead of hanging.
    pub(crate) fn abort(&self) {
        self.wal.fail_stop();
        self.publish_cv.notify_all();
    }
}

impl std::fmt::Debug for DurableState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableState")
            .field("dir", &self.dir)
            .field("durable_epoch", &self.wal.durable_epoch())
            .field("failed", &self.wal.is_failed())
            .finish()
    }
}

impl EngineBuilder {
    /// Names the durable directory. With [`build`](Self::build) the
    /// directory must be empty (or absent): the engine writes an
    /// epoch-0 snapshot and starts an empty WAL, and from then on every
    /// applied batch is fsynced to the log *before* its epoch is
    /// published. With [`open`](Self::open) the directory must hold a
    /// previous engine's state, which is recovered exactly.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Tunes the WAL (segment size, group-commit window). Defaults are
    /// [`WalOptions::default`]; only meaningful together with
    /// [`durable`](Self::durable).
    pub fn wal_options(mut self, opts: WalOptions) -> Self {
        self.wal_opts = opts;
        self
    }

    /// Recovers an engine from the durable directory named by
    /// [`durable`](Self::durable): loads the checkpoint snapshot, then
    /// replays every WAL record past the snapshot's epoch through the
    /// normal `apply` path, resuming at the exact pre-crash epoch. A
    /// torn or corrupt record truncates the log there (everything
    /// before it is kept; the unacknowledged tail is discarded); a
    /// *gap* — a record whose epoch is not the next expected one —
    /// aborts recovery with a typed error rather than serving a wrong
    /// engine.
    ///
    /// Configuration methods (index mode, thread counts, patch cap)
    /// apply as with [`load`](Self::load); data methods must not have
    /// been called.
    pub fn open(mut self) -> Result<PcsEngine> {
        let dir = self.durable_dir.take().ok_or(BuildError::MissingDurableDir)?;
        let opts = std::mem::take(&mut self.wal_opts);
        let mut engine = self.load(dir.join(SNAPSHOT_FILE))?;
        let snap_epoch = engine.epoch();
        let (wal, replay) = Wal::open(dir.join(WAL_DIR), opts, snap_epoch)?;
        for rec in replay.records {
            // Records at or below the snapshot's epoch are already in
            // the checkpoint; they linger only until the next reclaim.
            if rec.epoch <= snap_epoch {
                continue;
            }
            let batch = decode_update_batch(&rec.payload, engine.taxonomy())?;
            // `durable` is still unset here, so replay publishes
            // in-memory without re-logging the record it came from.
            engine.apply_inner(&batch, Some(rec.epoch))?;
        }
        let published = engine.epoch();
        engine.durable = Some(DurableState::new(dir, wal, published));
        Ok(engine)
    }

    /// Builds a read-only **follower** seeded from another engine's
    /// durable directory: loads the primary's current checkpoint and
    /// replays whatever WAL tail is already on disk. The source is
    /// never written — segments are scanned read-only and a torn live
    /// tail is simply left for the next [`WalFollower::poll`] — so a
    /// follower can safely run against a primary's live directory (or
    /// a snapshot-consistent copy of it).
    pub fn follow(mut self, source: impl Into<PathBuf>) -> Result<WalFollower> {
        let source = source.into();
        // A follower is read-only by definition: it replays the
        // primary's log rather than writing one of its own, so any
        // `durable(dir)` configuration is ignored.
        self.durable_dir = None;
        let engine = self.load(source.join(SNAPSHOT_FILE))?;
        let follower = WalFollower { engine, source };
        follower.poll()?;
        Ok(follower)
    }
}

/// Called from `EngineBuilder::build` when [`EngineBuilder::durable`]
/// was configured: initializes a fresh durable directory around the
/// just-built epoch-0 engine.
pub(crate) fn init_fresh(engine: &mut PcsEngine, dir: PathBuf, opts: WalOptions) -> Result<()> {
    std::fs::create_dir_all(&dir).map_err(|e| {
        Error::Store(StoreError::Io {
            op: "durable-init",
            detail: format!("{}: {e}", dir.display()),
        })
    })?;
    let snap_path = dir.join(SNAPSHOT_FILE);
    let wal_nonempty =
        wal::list_segments(&dir.join(WAL_DIR)).map(|s| !s.is_empty()).unwrap_or(false);
    if snap_path.exists() || wal_nonempty {
        return Err(BuildError::DurableDirNotEmpty { dir: dir.display().to_string() }.into());
    }
    engine.save(&snap_path)?;
    let (wal, _replay) = Wal::open(dir.join(WAL_DIR), opts, engine.epoch())?;
    engine.durable = Some(DurableState::new(dir, wal, engine.epoch()));
    Ok(())
}

impl PcsEngine {
    pub(crate) fn durable_state(&self) -> Result<&DurableState> {
        self.durable.as_ref().ok_or(Error::NotDurable)
    }

    /// Highest epoch covered by a completed WAL fsync: `Some(e)` means
    /// every batch up to epoch `e` survives a crash. `None` on engines
    /// without a durable directory. Always trails (or equals)
    /// [`epoch`](Self::epoch), because epochs publish only after their
    /// fsync.
    pub fn durable_epoch(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.wal.durable_epoch())
    }

    /// Rewrites the durable directory's checkpoint snapshot at the
    /// current epoch (atomic rename + directory fsync), rotates the
    /// WAL, and reclaims every segment the snapshot now covers.
    /// Returns the checkpointed epoch. Serialized against `apply`
    /// via the writer lock; readers are never blocked.
    pub fn checkpoint(&self) -> Result<u64> {
        let ds = self.durable_state()?;
        // audit:allow(no-panic): a poisoned writer lock means an apply already panicked mid-mutation; checkpointing that half-applied state would persist it, so propagate the panic
        let _guard = self.writer.lock().expect("engine writer lock poisoned");
        let snap = self.snapshot_arc();
        self.write_snapshot(&snap, ds.dir.join(SNAPSHOT_FILE))?;
        // Rotation fsyncs and closes the active segment so the reclaim
        // watermark below can retire it too once the *next* checkpoint
        // covers the records it still holds.
        ds.wal.rotate()?;
        ds.wal.reclaim(snap.epoch)?;
        Ok(snap.epoch)
    }

    /// Re-frames the fsynced WAL tail after `after_epoch` (at most
    /// `max_bytes` of payload) as self-describing checksummed frames —
    /// the body of the `GET /wal?from=epoch` replication endpoint,
    /// applied on the other side by
    /// [`apply_wal_frames`](Self::apply_wal_frames). Only records
    /// covered by a completed fsync are served, so a follower can never
    /// observe an epoch the primary could still lose. An empty vector
    /// means the follower is caught up. A reclaimed gap (the follower
    /// fell behind the oldest retained segment) is a typed
    /// [`StoreError::Corrupt`] — the follower must re-seed from the
    /// snapshot.
    pub fn wal_tail_since(&self, after_epoch: u64, max_bytes: u64) -> Result<Vec<u8>> {
        let ds = self.durable_state()?;
        let durable = ds.wal.durable_epoch();
        if after_epoch >= durable {
            return Ok(Vec::new());
        }
        let records = wal::read_records_since(&ds.wal_dir(), after_epoch, durable, max_bytes)?;
        Ok(wal::encode_records(&records)?)
    }

    /// Applies a frame stream produced by
    /// [`wal_tail_since`](Self::wal_tail_since): decodes each record,
    /// skips epochs this engine already has, and applies the rest in
    /// order through the normal `apply` path (re-logging them if this
    /// engine is itself durable — chained replication comes for free).
    /// Returns the number of batches applied. Any torn frame, checksum
    /// mismatch, or epoch gap is a typed error; nothing is applied past
    /// the first bad frame.
    pub fn apply_wal_frames(&self, frames: &[u8]) -> Result<usize> {
        let scan = wal::decode_frames(frames, None);
        if let Some(detail) = scan.torn {
            return Err(Error::Store(StoreError::Corrupt {
                section: WAL_SECTION,
                detail: format!("replication stream damaged: {detail}"),
            }));
        }
        let mut applied = 0usize;
        for rec in &scan.records {
            if rec.epoch <= self.epoch() {
                continue;
            }
            let batch = decode_update_batch(&rec.payload, self.taxonomy())?;
            self.apply_inner(&batch, Some(rec.epoch))?;
            applied += 1;
        }
        Ok(applied)
    }
}

/// A read-only replica that tails a primary's durable directory:
/// built by [`EngineBuilder::follow`], advanced by [`poll`](Self::poll),
/// queried through [`engine`](Self::engine). At every polled epoch the
/// follower's cores and index answer identically to the primary's at
/// that epoch — same batches, same order, same `apply` path.
#[derive(Debug)]
pub struct WalFollower {
    engine: PcsEngine,
    source: PathBuf,
}

impl WalFollower {
    /// The replica engine (serve queries from here).
    pub fn engine(&self) -> &PcsEngine {
        &self.engine
    }

    /// The primary durable directory being tailed.
    pub fn source(&self) -> &Path {
        &self.source
    }

    /// The replica's current epoch.
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Reads and applies every complete WAL record past the replica's
    /// epoch; returns how many batches were applied (0 = caught up). A
    /// torn record mid-write on the primary is left for the next poll;
    /// an epoch *gap* (the primary reclaimed segments past this
    /// replica's position — it fell too far behind) is a typed error,
    /// after which the caller re-seeds with [`EngineBuilder::follow`].
    pub fn poll(&self) -> Result<usize> {
        let after = self.engine.epoch();
        let records =
            wal::read_records_since(&self.source.join(WAL_DIR), after, u64::MAX, u64::MAX)?;
        let mut applied = 0usize;
        for rec in &records {
            if rec.epoch <= self.engine.epoch() {
                continue;
            }
            let batch = decode_update_batch(&rec.payload, self.engine.taxonomy())?;
            self.engine.apply_inner(&batch, Some(rec.epoch))?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Re-seeds the replica in place from the primary's *current*
    /// checkpoint snapshot — the recovery move after [`poll`](Self::poll)
    /// reports an epoch gap (the primary reclaimed segments past this
    /// replica's position). The snapshot is loaded **lazily**: only
    /// META and the section directories are decoded up front, so a
    /// re-seed is cheap even at scale and the graph/profiles fault in
    /// on the replica's next query. A checkpoint older than the
    /// replica's own epoch is refused — a follower never rewinds.
    /// Returns the number of WAL batches applied on top of the seed.
    pub fn reseed(&mut self) -> Result<usize> {
        let engine = PcsEngine::builder()
            .index_mode(crate::IndexMode::Lazy)
            .load(self.source.join(SNAPSHOT_FILE))?;
        if engine.epoch() < self.engine.epoch() {
            return Err(Error::Internal {
                component: "wal-follower",
                detail: format!(
                    "re-seed snapshot is at epoch {} but the replica already serves epoch {} \
                     — refusing to rewind",
                    engine.epoch(),
                    self.engine.epoch()
                ),
            });
        }
        self.engine = engine;
        self.poll()
    }

    /// Consumes the follower, promoting the replica engine to a
    /// standalone (e.g. for failover after the primary is gone).
    pub fn into_engine(self) -> PcsEngine {
        self.engine
    }
}
