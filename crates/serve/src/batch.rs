//! Cross-request query batching.
//!
//! Worker threads do not call [`PcsEngine::query`] directly. Each
//! validated query is submitted to a shared [`Batcher`]; a dedicated
//! dispatcher thread gathers everything that arrives within a short
//! window (or until the batch cap), answers whatever it can **from the
//! engine's result cache**, **deduplicates the remaining identical
//! requests**, and executes them through [`PcsEngine::query_batch`] —
//! which pins *one* epoch snapshot and shares it across the batch.
//! Fresh answers are offered back to the cache, so the next window's
//! twins never execute at all. Three things fall out of that:
//!
//! * under a zipfian workload the hot vertices collapse — fifty
//!   concurrent requests for the same `(v, k)` cost one search, and
//!   on a cache-enabled engine the *next* fifty cost zero;
//! * every executed response in a batch reports the same `epoch` (a
//!   cache hit may report an older epoch only under the engine's
//!   surgical mode, which proves the answer unchanged);
//! * results are `Arc`-shared, so a hundred waiters for one hot
//!   answer clone a pointer, not a community list.
//!
//! **Dedup-key contract:** the dedup map is keyed on the
//! [`QueryRequest`] itself (`Hash + Eq` are derived on the request).
//! Never mirror request fields into a hand-maintained tuple key: any
//! field added later silently falls out of such a mirror, and two
//! requests differing only in that field would then dedup together —
//! serving one client another client's answer.
//!
//! The submitting worker blocks on a per-request slot (condvar) until
//! the dispatcher posts its result. A slot that is still empty after
//! [`SUBMIT_DEADLINE`] returns `None` — the server maps that to a 500
//! rather than parking a connection forever; it cannot happen unless
//! the dispatcher thread has died.

use pcs_engine::{Error as EngineError, PcsEngine, QueryRequest, QueryResponse};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard ceiling on how long a submitter waits for its result.
pub const SUBMIT_DEADLINE: Duration = Duration::from_secs(30);

/// What a submitter gets back: the engine answer (`Arc`-shared with
/// every deduplicated twin and with the result cache) or the error.
pub type BatchOutcome = Result<Arc<QueryResponse>, EngineError>;

/// One waiting request's result cell.
struct Slot {
    result: Mutex<Option<BatchOutcome>>,
    done: Condvar,
}

impl Slot {
    /// Posts the outcome and wakes the waiting submitter.
    fn post(&self, outcome: BatchOutcome) {
        let mut cell = match self.result.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.result.clear_poison();
                poisoned.into_inner()
            }
        };
        *cell = Some(outcome);
        drop(cell);
        self.done.notify_all();
    }
}

struct PendingQuery {
    req: QueryRequest,
    slot: Arc<Slot>,
}

struct BatcherState {
    pending: Vec<PendingQuery>,
    shutdown: bool,
}

/// Counters the batcher maintains (read via the server's `/stats`).
#[derive(Debug, Default)]
pub struct BatchStats {
    /// Batches dispatched.
    pub batches: AtomicU64,
    /// Requests carried by those batches (pre-dedup).
    pub batched_requests: AtomicU64,
    /// Requests answered from a deduplicated twin's execution.
    pub dedup_saved: AtomicU64,
    /// Requests answered straight from the engine's result cache,
    /// before dedup or execution.
    pub cache_answered: AtomicU64,
}

/// The shared batching queue. Workers submit; one dispatcher drains.
pub struct Batcher {
    state: Mutex<BatcherState>,
    arrived: Condvar,
    stats: BatchStats,
    window: Duration,
    max_batch: usize,
}

impl Batcher {
    /// Creates a batcher gathering for at most `window` per batch, up
    /// to `max_batch` requests.
    pub fn new(window: Duration, max_batch: usize) -> Batcher {
        Batcher {
            state: Mutex::new(BatcherState { pending: Vec::new(), shutdown: false }),
            arrived: Condvar::new(),
            stats: BatchStats::default(),
            window,
            max_batch: max_batch.max(1),
        }
    }

    /// The batching counters.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Recovers the state lock even if a holder panicked: the queue is
    /// a Vec of (request, slot) pairs, which cannot be left in a
    /// torn state by any code here.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, BatcherState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.state.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Submits one validated query and blocks until the dispatcher
    /// posts the result. Returns `None` only on dispatcher death
    /// (deadline) or post-shutdown submission.
    pub fn submit(&self, req: QueryRequest) -> Option<BatchOutcome> {
        let slot = Arc::new(Slot { result: Mutex::new(None), done: Condvar::new() });
        {
            let mut state = self.lock_state();
            if state.shutdown {
                return None;
            }
            state.pending.push(PendingQuery { req, slot: Arc::clone(&slot) });
        }
        self.arrived.notify_all();

        let deadline = Instant::now() + SUBMIT_DEADLINE;
        let mut result = match slot.result.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                slot.result.clear_poison();
                poisoned.into_inner()
            }
        };
        loop {
            if let Some(r) = result.take() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self.done_wait(result, &slot.done, deadline - now).ok()?;
            result = guard;
        }
    }

    /// One condvar wait with poison recovery.
    #[allow(clippy::type_complexity)]
    fn done_wait<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, Option<BatchOutcome>>,
        done: &Condvar,
        dur: Duration,
    ) -> Result<(std::sync::MutexGuard<'a, Option<BatchOutcome>>, bool), ()> {
        match done.wait_timeout(guard, dur) {
            Ok((g, t)) => Ok((g, t.timed_out())),
            Err(_) => Err(()),
        }
    }

    /// The dispatcher loop. Run on a dedicated thread; returns when
    /// [`Batcher::shutdown`] is called and the queue has drained.
    pub fn run_dispatcher(&self, engine: &PcsEngine) {
        loop {
            let taken = {
                let mut state = self.lock_state();
                // Sleep until something arrives or shutdown.
                while state.pending.is_empty() && !state.shutdown {
                    state = match self.arrived.wait(state) {
                        Ok(g) => g,
                        Err(poisoned) => {
                            self.state.clear_poison();
                            poisoned.into_inner()
                        }
                    };
                }
                if state.pending.is_empty() && state.shutdown {
                    return;
                }
                // Gather: give stragglers one window to pile on, then
                // take everything up to the cap.
                let deadline = Instant::now() + self.window;
                while state.pending.len() < self.max_batch && !state.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match self.arrived.wait_timeout(state, deadline - now) {
                        Ok((g, timed_out)) => {
                            state = g;
                            if timed_out.timed_out() {
                                break;
                            }
                        }
                        Err(poisoned) => {
                            self.state.clear_poison();
                            state = poisoned.into_inner().0;
                        }
                    }
                }
                let take = state.pending.len().min(self.max_batch);
                state.pending.drain(..take).collect::<Vec<_>>()
            };
            if taken.is_empty() {
                continue;
            }
            self.execute(engine, taken);
        }
    }

    /// Answers one gathered batch: cache pass, then dedup, then one
    /// pinned-epoch execution, then distribution to the waiting slots.
    fn execute(&self, engine: &PcsEngine, batch: Vec<PendingQuery>) {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.batched_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);

        // Cache pass first: anything answerable at the current epoch
        // skips dedup and execution entirely. Bypassing requests and
        // cache-less engines fall straight through (lookup is `None`).
        let mut misses: Vec<PendingQuery> = Vec::with_capacity(batch.len());
        let mut hits = 0u64;
        for p in batch {
            match engine.cache_lookup(&p.req) {
                Some(cached) => {
                    hits += 1;
                    p.slot.post(Ok(cached));
                }
                None => misses.push(p),
            }
        }
        if hits > 0 {
            self.stats.cache_answered.fetch_add(hits, Ordering::Relaxed);
        }
        if misses.is_empty() {
            return;
        }

        let (unique, assignment) = Self::dedup_requests(misses.iter().map(|p| &p.req));
        let saved = misses.len() - unique.len();
        if saved > 0 {
            self.stats.dedup_saved.fetch_add(saved as u64, Ordering::Relaxed);
        }

        // One epoch pin for the whole batch.
        let results: Vec<BatchOutcome> =
            engine.query_batch(&unique).into_iter().map(|r| r.map(Arc::new)).collect();

        // Offer the fresh answers to the cache. `cache_fill` refuses
        // responses stamped with a superseded epoch, so a publish
        // racing this batch can never plant a stale entry.
        for (req, result) in unique.iter().zip(&results) {
            if let Ok(resp) = result {
                engine.cache_fill(req, resp);
            }
        }

        Self::distribute(&misses, &assignment, &results);
    }

    /// Collapses identical requests: returns the unique requests plus,
    /// per input, the index of its unique twin.
    ///
    /// Keyed on the request itself (see the module docs' dedup-key
    /// contract): every `QueryRequest` field — present and future —
    /// participates via the derived `Hash`/`Eq`, so a new builder knob
    /// can never silently fall out of the key and alias two distinct
    /// requests.
    fn dedup_requests<'a>(
        requests: impl Iterator<Item = &'a QueryRequest>,
    ) -> (Vec<QueryRequest>, Vec<usize>) {
        let mut unique: Vec<QueryRequest> = Vec::new();
        let mut index_of: HashMap<QueryRequest, usize> = HashMap::new();
        let mut assignment: Vec<usize> = Vec::new();
        for req in requests {
            let idx = match index_of.get(req) {
                Some(&idx) => idx,
                None => {
                    let idx = unique.len();
                    unique.push(req.clone());
                    index_of.insert(req.clone(), idx);
                    idx
                }
            };
            assignment.push(idx);
        }
        (unique, assignment)
    }

    /// Posts `results[assignment[i]]` to `pending[i]`'s slot.
    ///
    /// A missing result — the dispatcher produced fewer results than
    /// unique requests, which is a bug in this module, not a property
    /// of any client's request — posts a truthful
    /// [`EngineError::Internal`] (a stable-tagged 500 at the HTTP
    /// layer) instead of fabricating a client-addressable error.
    fn distribute(pending: &[PendingQuery], assignment: &[usize], results: &[BatchOutcome]) {
        for (i, p) in pending.iter().enumerate() {
            let outcome = assignment.get(i).and_then(|&idx| results.get(idx)).cloned();
            let outcome = outcome.unwrap_or_else(|| {
                Err(EngineError::Internal {
                    component: "batch-dispatch",
                    detail: format!(
                        "no result for request {i}: {} results for {} waiters",
                        results.len(),
                        pending.len()
                    ),
                })
            });
            p.slot.post(outcome);
        }
    }

    /// Signals shutdown and wakes the dispatcher so it can drain and
    /// exit. Safe to call more than once.
    pub fn shutdown(&self) {
        self.lock_state().shutdown = true;
        self.arrived.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_engine::PcsEngine;
    use pcs_graph::Graph;
    use pcs_ptree::{PTree, Taxonomy};
    use std::sync::atomic::Ordering;
    use std::thread;

    fn engine() -> Arc<PcsEngine> {
        let n = 12usize;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for d in 1..=2u32 {
                let v = (u + d) % n as u32;
                let (lo, hi) = (u.min(v), u.max(v));
                if !edges.contains(&(lo, hi)) {
                    edges.push((lo, hi));
                }
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut tax = Taxonomy::new("root");
        let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
        let profiles = (0..n).map(|_| PTree::from_labels(&tax, [a]).unwrap()).collect::<Vec<_>>();
        Arc::new(PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build().unwrap())
    }

    #[test]
    fn submissions_get_results_and_twins_dedup() {
        let engine = engine();
        let batcher = Arc::new(Batcher::new(Duration::from_millis(30), 64));
        let dispatcher = {
            let b = Arc::clone(&batcher);
            let e = Arc::clone(&engine);
            thread::spawn(move || b.run_dispatcher(&e))
        };
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&batcher);
            handles.push(thread::spawn(move || {
                b.submit(QueryRequest::vertex(3).k(2)).expect("result")
            }));
        }
        let epochs: Vec<u64> =
            handles.into_iter().map(|h| h.join().unwrap().expect("query ok").epoch).collect();
        assert!(epochs.windows(2).all(|w| w[0] == w[1]), "one epoch per batch");
        assert!(batcher.stats().dedup_saved.load(Ordering::Relaxed) > 0);
        batcher.shutdown();
        dispatcher.join().unwrap();
    }

    #[test]
    fn shutdown_refuses_new_submissions() {
        let batcher = Batcher::new(Duration::from_millis(5), 8);
        batcher.shutdown();
        assert!(batcher.submit(QueryRequest::vertex(0).k(1)).is_none());
    }

    /// The dedup-key contract: requests differing in ANY builder field
    /// must never collapse together. The old hand-maintained tuple key
    /// silently dropped fields added after it was written (it never
    /// carried `bypass_cache`), aliasing distinct requests.
    #[test]
    fn requests_differing_in_any_builder_field_never_dedup() {
        use pcs_engine::Algorithm;
        let base = || QueryRequest::vertex(3).k(2);
        let variants: Vec<QueryRequest> = vec![
            base(),
            QueryRequest::vertex(4).k(2),       // vertex differs
            base().k(3),                        // k differs
            base().algorithm(Algorithm::Basic), // algorithm differs
            base().max_communities(1),          // cap differs
            base().collect_stats(true),         // stats flag differs
            base().bypass_cache(true),          // cache flag differs
        ];
        let (unique, assignment) = Batcher::dedup_requests(variants.iter());
        assert_eq!(unique.len(), variants.len(), "distinct requests deduped together: {unique:?}");
        assert_eq!(assignment, (0..variants.len()).collect::<Vec<_>>());

        // And true twins still collapse.
        let twins = [base(), base(), base()];
        let (unique, assignment) = Batcher::dedup_requests(twins.iter());
        assert_eq!(unique.len(), 1);
        assert_eq!(assignment, vec![0, 0, 0]);
    }

    /// A results/waiters length mismatch is a dispatcher bug and must
    /// surface as the truthful `Internal` error, not a fabricated
    /// client-addressable one (the old code claimed `IndexDisabled`
    /// for an algorithm named "batch-dispatch").
    #[test]
    fn forced_result_mismatch_reports_internal_error() {
        let pending: Vec<PendingQuery> = (0..2)
            .map(|v| PendingQuery {
                req: QueryRequest::vertex(v).k(1),
                slot: Arc::new(Slot { result: Mutex::new(None), done: Condvar::new() }),
            })
            .collect();
        let resp = Arc::new(engine().query(&QueryRequest::vertex(0).k(1)).expect("query ok"));
        // Two waiters, two assignments — but only one result made it.
        Batcher::distribute(&pending, &[0, 1], &[Ok(resp)]);

        let take = |p: &PendingQuery| p.slot.result.lock().unwrap().take().expect("posted");
        assert!(take(&pending[0]).is_ok(), "covered slot gets its result");
        match take(&pending[1]) {
            Err(EngineError::Internal { component, .. }) => {
                assert_eq!(component, "batch-dispatch");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }
}
