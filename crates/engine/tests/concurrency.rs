//! Concurrency stress: N reader threads issue queries while a writer
//! applies update batches. Requirements under test:
//!
//! * no panics, poisoned locks, or torn state;
//! * every response is **snapshot-consistent** — its communities equal
//!   what a from-scratch engine built for the graph/profiles of the
//!   epoch stamped on the response would return;
//! * every observed epoch is one the writer actually published.

use pcs_core::{Algorithm, QueryContext};
use pcs_engine::{EngineSnapshot, IndexMode, PcsEngine, QueryRequest, UpdateBatch};
use pcs_graph::{Graph, VertexId};
use pcs_ptree::{PTree, Taxonomy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

fn random_instance(seed: u64) -> (Graph, Taxonomy, Vec<PTree>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = 10usize;
    let mut tax = Taxonomy::new("r");
    let mut ids = vec![Taxonomy::ROOT];
    for i in 1..labels {
        let parent = ids[rng.gen_range(0..ids.len())];
        ids.push(tax.add_child(parent, &format!("n{i}")).unwrap());
    }
    let n = 36usize;
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.16) {
                edges.push((a, b));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let profiles: Vec<PTree> = (0..n)
        .map(|_| {
            let count = rng.gen_range(0..=5usize);
            let picks: Vec<u32> = (0..count).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            PTree::from_labels(&tax, picks).unwrap()
        })
        .collect();
    (g, tax, profiles)
}

/// A scripted batch of 1–3 random mutations.
fn random_batch(rng: &mut SmallRng, n: u32, tax: &Taxonomy, label_pool: &[u32]) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..rng.gen_range(1..=3) {
        match rng.gen_range(0..4) {
            0 | 1 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    batch = batch.add_edge(a, b); // may be a no-op: fine
                }
            }
            2 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    batch = batch.remove_edge(a, b);
                }
            }
            _ => {
                let v = rng.gen_range(0..n);
                let count = rng.gen_range(0..=4usize);
                let picks: Vec<u32> =
                    (0..count).map(|_| label_pool[rng.gen_range(0..label_pool.len())]).collect();
                batch = batch.set_profile(v, PTree::from_labels(tax, picks).unwrap());
            }
        }
    }
    batch
}

fn stress(mode: IndexMode, seed: u64) {
    let (g, tax, profiles) = random_instance(seed);
    let n = g.num_vertices() as u32;
    let label_pool: Vec<u32> = (0..tax.len() as u32).collect();
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax.clone())
        .profiles(profiles)
        .index_mode(mode)
        .build()
        .unwrap();
    let engine = &engine;

    // Epoch -> pinned snapshot, recorded by the writer as it publishes.
    let published: Mutex<Vec<EngineSnapshot>> = Mutex::new(vec![engine.snapshot()]);
    let done = AtomicBool::new(false);
    // (epoch, q, k, community vertex sets) per reader observation.
    type Observation = (u64, VertexId, u32, Vec<Vec<VertexId>>);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    let published_ref = &published;
    let done_ref = &done;
    let observations_ref = &observations;
    std::thread::scope(|s| {
        // Writer: 36 batches, recording each published snapshot.
        s.spawn(|| {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xa0f3);
            for _ in 0..36 {
                let batch = random_batch(&mut rng, n, &tax, &label_pool);
                let report = engine.apply(&batch).expect("scripted batches are valid");
                if report.changed() {
                    published_ref.lock().unwrap().push(engine.snapshot());
                }
            }
            done_ref.store(true, Ordering::Release);
        });
        // Readers: hammer queries until the writer finishes.
        for t in 0..4u64 {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (0x4ead + t));
                let mut local = Vec::new();
                // At least 12 queries per reader even when the writer
                // finishes first (tiny batches apply very fast), so the
                // final epoch is always observed and verified too.
                while local.len() < 12 || !done_ref.load(Ordering::Acquire) {
                    let q = rng.gen_range(0..n);
                    let k = rng.gen_range(1..3u32);
                    let resp = engine
                        .query(&QueryRequest::vertex(q).k(k))
                        .expect("in-range query never fails");
                    let comms: Vec<Vec<VertexId>> =
                        resp.communities().iter().map(|c| c.vertices.clone()).collect();
                    local.push((resp.epoch, q, k, comms));
                }
                observations_ref.lock().unwrap().extend(local);
            });
        }
    });

    // Verify: every observation matches a from-scratch reference for
    // the snapshot of its epoch.
    let published = published.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    assert!(!observations.is_empty(), "readers observed something");
    let find = |epoch: u64| -> &EngineSnapshot {
        published
            .iter()
            .find(|s| s.epoch() == epoch)
            .unwrap_or_else(|| panic!("epoch {epoch} was never published"))
    };
    let mut checked = 0usize;
    for (epoch, q, k, comms) in &observations {
        let snap = find(*epoch);
        let ctx = QueryContext::new(snap.graph(), &tax, snap.profiles()).unwrap();
        let reference = ctx.query(*q, *k, Algorithm::Basic).unwrap();
        let expect: Vec<Vec<VertexId>> =
            reference.communities.iter().map(|c| c.vertices.clone()).collect();
        assert_eq!(
            comms, &expect,
            "epoch {epoch} q {q} k {k}: response is not snapshot-consistent"
        );
        checked += 1;
    }
    assert!(checked >= observations.len());
}

#[test]
fn readers_stay_consistent_under_eager_updates() {
    stress(IndexMode::Eager, 41);
}

#[test]
fn readers_stay_consistent_under_lazy_updates() {
    // Lazy mode races reader-triggered index builds against writer
    // publications (Deferred drops included).
    stress(IndexMode::Lazy, 42);
}

/// The group-commit write path: every concurrent `apply_coalesced`
/// caller gets a report, all effects land, a malformed batch fails
/// only its own submitter, and the coalesce counters balance
/// (`groups + coalesced == submitted`).
#[test]
fn coalesced_writers_each_get_a_report_and_bad_batches_fail_alone() {
    let (g, tax, profiles) = random_instance(77);
    let n = g.num_vertices() as u32;
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax.clone())
        .profiles(profiles)
        .index_mode(IndexMode::Eager)
        .build()
        .unwrap();

    // Clear the writer vertices' profiles first (serially), so each
    // concurrent writer's set-to-full below is a guaranteed change —
    // an UpdateBatch keeps only the last profile op per vertex, and a
    // random profile may already be empty.
    let writers = 8u32;
    let clear: UpdateBatch = (0..writers)
        .map(|t| (t, PTree::from_labels(&tax, []).unwrap()))
        .fold(UpdateBatch::new(), |b, (t, p)| b.set_profile(t, p));
    engine.apply(&clear).unwrap();

    let reports = Mutex::new(Vec::new());
    let bad = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..writers {
            let engine = &engine;
            let tax = &tax;
            let reports = &reports;
            s.spawn(move || {
                let full =
                    PTree::from_labels(tax, (1..tax.len() as u32).collect::<Vec<_>>()).unwrap();
                let batch = UpdateBatch::new().set_profile(t, full);
                let report = engine.apply_coalesced(&batch).expect("valid batch applies");
                reports.lock().unwrap().push(report);
            });
        }
        // Two writers submit batches naming an out-of-range vertex:
        // pre-validation must bounce them individually without
        // touching the groups their contemporaries formed.
        for _ in 0..2 {
            let engine = &engine;
            let bad = &bad;
            s.spawn(move || {
                let batch = UpdateBatch::new().add_edge(0, n + 100);
                bad.lock().unwrap().push(engine.apply_coalesced(&batch));
            });
        }
    });

    let reports = reports.into_inner().unwrap();
    assert_eq!(reports.len(), writers as usize);
    // Every good batch changed its vertex's (cleared) profile, so the
    // merged report every member receives counts >= 1 change and the
    // final snapshot carries all eight writes.
    for r in &reports {
        assert!(r.profiles_changed >= 1, "merged report shows no effect: {r:?}");
    }
    let snap = engine.snapshot();
    for t in 0..writers {
        assert_eq!(
            snap.profiles()[t as usize].nodes().len(),
            tax.len(),
            "vertex {t}'s full profile did not land"
        );
    }
    let max_epoch = reports.iter().map(|r| r.epoch).max().unwrap();
    assert_eq!(snap.epoch(), max_epoch, "last published epoch is the max reported");

    for err in bad.into_inner().unwrap() {
        assert!(err.is_err(), "out-of-range batch must be rejected to its own caller");
    }

    let cs = engine.coalesce_stats();
    assert_eq!(cs.submitted, writers as u64, "rejected batches never count as submitted");
    assert!(cs.groups >= 1 && cs.groups <= cs.submitted);
    assert_eq!(cs.groups + cs.coalesced, cs.submitted, "coalesce counters must balance");
}
