//! Dense interning of the subtree lattice of one [`QuerySpace`].
//!
//! The MARGIN boundary walk and the Apriori enumerations revisit the
//! same candidate subtrees over and over — as memo keys, seen-set
//! entries, queue elements, and cut pairs. Keeping those structures
//! keyed by [`Subtree`] bitsets means hashing and cloning a boxed word
//! slice at every single step. The [`SubtreeInterner`] removes all of
//! that from the hot path:
//!
//! * every distinct subtree is assigned a dense [`SubtreeId`] (`u32`)
//!   the **first** time it is seen — the only moment its word image is
//!   hashed or stored;
//! * the ±one-node lattice moves (`with`/`without`) are memoized in
//!   flat id tables (`id × position → id`), so re-deriving a
//!   neighbour that was seen before is a single array read — no bitset
//!   materialization, no hashing;
//! * memo tables, visited sets, and result sets downstream become
//!   `Vec`s indexed by `SubtreeId`.
//!
//! The lattice is exponential in `|T(q)|`, so ids are assigned lazily
//! for exactly the subtrees a query actually touches (the boundary
//! neighbourhood — a small fraction of the lattice, which is the whole
//! point of the advanced algorithms).

use pcs_graph::FxHashMap;

use crate::query::{QuerySpace, Subtree};

/// Sentinel inside the adjacency caches: move not computed yet.
const UNSET: u32 = u32::MAX;

/// Dense id of an interned subtree. Ids are contiguous from 0 in
/// first-seen order, so `Vec`s indexed by [`SubtreeId::index`] are
/// perfect hash tables over every subtree a query has touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubtreeId(u32);

impl SubtreeId {
    /// The id as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw id value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Interner for the subtrees of one query's search space.
///
/// All word images live in one flat arena (`words_per` consecutive
/// `u64`s per id); the id-keyed `with`/`without` tables make repeated
/// lattice moves allocation- and hash-free.
pub struct SubtreeInterner<'s> {
    space: &'s QuerySpace,
    words_per: usize,
    len: usize,
    /// Flat arena: id `i` owns `words[i*words_per .. (i+1)*words_per]`.
    words: Vec<u64>,
    /// Node count per id (lattice level), kept for O(1) access.
    counts: Vec<u32>,
    /// Word image → id; consulted once per *distinct* subtree.
    map: FxHashMap<Box<[u64]>, u32>,
    /// `with_cache[i*len + pos]` = id of subtree `i` ∪ {pos}.
    with_cache: Vec<u32>,
    /// `without_cache[i*len + pos]` = id of subtree `i` \ {pos}.
    without_cache: Vec<u32>,
    /// Scratch word buffer for computing new images.
    tmp: Vec<u64>,
}

impl<'s> SubtreeInterner<'s> {
    /// Creates an empty interner over `space`.
    pub fn new(space: &'s QuerySpace) -> Self {
        let len = space.len();
        SubtreeInterner {
            space,
            words_per: len.div_ceil(64).max(1),
            len,
            words: Vec::new(),
            counts: Vec::new(),
            map: FxHashMap::default(),
            with_cache: Vec::new(),
            without_cache: Vec::new(),
            tmp: Vec::new(),
        }
    }

    /// The search space this interner serves.
    #[inline]
    pub fn space(&self) -> &'s QuerySpace {
        self.space
    }

    /// Number of distinct subtrees interned so far.
    #[inline]
    pub fn num_interned(&self) -> usize {
        self.counts.len()
    }

    /// The word image of `id`.
    #[inline]
    pub fn words_of(&self, id: SubtreeId) -> &[u64] {
        let start = id.index() * self.words_per;
        &self.words[start..start + self.words_per]
    }

    /// Node count (lattice level) of `id`.
    #[inline]
    pub fn count(&self, id: SubtreeId) -> u32 {
        self.counts[id.index()]
    }

    /// Membership of a DFS position in `id`.
    #[inline]
    pub fn contains(&self, id: SubtreeId, pos: u32) -> bool {
        self.words_of(id)[pos as usize / 64] & (1 << (pos as usize % 64)) != 0
    }

    /// True when every position of `id` is set in the raw word image
    /// `mask` (the per-vertex profile-projection subset test of
    /// Lemma 3's filter).
    #[inline]
    pub fn is_subset_of_words(&self, id: SubtreeId, mask: &[u64]) -> bool {
        self.words_of(id).iter().zip(mask.iter()).all(|(a, b)| a & !b == 0)
    }

    /// Iterates the positions of `id` in increasing order.
    pub fn positions(&self, id: SubtreeId) -> impl Iterator<Item = u32> + '_ {
        self.words_of(id).iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u32 * 64 + b)
                }
            })
        })
    }

    /// Materializes `id` as an owned [`Subtree`] (result assembly and
    /// tests only — never needed inside the search loops).
    pub fn subtree(&self, id: SubtreeId) -> Subtree {
        Subtree::from_words(self.words_of(id).to_vec().into_boxed_slice())
    }

    /// Interns a subtree, hashing its word image at most once ever.
    pub fn intern(&mut self, s: &Subtree) -> SubtreeId {
        debug_assert_eq!(s.words().len(), self.words_per);
        self.intern_words_slice(s.words())
    }

    /// The id of the root-only subtree `{0}`.
    pub fn root_only(&mut self) -> SubtreeId {
        let mut tmp = std::mem::take(&mut self.tmp);
        tmp.clear();
        tmp.resize(self.words_per, 0);
        tmp[0] = 1;
        let id = self.intern_words_slice(&tmp);
        self.tmp = tmp;
        id
    }

    /// The id of the full query tree `T(q)`.
    pub fn full(&mut self) -> SubtreeId {
        let mut tmp = std::mem::take(&mut self.tmp);
        tmp.clear();
        tmp.resize(self.words_per, 0);
        for p in 0..self.len {
            tmp[p / 64] |= 1 << (p % 64);
        }
        let id = self.intern_words_slice(&tmp);
        self.tmp = tmp;
        id
    }

    fn intern_words_slice(&mut self, image: &[u64]) -> SubtreeId {
        if let Some(&id) = self.map.get(image) {
            return SubtreeId(id);
        }
        let id = self.counts.len() as u32;
        self.words.extend_from_slice(image);
        self.counts.push(image.iter().map(|w| w.count_ones()).sum());
        self.map.insert(image.to_vec().into_boxed_slice(), id);
        self.with_cache.extend(std::iter::repeat_n(UNSET, self.len));
        self.without_cache.extend(std::iter::repeat_n(UNSET, self.len));
        SubtreeId(id)
    }

    /// `id ∪ {pos}` — memoized: an array read after the first call for
    /// this `(id, pos)` pair.
    pub fn with(&mut self, id: SubtreeId, pos: u32) -> SubtreeId {
        let slot = id.index() * self.len + pos as usize;
        let cached = self.with_cache[slot];
        if cached != UNSET {
            return SubtreeId(cached);
        }
        let mut tmp = std::mem::take(&mut self.tmp);
        tmp.clear();
        tmp.extend_from_slice(self.words_of(id));
        tmp[pos as usize / 64] |= 1 << (pos as usize % 64);
        let out = self.intern_words_slice(&tmp);
        self.tmp = tmp;
        self.with_cache[slot] = out.raw();
        out
    }

    /// `id \ {pos}` — memoized like [`SubtreeInterner::with`].
    pub fn without(&mut self, id: SubtreeId, pos: u32) -> SubtreeId {
        let slot = id.index() * self.len + pos as usize;
        let cached = self.without_cache[slot];
        if cached != UNSET {
            return SubtreeId(cached);
        }
        let mut tmp = std::mem::take(&mut self.tmp);
        tmp.clear();
        tmp.extend_from_slice(self.words_of(id));
        tmp[pos as usize / 64] &= !(1 << (pos as usize % 64));
        let out = self.intern_words_slice(&tmp);
        self.tmp = tmp;
        self.without_cache[slot] = out.raw();
        out
    }

    /// `a ∪ b` (the Upper-◇ step and `find-P`'s path unions).
    pub fn union(&mut self, a: SubtreeId, b: SubtreeId) -> SubtreeId {
        if a == b {
            return a;
        }
        let mut tmp = std::mem::take(&mut self.tmp);
        tmp.clear();
        tmp.extend(self.words_of(a).iter().zip(self.words_of(b)).map(|(x, y)| x | y));
        let out = self.intern_words_slice(&tmp);
        self.tmp = tmp;
        out
    }

    /// `a ⊆ b`.
    #[inline]
    pub fn is_subset(&self, a: SubtreeId, b: SubtreeId) -> bool {
        self.words_of(a).iter().zip(self.words_of(b)).all(|(x, y)| x & !y == 0)
    }

    /// Largest set position of `id`, if any.
    pub fn max_pos(&self, id: SubtreeId) -> Option<u32> {
        for (wi, &w) in self.words_of(id).iter().enumerate().rev() {
            if w != 0 {
                return Some((wi * 64 + 63 - w.leading_zeros() as usize) as u32);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Move generators: the id-space analogues of the QuerySpace methods,
    // writing into a caller-owned scratch vector so steady-state queries
    // never allocate. (The O(|T(q)|) bit scans are already cheap — what
    // these avoid is the per-call Vec the owned generators return.)
    // ------------------------------------------------------------------

    /// Non-redundant rightmost-path extensions of `id`, appended to
    /// `out` (cleared first).
    pub fn rightmost_extensions_into(&self, id: SubtreeId, out: &mut Vec<u32>) {
        out.clear();
        if self.count(id) == 0 {
            out.push(0);
            return;
        }
        let lo = self.max_pos(id).unwrap() + 1;
        for p in lo..self.len as u32 {
            if self.contains(id, self.space.parent_of(p)) {
                out.push(p);
            }
        }
    }

    /// All lattice children (addable positions) of `id`, into `out`.
    pub fn lattice_children_into(&self, id: SubtreeId, out: &mut Vec<u32>) {
        out.clear();
        if self.count(id) == 0 {
            out.push(0);
            return;
        }
        for p in 1..self.len as u32 {
            if !self.contains(id, p) && self.contains(id, self.space.parent_of(p)) {
                out.push(p);
            }
        }
    }

    /// All lattice parents (removable leaves) of `id`, into `out`.
    pub fn lattice_parents_into(&self, id: SubtreeId, out: &mut Vec<u32>) {
        self.leaves_into(id, out);
        if self.count(id) != 1 {
            out.retain(|&p| p != 0);
        }
    }

    /// Leaves of `id` (members with no member child), into `out`.
    pub fn leaves_into(&self, id: SubtreeId, out: &mut Vec<u32>) {
        out.clear();
        for p in self.positions(id) {
            if self.space.children_of(p).iter().all(|&c| !self.contains(id, c)) {
                out.push(p);
            }
        }
    }
}

/// A growable flat bitset keyed by [`SubtreeId`] — the seen-sets and
/// visited-sets of the search algorithms, with O(1) insert/contains and
/// no hashing.
#[derive(Clone, Debug, Default)]
pub struct SubtreeIdSet {
    words: Vec<u64>,
}

impl SubtreeIdSet {
    /// An empty set.
    pub fn new() -> Self {
        SubtreeIdSet::default()
    }

    /// Inserts `id`; returns true when newly inserted.
    #[inline]
    pub fn insert(&mut self, id: SubtreeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: SubtreeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }
}

impl std::fmt::Debug for SubtreeInterner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubtreeInterner")
            .field("space_len", &self.len)
            .field("num_interned", &self.num_interned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptree::PTree;
    use crate::taxonomy::Taxonomy;

    /// r -> {a, b}; a -> {c, d}; b -> {e}.  Preorder: r a c d b e.
    fn space() -> (Taxonomy, QuerySpace) {
        let mut t = Taxonomy::new("r");
        let a = t.add_child(0, "a").unwrap();
        let b = t.add_child(0, "b").unwrap();
        let c = t.add_child(a, "c").unwrap();
        let d = t.add_child(a, "d").unwrap();
        let e = t.add_child(b, "e").unwrap();
        let tq = PTree::from_labels(&t, [c, d, e]).unwrap();
        let qs = QuerySpace::new(&t, &tq).unwrap();
        (t, qs)
    }

    #[test]
    fn intern_is_stable_and_dense() {
        let (_, qs) = space();
        let mut it = SubtreeInterner::new(&qs);
        let root = it.root_only();
        assert_eq!(root.index(), 0);
        assert_eq!(it.root_only(), root);
        let full = it.full();
        assert_ne!(full, root);
        assert_eq!(it.num_interned(), 2);
        assert_eq!(it.count(root), 1);
        assert_eq!(it.count(full), 6);
        assert!(it.is_subset(root, full));
        assert!(!it.is_subset(full, root));
    }

    #[test]
    fn roundtrips_through_subtree() {
        let (_, qs) = space();
        let mut it = SubtreeInterner::new(&qs);
        let s = qs.root_only().with(1).with(3);
        let id = it.intern(&s);
        assert_eq!(it.subtree(id), s);
        assert_eq!(it.intern(&s), id);
        assert_eq!(it.positions(id).collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn with_without_match_owned_ops() {
        let (_, qs) = space();
        let mut it = SubtreeInterner::new(&qs);
        let s = qs.root_only().with(1);
        let id = it.intern(&s);
        let id2 = it.with(id, 2);
        assert_eq!(it.subtree(id2), s.with(2));
        // Cached second call.
        assert_eq!(it.with(id, 2), id2);
        assert_eq!(it.without(id2, 2), id);
        let other = it.intern(&qs.root_only().with(4));
        let u = it.union(id2, other);
        assert_eq!(it.subtree(u), s.with(2).with(4));
    }

    #[test]
    fn move_generators_match_query_space() {
        let (_, qs) = space();
        let mut it = SubtreeInterner::new(&qs);
        let mut buf = Vec::new();
        // Exhaustively compare against the owned generators over every
        // valid subtree of the 6-node space.
        for mask in 0u32..(1 << 6) {
            let mut s = qs.empty();
            for p in 0..6 {
                if mask & (1 << p) != 0 {
                    s = s.with(p);
                }
            }
            if !qs.is_valid(&s) {
                continue;
            }
            let id = it.intern(&s);
            it.rightmost_extensions_into(id, &mut buf);
            assert_eq!(buf, qs.rightmost_extensions(&s), "ext {mask:b}");
            it.lattice_children_into(id, &mut buf);
            assert_eq!(buf, qs.lattice_children(&s), "children {mask:b}");
            it.lattice_parents_into(id, &mut buf);
            assert_eq!(buf, qs.lattice_parents(&s), "parents {mask:b}");
            it.leaves_into(id, &mut buf);
            assert_eq!(buf, qs.leaves(&s), "leaves {mask:b}");
            assert_eq!(it.max_pos(id), s.max_pos());
            assert_eq!(it.count(id) as usize, s.count());
        }
    }
}
