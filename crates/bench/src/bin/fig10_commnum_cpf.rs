//! Fig. 10: (a) average number of communities per query and (b)
//! Community P-tree Frequency, for PCS vs ACQ vs Global vs Local.

use pcs_bench::quality::{run_all_methods, Method};
use pcs_bench::{engine_owning, f, header, parse_args, row};
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::{sample_query_vertices, SuiteDataset};
use pcs_metrics::cpf;

fn main() {
    let args = parse_args();
    let cfg = SuiteConfig { scale: args.scale, seed: args.seed };

    println!(
        "Fig. 10(a) — average communities per query ({} queries, k = {})\n",
        args.queries, args.k
    );
    header(&["dataset", "PCS", "ACQ", "Global", "Local"]);
    let mut cpf_rows: Vec<Vec<String>> = Vec::new();
    for which in SuiteDataset::ALL {
        let ds = build(which, cfg);
        let name = ds.name.clone();
        let (queries, _) = sample_query_vertices(&ds, args.k, args.queries, args.seed ^ 0x10a);
        // The dataset is fully sampled; move it into the owned engine.
        let engine = engine_owning(ds);
        let results = run_all_methods(&engine, &queries, args.k);
        let n = results.len().max(1) as f64;
        let avg = |m: Method| f(results.iter().map(|r| r.of(m).len()).sum::<usize>() as f64 / n);
        row(&[
            name.clone(),
            avg(Method::Pcs),
            avg(Method::Acq),
            avg(Method::Global),
            avg(Method::Local),
        ]);
        // Compute the Fig. 10(b) row now, while this dataset's engine
        // is alive, so graph + index drop at the end of the iteration
        // instead of staying resident across all four datasets.
        let snap = engine.snapshot();
        let profiles = snap.profiles();
        let mut cells = vec![name];
        for m in [Method::PcsOnly, Method::PcsAndAcq, Method::Acq, Method::Global, Method::Local] {
            let mut acc = 0.0;
            let mut counted = 0usize;
            for (qi, r) in results.iter().enumerate() {
                let comms = r.of(m);
                if comms.is_empty() {
                    continue;
                }
                let tq = &profiles[queries[qi] as usize];
                acc += cpf(tq, profiles, &comms);
                counted += 1;
            }
            cells.push(f(acc / counted.max(1) as f64));
        }
        cpf_rows.push(cells);
    }
    println!("\nPaper: PCS finds the most communities (more semantic focuses).\n");

    println!("Fig. 10(b) — CPF per method\n");
    header(&["dataset", "PCs*", "P-ACs", "ACQ", "Global", "Local"]);
    for cells in &cpf_rows {
        row(cells);
    }
    println!("\nPaper: the PCS series (PCs*, P-ACs) stay the most cohesive.");
}
