//! Fig. 11 / Table 4: F1 accuracy on the FB ego networks.
//!
//! Queries ground-truth circle members and scores each method's best
//! community match against the circles containing the query vertex.

use pcs_baselines::{acq_query, global_query, local_query};
use pcs_bench::{engine_owning, f, header, parse_args, row};
use pcs_datasets::ego::{build, EgoNetwork};
use pcs_datasets::sample_query_vertices;
use pcs_engine::QueryRequest;
use pcs_graph::VertexId;
use pcs_metrics::best_f1;

fn main() {
    let args = parse_args();
    let k = if args.k == 6 { 4 } else { args.k }; // ego circles are small; default to 4

    println!("Table 4 — ego networks\n");
    header(&["dataset", "vertices", "edges", "d̂", "P̂", "circles"]);
    let mut datasets = Vec::new();
    for which in EgoNetwork::ALL {
        let ds = build(which, args.seed);
        row(&[
            ds.name.clone(),
            ds.graph.num_vertices().to_string(),
            ds.graph.num_edges().to_string(),
            format!("{:.2}", ds.graph.avg_degree()),
            format!("{:.2}", ds.avg_ptree_size()),
            ds.groups.len().to_string(),
        ]);
        datasets.push(ds);
    }

    println!("\nFig. 11 — F1 scores ({} queries per network, k = {k})\n", args.queries);
    header(&["dataset", "PCS", "ACQ", "Global", "Local"]);
    for ds in datasets {
        let name = ds.name.clone();
        let (pool, _) = sample_query_vertices(&ds, k, args.queries * 3, args.seed ^ 0xf1);
        let queries: Vec<VertexId> = pool
            .into_iter()
            .filter(|q| ds.groups.iter().any(|g| g.binary_search(q).is_ok()))
            .take(args.queries)
            .collect();
        // The dataset is fully sampled; move it into the owned engine,
        // keeping only the ground-truth circles behind for scoring.
        let mut ds = ds;
        let groups = std::mem::take(&mut ds.groups);
        let engine = engine_owning(ds);
        let requests: Vec<QueryRequest> =
            queries.iter().map(|&q| QueryRequest::vertex(q).k(k)).collect();
        let batch = engine.query_batch(&requests);

        let snap = engine.snapshot();
        let (g, tax, profiles) = (snap.graph(), engine.taxonomy(), snap.profiles());
        let mut scores = [0.0f64; 4];
        for (&q, pcs_result) in queries.iter().zip(batch) {
            let truths: Vec<Vec<VertexId>> =
                groups.iter().filter(|g| g.binary_search(&q).is_ok()).cloned().collect();
            let pcs: Vec<Vec<VertexId>> = pcs_result
                .map(|r| r.outcome.communities.into_iter().map(|c| c.vertices).collect())
                .unwrap_or_default();
            scores[0] += best_f1(&pcs, &truths);
            let acq: Vec<Vec<VertexId>> = acq_query(g, tax, profiles, q, k)
                .communities
                .into_iter()
                .map(|c| c.community.vertices)
                .collect();
            scores[1] += best_f1(&acq, &truths);
            let global: Vec<Vec<VertexId>> =
                global_query(g, profiles, q, k).map(|c| vec![c.vertices]).unwrap_or_default();
            scores[2] += best_f1(&global, &truths);
            let local: Vec<Vec<VertexId>> = local_query(g, profiles, q, k, usize::MAX)
                .map(|c| vec![c.vertices])
                .unwrap_or_default();
            scores[3] += best_f1(&local, &truths);
        }
        let n = queries.len().max(1) as f64;
        row(&[name, f(scores[0] / n), f(scores[1] / n), f(scores[2] / n), f(scores[3] / n)]);
    }
    println!("\nPaper: PCS stably extracts the most accurate circles across all three networks.");
}
