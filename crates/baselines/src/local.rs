//! Local (Cui et al., "Local search of communities in large graphs",
//! SIGMOD 2014).
//!
//! Expansion-based community search: instead of peeling the whole
//! graph, grow a candidate set outward from `q` — always absorbing the
//! frontier vertex with the most links into the current set — and stop
//! as soon as the candidate set contains a k-core around `q`. Returns a
//! *small* community whose size depends on the local neighbourhood, not
//! on `n`, which is exactly the behavioural contrast with `Global` the
//! paper's evaluation exercises.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pcs_core::ProfiledCommunity;
use pcs_graph::core::SubsetCore;
use pcs_graph::{FxHashMap, Graph, VertexId};
use pcs_ptree::PTree;

use crate::community_from_vertices;

/// Runs the local expansion for `(q, k)`.
///
/// `budget` caps how many vertices may be absorbed before giving up
/// (pass `usize::MAX` for no cap); expansion also stops naturally when
/// the component of `q` is exhausted.
pub fn local_query(
    g: &Graph,
    profiles: &[PTree],
    q: VertexId,
    k: u32,
    budget: usize,
) -> Option<ProfiledCommunity> {
    if q as usize >= g.num_vertices() {
        return None;
    }
    let mut members: Vec<VertexId> = vec![q];
    let mut in_set = vec![false; g.num_vertices()];
    in_set[q as usize] = true;
    // Frontier scored by links into the current set; a lazy max-heap
    // (stale entries skipped on pop) keeps each absorption O(log n).
    let mut score: FxHashMap<VertexId, u32> = FxHashMap::default();
    let mut heap: BinaryHeap<(u32, Reverse<VertexId>)> = BinaryHeap::new();
    for &u in g.neighbors(q) {
        score.insert(u, 1);
        heap.push((1, Reverse(u)));
    }
    let mut sc = SubsetCore::new(g.num_vertices());
    // Check after every absorption batch; batching trades a few extra
    // absorbed vertices for far fewer k-core probes. The batch grows
    // with the member count so the total probe cost stays near-linear.
    let mut next_check = 1usize;

    loop {
        if members.len() >= next_check {
            if let Some(found) = sc.kcore_component_within(g, &members, q, k) {
                return Some(community_from_vertices(found, profiles.into()));
            }
            next_check = members.len() + (members.len() / 4).max(k as usize + 1);
        }
        // Absorb the best-connected frontier vertex (ties: smallest id
        // for determinism).
        let best = loop {
            match heap.pop() {
                Some((s, Reverse(v))) => {
                    if !in_set[v as usize] && score.get(&v) == Some(&s) {
                        break Some(v);
                    }
                }
                None => break None,
            }
        };
        let Some(best) = best else {
            // Frontier exhausted: final attempt with what was gathered.
            let found = sc.kcore_component_within(g, &members, q, k)?;
            return Some(community_from_vertices(found, profiles.into()));
        };
        if members.len() >= budget {
            let found = sc.kcore_component_within(g, &members, q, k)?;
            return Some(community_from_vertices(found, profiles.into()));
        }
        score.remove(&best);
        in_set[best as usize] = true;
        members.push(best);
        for &u in g.neighbors(best) {
            if !in_set[u as usize] {
                let s = score.entry(u).or_insert(0);
                *s += 1;
                heap.push((*s, Reverse(u)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_local_triangle_without_global_scan() {
        // Triangle at q plus a long pendant chain; local search should
        // return the triangle.
        let mut edges = vec![(0, 1), (1, 2), (0, 2)];
        for i in 2..50u32 {
            edges.push((i, i + 1));
        }
        let g = Graph::from_edges(51, &edges).unwrap();
        let profiles = vec![PTree::root_only(); 51];
        let c = local_query(&g, &profiles, 0, 2, usize::MAX).unwrap();
        assert_eq!(c.vertices, vec![0, 1, 2]);
    }

    #[test]
    fn returns_none_when_no_kcore() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let profiles = vec![PTree::root_only(); 3];
        assert!(local_query(&g, &profiles, 0, 2, usize::MAX).is_none());
        assert!(local_query(&g, &profiles, 9, 0, usize::MAX).is_none());
    }

    #[test]
    fn budget_caps_exploration() {
        // A k-core exists but beyond the budget: give up gracefully.
        let mut edges = Vec::new();
        // Path 0..10 then a clique at the far end.
        for i in 0..10u32 {
            edges.push((i, i + 1));
        }
        for a in 10..14u32 {
            for b in (a + 1)..14u32 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(14, &edges).unwrap();
        let profiles = vec![PTree::root_only(); 14];
        assert!(local_query(&g, &profiles, 0, 3, 3).is_none());
        // With full budget the clique is reachable but 0 is not in it.
        assert!(local_query(&g, &profiles, 0, 3, usize::MAX).is_none());
        // Querying from inside the clique succeeds immediately.
        let c = local_query(&g, &profiles, 12, 3, usize::MAX).unwrap();
        assert_eq!(c.vertices, vec![10, 11, 12, 13]);
    }

    #[test]
    fn local_is_no_larger_than_global() {
        use pcs_graph::gen;
        let g = gen::preferential_attachment(200, 4, 3);
        let profiles = vec![PTree::root_only(); 200];
        for q in [0u32, 10, 50] {
            let local = local_query(&g, &profiles, q, 3, usize::MAX);
            let global = crate::global::global_query(&g, &profiles, q, 3);
            match (local, global) {
                (Some(l), Some(gc)) => {
                    assert!(l.vertices.len() <= gc.vertices.len());
                    assert!(l.vertices.binary_search(&q).is_ok());
                    // Local community is itself a valid k-core.
                    for &v in &l.vertices {
                        let deg = g
                            .neighbors(v)
                            .iter()
                            .filter(|u| l.vertices.binary_search(u).is_ok())
                            .count();
                        assert!(deg >= 3);
                    }
                }
                (None, None) => {}
                (l, gc) => panic!("local/global disagree on existence: {l:?} vs {gc:?}"),
            }
        }
    }
}
