// Fixture: the block form covers every finding of its rule inside the
// next brace-delimited block with one documented justification. Zero
// findings expected.

// audit:allow-block(no-index): fixture reason; the length is checked before any indexed access
fn gather(v: &[u32]) -> u32 {
    if v.len() < 3 {
        return 0;
    }
    v[0] + v[1] + v[2]
}
