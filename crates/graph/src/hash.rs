//! A fast, non-cryptographic hasher for integer-dominated keys.
//!
//! The default `std` hasher (SipHash 1-3) defends against HashDoS but is
//! slow for the dense `u32` vertex and label ids used throughout this
//! workspace. This module implements the well-known Fx multiply-rotate
//! construction (the hasher used inside rustc) in ~40 lines so that no
//! extra dependency is needed.
//!
//! All inputs in this workspace are internally generated ids, never
//! attacker-controlled strings, so the weaker collision resistance is
//! acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
///
/// Each `write_*` folds the input word into the state with a rotate,
/// xor, and multiply by a large odd constant (π-derived, as in rustc).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_distinguishes_values() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(1);
        s.insert(2);
        assert!(s.contains(&1));
        assert!(!s.contains(&3));
    }

    #[test]
    fn hash_of_different_ints_differs() {
        // Not a collision-resistance proof, just a smoke test that the
        // hasher actually mixes input.
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
        assert_ne!(h(0x1000), h(0x2000));
    }

    #[test]
    fn byte_writes_cover_tail_paths() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());

        let mut c = FxHasher::default();
        c.write(&[9; 16]); // exact-chunk path
        let mut d = FxHasher::default();
        d.write(&[9; 17]); // chunk + tail path
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn string_keys_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("machine learning".into(), 1);
        m.insert("information systems".into(), 2);
        assert_eq!(m["machine learning"], 1);
        assert_eq!(m["information systems"], 2);
    }
}
