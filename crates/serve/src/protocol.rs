//! The service protocol: routes, request validation, and JSON
//! rendering.
//!
//! Five routes:
//!
//! * `GET /query?v=<u32>&k=<u32>[&algo=<name>][&max=<n>][&stats=0|1]`
//!   `[&cache=0|1]` — one community search. `algo` is one of `auto`,
//!   `basic`, `incre`, `adv-I`, `adv-D`, `adv-P` (case-insensitive).
//!   `cache=0` opts this request out of the engine's result cache
//!   (never read, never filled); the default participates.
//! * `POST /apply` — a newline-separated batch of mutations:
//!   `add <u> <v>`, `remove <u> <v>`, `profile <v> [<label>...]`.
//! * `GET /health` — liveness + current epoch.
//! * `GET /stats` — server counters.
//! * `GET /wal?from=<u64>[&max=<bytes>]` — the replication feed: raw
//!   WAL frames for every *durable* epoch strictly after `from`, as
//!   `application/octet-stream`. A follower feeds the bytes straight
//!   into `PcsEngine::apply_wal_frames`. `max` caps the response size
//!   (clamped to [`MAX_WAL_TAIL_BYTES`]); a reclaimed gap answers
//!   `410 Gone` — the follower must re-seed from a snapshot.
//!
//! Validation is **server-side and total**: every malformed or
//! out-of-range request is rejected with a typed [`ApiError`] (a 4xx)
//! *before* an engine snapshot or scratch buffer is touched, so junk
//! traffic cannot consume query resources. Query strings are plain
//! `k=v&k=v` pairs — values are numeric or fixed enum names, so no
//! percent-decoding is needed (a `%` in a value is simply an
//! unparsable value).

use crate::http::{Method, Request};
use pcs_core::Algorithm;
use pcs_engine::{Error as EngineError, QueryRequest, QueryResponse, UpdateBatch, UpdateReport};
use pcs_ptree::{PTree, Taxonomy};

/// Ceiling on `max` (requested community cap). Anything larger is a
/// resource-exhaustion request, not a real query.
pub const MAX_COMMUNITY_CAP: usize = 10_000;
/// Ceiling on `k`: the degree bound can never exceed the vertex count,
/// and absurd values signal a malformed client.
pub const MAX_DEGREE_BOUND: u32 = 1 << 20;
/// Ceiling on one `/wal` response, bytes. A follower that is far
/// behind simply polls again — bounding each response keeps a single
/// replication request from monopolizing a worker's write path.
pub const MAX_WAL_TAIL_BYTES: u64 = 8 << 20;

/// A typed request rejection. Everything here maps to a 4xx status —
/// the request was understood to be invalid before the engine was
/// involved.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApiError {
    /// No route matches the path → 404.
    UnknownPath(String),
    /// The path exists but not with this method → 405.
    MethodNotAllowed {
        /// The route.
        path: String,
        /// The method the client used.
        method: &'static str,
    },
    /// A required query parameter is absent → 400.
    MissingParam(&'static str),
    /// A parameter failed to parse → 400.
    BadParam {
        /// The parameter name.
        name: &'static str,
        /// What was expected.
        expected: &'static str,
    },
    /// A parameter not in the route's schema → 400.
    UnknownParam(String),
    /// `v` is outside `0..n` → 400.
    VertexOutOfRange {
        /// The requested vertex.
        vertex: u32,
        /// The engine's vertex count.
        n: usize,
    },
    /// `k = 0`: a 0-core is the whole graph, never a meaningful
    /// community query → 400.
    ZeroK,
    /// `k` exceeds [`MAX_DEGREE_BOUND`] → 400.
    DegreeBoundTooLarge {
        /// The requested bound.
        k: u32,
    },
    /// `max` exceeds [`MAX_COMMUNITY_CAP`] → 400.
    MaxCommunitiesTooLarge {
        /// The requested cap.
        max: usize,
    },
    /// `algo` names no known algorithm → 400.
    UnknownAlgorithm(String),
    /// A line of the `/apply` body failed to parse → 400.
    MalformedBody {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: &'static str,
    },
    /// An `/apply` profile op named a label outside the taxonomy → 400.
    UnknownLabel {
        /// 1-based line number.
        line: usize,
        /// The offending label.
        label: u32,
    },
    /// The `/apply` body declared more than the server's op cap → 400.
    TooManyOps {
        /// Declared op count.
        declared: usize,
        /// The cap.
        cap: usize,
    },
}

impl ApiError {
    /// The HTTP status this rejection maps to.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::UnknownPath(_) => 404,
            ApiError::MethodNotAllowed { .. } => 405,
            _ => 400,
        }
    }

    /// A stable machine-readable tag for the error body.
    pub fn tag(&self) -> &'static str {
        match self {
            ApiError::UnknownPath(_) => "unknown_path",
            ApiError::MethodNotAllowed { .. } => "method_not_allowed",
            ApiError::MissingParam(_) => "missing_param",
            ApiError::BadParam { .. } => "bad_param",
            ApiError::UnknownParam(_) => "unknown_param",
            ApiError::VertexOutOfRange { .. } => "vertex_out_of_range",
            ApiError::ZeroK => "zero_k",
            ApiError::DegreeBoundTooLarge { .. } => "degree_bound_too_large",
            ApiError::MaxCommunitiesTooLarge { .. } => "max_communities_too_large",
            ApiError::UnknownAlgorithm(_) => "unknown_algorithm",
            ApiError::MalformedBody { .. } => "malformed_body",
            ApiError::UnknownLabel { .. } => "unknown_label",
            ApiError::TooManyOps { .. } => "too_many_ops",
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::UnknownPath(p) => write!(f, "no route matches {p}"),
            ApiError::MethodNotAllowed { path, method } => {
                write!(f, "{path} does not accept {method}")
            }
            ApiError::MissingParam(p) => write!(f, "required parameter '{p}' is missing"),
            ApiError::BadParam { name, expected } => {
                write!(f, "parameter '{name}' must be {expected}")
            }
            ApiError::UnknownParam(p) => write!(f, "unknown parameter '{p}'"),
            ApiError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} is out of range (engine has {n} vertices)")
            }
            ApiError::ZeroK => write!(f, "k must be at least 1"),
            ApiError::DegreeBoundTooLarge { k } => {
                write!(f, "k = {k} exceeds the cap {MAX_DEGREE_BOUND}")
            }
            ApiError::MaxCommunitiesTooLarge { max } => {
                write!(f, "max = {max} exceeds the cap {MAX_COMMUNITY_CAP}")
            }
            ApiError::UnknownAlgorithm(a) => write!(
                f,
                "unknown algorithm '{a}' (expected auto, basic, incre, adv-I, adv-D or adv-P)"
            ),
            ApiError::MalformedBody { line, detail } => {
                write!(f, "apply body line {line}: {detail}")
            }
            ApiError::UnknownLabel { line, label } => {
                write!(f, "apply body line {line}: label {label} is not in the taxonomy")
            }
            ApiError::TooManyOps { declared, cap } => {
                write!(f, "apply body declares {declared} ops, cap is {cap}")
            }
        }
    }
}

impl std::error::Error for ApiError {}

/// The routes.
#[derive(Clone, Debug, PartialEq)]
pub enum Route {
    /// A validated community-search request.
    Query(QueryRequest),
    /// A validated mutation batch.
    Apply(UpdateBatch),
    /// Liveness probe.
    Health,
    /// Server counters.
    Stats,
    /// The replication feed: WAL frames for durable epochs after
    /// `from`, at most `max` bytes per response.
    WalTail {
        /// Resume point: the follower's current epoch.
        from: u64,
        /// Response size cap, already clamped to
        /// [`MAX_WAL_TAIL_BYTES`].
        max: u64,
    },
}

/// Cap on ops per `/apply` body.
pub const MAX_APPLY_OPS: usize = 4_096;

/// Parses and validates one HTTP request into a [`Route`]. `n` is the
/// engine's (fixed) vertex count; `tax` its taxonomy — both are
/// captured at server start, so validation never touches a snapshot.
pub fn route(req: &Request, n: usize, tax: &Taxonomy) -> Result<Route, ApiError> {
    match (req.method, req.path.as_str()) {
        (Method::Get, "/query") => Ok(Route::Query(parse_query(&req.query, n)?)),
        (Method::Post, "/apply") => Ok(Route::Apply(parse_apply(&req.body, n, tax)?)),
        (Method::Get, "/health") => Ok(Route::Health),
        (Method::Get, "/stats") => Ok(Route::Stats),
        (Method::Get, "/wal") => parse_wal(&req.query),
        (Method::Post, p @ ("/query" | "/health" | "/stats" | "/wal")) => {
            Err(ApiError::MethodNotAllowed { path: p.to_string(), method: "POST" })
        }
        (Method::Get, "/apply") => {
            Err(ApiError::MethodNotAllowed { path: "/apply".to_string(), method: "GET" })
        }
        (_, other) => Err(ApiError::UnknownPath(other.to_string())),
    }
}

/// Parses `v=..&k=..[&algo=..][&max=..][&stats=..]` into a validated
/// [`QueryRequest`].
fn parse_query(query: &str, n: usize) -> Result<QueryRequest, ApiError> {
    let mut v: Option<u32> = None;
    let mut k: Option<u32> = None;
    let mut algo = Algorithm::Auto;
    let mut max: Option<usize> = None;
    let mut stats = false;
    let mut bypass_cache = false;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
        match name {
            "v" => {
                v = Some(value.parse().map_err(|_| ApiError::BadParam {
                    name: "v",
                    expected: "an unsigned vertex id",
                })?);
            }
            "k" => {
                k = Some(value.parse().map_err(|_| ApiError::BadParam {
                    name: "k",
                    expected: "an unsigned degree bound",
                })?);
            }
            "algo" => {
                algo = parse_algorithm(value)?;
            }
            "max" => {
                max = Some(value.parse().map_err(|_| ApiError::BadParam {
                    name: "max",
                    expected: "an unsigned community cap",
                })?);
            }
            "stats" => {
                stats = match value {
                    "1" | "true" => true,
                    "0" | "false" => false,
                    _ => {
                        return Err(ApiError::BadParam { name: "stats", expected: "0 or 1" });
                    }
                };
            }
            "cache" => {
                bypass_cache = match value {
                    "1" | "true" => false,
                    "0" | "false" => true,
                    _ => {
                        return Err(ApiError::BadParam { name: "cache", expected: "0 or 1" });
                    }
                };
            }
            other => return Err(ApiError::UnknownParam(other.to_string())),
        }
    }
    let v = v.ok_or(ApiError::MissingParam("v"))?;
    let k = k.ok_or(ApiError::MissingParam("k"))?;
    if (v as usize) >= n {
        return Err(ApiError::VertexOutOfRange { vertex: v, n });
    }
    if k == 0 {
        return Err(ApiError::ZeroK);
    }
    if k > MAX_DEGREE_BOUND {
        return Err(ApiError::DegreeBoundTooLarge { k });
    }
    let mut req = QueryRequest::vertex(v)
        .k(k)
        .algorithm(algo)
        .collect_stats(stats)
        .bypass_cache(bypass_cache);
    if let Some(m) = max {
        if m > MAX_COMMUNITY_CAP {
            return Err(ApiError::MaxCommunitiesTooLarge { max: m });
        }
        req = req.max_communities(m);
    }
    Ok(req)
}

/// Parses `from=..[&max=..]` into a [`Route::WalTail`]. `from` is the
/// follower's current epoch (0 = from the start of the retained log);
/// `max` is a per-response byte budget, silently clamped to
/// [`MAX_WAL_TAIL_BYTES`] — a replica asking for "everything" is a
/// normal catch-up, not a malformed request.
fn parse_wal(query: &str) -> Result<Route, ApiError> {
    let mut from: Option<u64> = None;
    let mut max = MAX_WAL_TAIL_BYTES;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
        match name {
            "from" => {
                from = Some(value.parse().map_err(|_| ApiError::BadParam {
                    name: "from",
                    expected: "an unsigned epoch",
                })?);
            }
            "max" => {
                let m: u64 = value.parse().map_err(|_| ApiError::BadParam {
                    name: "max",
                    expected: "an unsigned byte budget",
                })?;
                max = m.min(MAX_WAL_TAIL_BYTES);
            }
            other => return Err(ApiError::UnknownParam(other.to_string())),
        }
    }
    let from = from.ok_or(ApiError::MissingParam("from"))?;
    Ok(Route::WalTail { from, max })
}

/// Case-insensitive algorithm name lookup.
fn parse_algorithm(name: &str) -> Result<Algorithm, ApiError> {
    [
        Algorithm::Auto,
        Algorithm::Basic,
        Algorithm::Incre,
        Algorithm::AdvI,
        Algorithm::AdvD,
        Algorithm::AdvP,
    ]
    .into_iter()
    .find(|a| a.name().eq_ignore_ascii_case(name))
    .ok_or_else(|| ApiError::UnknownAlgorithm(name.to_string()))
}

/// Parses the `/apply` body: one op per line, `#`-comments and blank
/// lines skipped. Vertex ranges and profile labels are validated here,
/// so a bad batch is refused without waking the writer.
fn parse_apply(body: &[u8], n: usize, tax: &Taxonomy) -> Result<UpdateBatch, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::MalformedBody { line: 0, detail: "body is not UTF-8" })?;
    let mut batch = UpdateBatch::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if batch.len() >= MAX_APPLY_OPS {
            return Err(ApiError::TooManyOps { declared: batch.len() + 1, cap: MAX_APPLY_OPS });
        }
        let mut fields = trimmed.split_whitespace();
        let op = fields.next().unwrap_or("");
        match op {
            "add" | "remove" => {
                let u = parse_vertex(fields.next(), line, n)?;
                let v = parse_vertex(fields.next(), line, n)?;
                if fields.next().is_some() {
                    return Err(ApiError::MalformedBody { line, detail: "extra fields" });
                }
                batch = if op == "add" { batch.add_edge(u, v) } else { batch.remove_edge(u, v) };
            }
            "profile" => {
                let v = parse_vertex(fields.next(), line, n)?;
                let mut labels = Vec::new();
                for field in fields {
                    let label: u32 = field.parse().map_err(|_| ApiError::MalformedBody {
                        line,
                        detail: "labels must be unsigned integers",
                    })?;
                    labels.push(label);
                }
                let profile = PTree::from_labels(tax, labels.iter().copied()).map_err(|_| {
                    let bad = labels
                        .iter()
                        .copied()
                        .find(|&l| (l as usize) >= tax.len())
                        .unwrap_or(u32::MAX);
                    ApiError::UnknownLabel { line, label: bad }
                })?;
                batch = batch.set_profile(v, profile);
            }
            _ => {
                return Err(ApiError::MalformedBody {
                    line,
                    detail: "expected 'add', 'remove' or 'profile'",
                });
            }
        }
    }
    Ok(batch)
}

fn parse_vertex(field: Option<&str>, line: usize, n: usize) -> Result<u32, ApiError> {
    let v: u32 = field
        .ok_or(ApiError::MalformedBody { line, detail: "missing vertex field" })?
        .parse()
        .map_err(|_| ApiError::MalformedBody {
            line,
            detail: "vertex must be an unsigned integer",
        })?;
    if (v as usize) >= n {
        return Err(ApiError::VertexOutOfRange { vertex: v, n });
    }
    Ok(v)
}

/// Status for an error the engine itself returned (post-validation,
/// so these are rare): update rejections and index-policy refusals are
/// the client's fault, everything else is ours.
/// [`EngineError::Internal`] is explicitly a 500 — it reports a bug in
/// our dispatch/coalescing machinery, never anything the client sent.
pub fn engine_error_status(err: &EngineError) -> u16 {
    match err {
        EngineError::Update(_) => 400,
        EngineError::Query(_) => 400,
        EngineError::IndexDisabled { .. } => 400,
        EngineError::Internal { .. } => 500,
        _ => 500,
    }
}

// --- JSON rendering -------------------------------------------------
//
// Hand-rolled like the bench snapshot writer: the payloads are flat
// and entirely produced from typed values, so a serializer dependency
// would buy nothing.

/// Escapes a string for a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn json_u32_list(ids: &[u32]) -> String {
    let mut out = String::from("[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out.push(']');
    out
}

/// Renders a successful query response.
pub fn render_query_response(resp: &QueryResponse) -> String {
    let mut communities = String::from("[");
    for (i, c) in resp.communities().iter().enumerate() {
        if i > 0 {
            communities.push(',');
        }
        communities.push_str(&format!(
            "{{\"vertices\":{},\"subtree\":{}}}",
            json_u32_list(&c.vertices),
            json_u32_list(c.subtree.nodes()),
        ));
    }
    communities.push(']');
    format!(
        "{{\"epoch\":{},\"algorithm\":\"{}\",\"index_used\":{},\"elapsed_us\":{},\
         \"total_communities\":{},\"truncated\":{},\"communities\":{}}}",
        resp.epoch,
        json_escape(resp.algorithm.name()),
        resp.index_used,
        resp.elapsed.as_micros(),
        resp.total_communities,
        resp.truncated(),
        communities,
    )
}

/// Renders an `Option<u64>` as a JSON number or `null`.
pub fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Renders an update report. `durable_epoch` is the highest epoch the
/// WAL had fsynced when this batch committed (`null` on a non-durable
/// engine); it always trails or equals `epoch` of a later report, and
/// covers at least this batch's own epoch.
pub fn render_update_report(report: &UpdateReport) -> String {
    format!(
        "{{\"epoch\":{},\"durable_epoch\":{},\"edges_added\":{},\"edges_removed\":{},\
         \"profiles_changed\":{},\"noops\":{},\"cores_changed\":{},\"elapsed_us\":{}}}",
        report.epoch,
        json_opt_u64(report.durable_epoch),
        report.edges_added,
        report.edges_removed,
        report.profiles_changed,
        report.noops,
        report.cores_changed,
        report.elapsed.as_micros(),
    )
}

/// Renders a typed 4xx rejection.
pub fn render_api_error(err: &ApiError) -> String {
    format!("{{\"error\":\"{}\",\"detail\":\"{}\"}}", err.tag(), json_escape(&err.to_string()))
}

/// Renders an engine-side failure. Server-side faults carry the
/// stable `"internal"` tag so clients (and the load harness) can tell
/// a server bug from an engine-level refusal without parsing prose.
pub fn render_engine_error(err: &EngineError) -> String {
    let tag = match err {
        EngineError::Internal { .. } => "internal",
        _ => "engine",
    };
    format!("{{\"error\":\"{tag}\",\"detail\":\"{}\"}}", json_escape(&err.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Request;

    fn get(path: &str, query: &str) -> Request {
        Request {
            method: Method::Get,
            path: path.to_string(),
            query: query.to_string(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn tax() -> Taxonomy {
        // Six labels: root, two branches, three leaves.
        let mut t = Taxonomy::new("root");
        let a = t.add_child(Taxonomy::ROOT, "a").unwrap();
        let b = t.add_child(Taxonomy::ROOT, "b").unwrap();
        t.add_child(a, "a1").unwrap();
        t.add_child(a, "a2").unwrap();
        t.add_child(b, "b1").unwrap();
        t
    }

    #[test]
    fn query_route_parses_and_validates() {
        let r = route(&get("/query", "v=3&k=2&algo=basic&max=5&stats=1"), 10, &tax()).unwrap();
        match r {
            Route::Query(q) => {
                assert_eq!(q.vertex_id(), 3);
                assert_eq!(q.degree_bound(), 2);
                assert_eq!(q.requested_algorithm(), Algorithm::Basic);
                assert_eq!(q.community_cap(), Some(5));
                assert!(q.wants_stats());
            }
            other => panic!("expected query route, got {other:?}"),
        }
    }

    #[test]
    fn query_rejections_are_typed() {
        let t = tax();
        let err = |q: &str| route(&get("/query", q), 10, &t).unwrap_err();
        assert_eq!(err("k=2"), ApiError::MissingParam("v"));
        assert_eq!(err("v=1"), ApiError::MissingParam("k"));
        assert_eq!(err("v=10&k=2"), ApiError::VertexOutOfRange { vertex: 10, n: 10 });
        assert_eq!(err("v=1&k=0"), ApiError::ZeroK);
        assert_eq!(err("v=1&k=2&max=999999"), ApiError::MaxCommunitiesTooLarge { max: 999_999 });
        assert_eq!(err("v=1&k=2&algo=dijkstra"), ApiError::UnknownAlgorithm("dijkstra".into()));
        assert_eq!(err("v=x&k=2").status(), 400);
        assert_eq!(err("v=1&k=2&frobnicate=1"), ApiError::UnknownParam("frobnicate".into()));
        assert!(matches!(
            err(&format!("v=1&k={}", u32::MAX)),
            ApiError::DegreeBoundTooLarge { .. }
        ));
    }

    #[test]
    fn cache_param_controls_bypass() {
        let t = tax();
        let parsed = |q: &str| match route(&get("/query", q), 10, &t).unwrap() {
            Route::Query(req) => req,
            other => panic!("expected query route, got {other:?}"),
        };
        assert!(!parsed("v=1&k=2").bypasses_cache(), "cache participation is the default");
        assert!(parsed("v=1&k=2&cache=0").bypasses_cache());
        assert!(!parsed("v=1&k=2&cache=1").bypasses_cache());
        assert_eq!(
            route(&get("/query", "v=1&k=2&cache=maybe"), 10, &t).unwrap_err(),
            ApiError::BadParam { name: "cache", expected: "0 or 1" }
        );
    }

    #[test]
    fn internal_errors_are_tagged_500() {
        let err = EngineError::Internal { component: "batch-dispatch", detail: "x".into() };
        assert_eq!(engine_error_status(&err), 500);
        assert!(render_engine_error(&err).starts_with("{\"error\":\"internal\""));
        // Client-addressable failures keep their 400 + generic tag.
        let refusal = EngineError::IndexDisabled { algorithm: "adv-P" };
        assert_eq!(engine_error_status(&refusal), 400);
        assert!(render_engine_error(&refusal).starts_with("{\"error\":\"engine\""));
    }

    #[test]
    fn algorithm_names_round_trip() {
        for a in Algorithm::ALL {
            assert_eq!(parse_algorithm(a.name()).unwrap(), a);
        }
        assert_eq!(parse_algorithm("auto").unwrap(), Algorithm::Auto);
        assert_eq!(parse_algorithm("ADV-i").unwrap(), Algorithm::AdvI);
    }

    #[test]
    fn apply_body_parses() {
        let body = b"# comment\nadd 0 1\nremove 2 3\nprofile 4 5\n\n";
        let batch = parse_apply(body, 10, &tax()).unwrap();
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn apply_rejections_are_typed() {
        let t = tax();
        assert_eq!(
            parse_apply(b"add 0 99", 10, &t).unwrap_err(),
            ApiError::VertexOutOfRange { vertex: 99, n: 10 }
        );
        assert!(matches!(
            parse_apply(b"frob 1 2", 10, &t).unwrap_err(),
            ApiError::MalformedBody { line: 1, .. }
        ));
        assert!(matches!(
            parse_apply(b"add 1", 10, &t).unwrap_err(),
            ApiError::MalformedBody { line: 1, .. }
        ));
        assert_eq!(
            parse_apply(b"profile 1 77", 10, &t).unwrap_err(),
            ApiError::UnknownLabel { line: 1, label: 77 }
        );
    }

    #[test]
    fn wal_route_parses_and_clamps() {
        let t = tax();
        assert_eq!(
            route(&get("/wal", "from=42"), 10, &t).unwrap(),
            Route::WalTail { from: 42, max: MAX_WAL_TAIL_BYTES }
        );
        assert_eq!(
            route(&get("/wal", "from=0&max=1024"), 10, &t).unwrap(),
            Route::WalTail { from: 0, max: 1024 }
        );
        // An oversized budget is clamped, not rejected: a far-behind
        // follower catching up is the normal case.
        assert_eq!(
            route(&get("/wal", &format!("from=0&max={}", u64::MAX)), 10, &t).unwrap(),
            Route::WalTail { from: 0, max: MAX_WAL_TAIL_BYTES }
        );
        assert_eq!(route(&get("/wal", ""), 10, &t).unwrap_err(), ApiError::MissingParam("from"));
        assert_eq!(
            route(&get("/wal", "from=x"), 10, &t).unwrap_err(),
            ApiError::BadParam { name: "from", expected: "an unsigned epoch" }
        );
        assert_eq!(
            route(&get("/wal", "from=1&limit=2"), 10, &t).unwrap_err(),
            ApiError::UnknownParam("limit".into())
        );
    }

    #[test]
    fn routes_reject_unknown_paths_and_methods() {
        let t = tax();
        assert_eq!(route(&get("/nope", ""), 10, &t).unwrap_err().status(), 404);
        let post = Request {
            method: Method::Post,
            path: "/query".to_string(),
            query: String::new(),
            body: Vec::new(),
            keep_alive: true,
        };
        assert_eq!(route(&post, 10, &t).unwrap_err().status(), 405);
        let get_apply = get("/apply", "");
        assert_eq!(route(&get_apply, 10, &t).unwrap_err().status(), 405);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
