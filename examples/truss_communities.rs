//! The paper's §6 extension in action: PCS with **k-truss** structure
//! cohesiveness instead of minimum degree.
//!
//! A k-truss requires every internal edge to close ≥ k−2 triangles, so
//! truss communities are strictly tighter than k-core communities: a
//! long cycle passes the k-core test at k = 2 but contains no triangle.
//! This example contrasts both measures on the same profiled graph.
//!
//! Run with: `cargo run --release --example truss_communities`

use pcs::core::truss_query;
use pcs::prelude::*;

fn main() {
    // Two tight K4 research groups sharing a prolific hub (vertex 0),
    // plus a loose 4-cycle of acquaintances hanging off vertex 1.
    let mut tax = Taxonomy::new("r");
    let db = tax.add_child(Taxonomy::ROOT, "Databases").unwrap();
    let ml = tax.add_child(Taxonomy::ROOT, "Machine Learning").unwrap();
    let g = Graph::from_edges(
        11,
        &[
            // K4 "databases": 0,1,2,3
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            // K4 "machine learning": 0,4,5,6
            (0, 4),
            (0, 5),
            (0, 6),
            (4, 5),
            (4, 6),
            (5, 6),
            // Triangle-free cycle: 1-7-8-9-10-1
            (1, 7),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 1),
        ],
    )
    .expect("well-formed edges");
    let mut profiles = vec![PTree::from_labels(&tax, [db, ml]).unwrap()]; // hub
    profiles.extend((0..3).map(|_| PTree::from_labels(&tax, [db]).unwrap()));
    profiles.extend((0..3).map(|_| PTree::from_labels(&tax, [ml]).unwrap()));
    profiles.extend((0..4).map(|_| PTree::from_labels(&tax, [db]).unwrap())); // cycle

    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Disabled) // basic + truss need no CP-tree
        .build()
        .expect("consistent inputs");
    let tax = engine.taxonomy();

    println!("min-degree PCS, q = 1, k = 2:");
    let core_resp = engine
        .query(&QueryRequest::vertex(1).k(2).algorithm(Algorithm::Basic))
        .expect("query in range");
    for c in core_resp.communities() {
        println!(
            "  {:?} — theme {:?}",
            c.vertices,
            c.subtree.nodes().iter().map(|&l| tax.label(l)).collect::<Vec<_>>()
        );
    }
    println!("(the loose cycle joins: every cycle vertex has degree 2)\n");

    println!("k-truss PCS, q = 1, k = 4 (every edge in ≥ 2 triangles):");
    // truss_query still speaks the borrowed paper layer; the engine
    // lends it a context over the same cached state.
    let truss_out = engine
        .with_context(|ctx| truss_query(ctx, 1, 4))
        .expect("engine state is consistent")
        .expect("query in range");
    for c in &truss_out.communities {
        println!(
            "  {:?} — theme {:?}",
            c.vertices,
            c.subtree.nodes().iter().map(|&l| tax.label(l)).collect::<Vec<_>>()
        );
    }
    println!("(only the K4 survives: truss communities are triangle-dense)");
}
