//! Section encodings: engine state ⇄ flat little-endian payloads.
//!
//! Every section is a sequence of length-prefixed flat arrays — the
//! load path is *validate-then-bulk-copy*: checksums (the container's
//! job) prove the bytes are what the writer produced, structural
//! validation (each component's `from_*` constructor) proves the arrays
//! describe a legal value, and the arrays themselves are adopted
//! wholesale rather than decoded element by element.
//!
//! | id | section | contents |
//! |---|---|---|
//! | 1 | `META` | epoch, vertex/edge/label counts (cross-checked) |
//! | 2 | `GRAPH` | CSR offsets (u64) + neighbor array (u32) |
//! | 3 | `TAXONOMY` | parent array + length-prefixed label names |
//! | 4 | `PROFILES` | per-vertex node counts + flat label array |
//! | 5 | `CORES` | per-vertex core numbers (optional section) |
//! | 6 | `INDEX` | the sharded index (optional); layout is versioned |
//!
//! ## The INDEX section, v1 vs v2
//!
//! * **v1** (read-only): headMap + every populated label's CL-tree,
//!   back to back — monolithic, all-or-nothing.
//! * **v2** (written): no head map (the `PROFILES` section already
//!   carries every `T(v)` and the sharded runtime shares it by `Arc`)
//!   — just the full per-label **member table**, then a **shard
//!   directory** (label, offset, length into a trailing payload blob)
//!   holding only the shards that were *resident* when the engine
//!   saved. A partial load maps the directory eagerly and
//!   decodes individual shard payloads lazily on first touch
//!   ([`LazyShardStore`]); shards absent from the file (or invalidated
//!   later) are rebuilt from the graph on demand.

use crate::format::{
    Result, SectionReader, SectionWriter, SnapshotFile, SnapshotSlices, StoreError,
};
use pcs_graph::{Graph, VertexId};
use pcs_index::{ClTree, ClTreeFlat, CpTree, ShardSource, ShardedCpIndex};
use pcs_ptree::{LabelId, PTree, ProfileLoader, Taxonomy};
use std::sync::Arc;

/// Vertices per `PROFILES` chunk in v3 files. Each chunk is
/// independently checksummed, so a lazy loader faults in
/// `PROFILE_CHUNK` profiles per touch; the value trades directory
/// overhead (24 bytes per chunk) against read amplification on
/// scattered access.
pub const PROFILE_CHUNK: usize = 1024;

/// Seed for the v3 `PROFILES` chunk checksums: chunk `i` is hashed
/// under a seed that encodes both the section id and the chunk index,
/// so a chunk can never validate in another chunk's position.
#[inline]
pub fn profile_chunk_seed(chunk: u64) -> u64 {
    (u64::from(section::PROFILES) << 32) ^ chunk
}

/// Seed for the v3 `INDEX` per-label member checksums (hashed over the
/// raw wire bytes of that label's member run).
#[inline]
pub fn member_sum_seed(label: LabelId) -> u64 {
    (u64::from(section::INDEX) << 32) ^ u64::from(label)
}

/// Seed for a v3 `INDEX` shard-payload checksum: distinct from both the
/// section seed and [`member_sum_seed`] (high bit set), and bound to the
/// shard's label so one shard's payload cannot answer for another's.
pub fn shard_sum_seed(label: LabelId) -> u64 {
    (1u64 << 63) | ((u64::from(section::INDEX) << 32) ^ u64::from(label))
}

/// Well-known section ids (see the module table).
pub mod section {
    /// Epoch and cross-checked counts.
    pub const META: u32 = 1;
    /// The CSR graph.
    pub const GRAPH: u32 = 2;
    /// The GP-tree.
    pub const TAXONOMY: u32 = 3;
    /// Per-vertex P-trees.
    pub const PROFILES: u32 = 4;
    /// Core numbers (optional).
    pub const CORES: u32 = 5;
    /// The sharded CP-tree index (optional).
    pub const INDEX: u32 = 6;
}

/// How [`decode_snapshot_mode`] treats the `INDEX` section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexDecode {
    /// Leave the section untouched (`contents.index = None`): replicas
    /// that drop the index anyway skip the dominant decode cost.
    Skip,
    /// Decode and structurally validate every shard payload up front.
    Eager,
    /// Map the shard directory eagerly but defer each shard payload's
    /// decode to its first materialization (v2 files only; v1 files
    /// have no directory and decode eagerly regardless).
    Partial,
}

/// The decoded `INDEX` section: the facade member table plus the
/// shards in whichever residency the decode mode produced. (The v2
/// wire format carries no head map — `T(v)` restoration reads the
/// `PROFILES` section's trees, which the engine shares with the index
/// by `Arc`; v1 files still carry one and it is pin-checked against
/// the profiles, then dropped.)
#[derive(Debug)]
pub struct DecodedIndex {
    /// Per label, the sorted vertices carrying it (empty ⇔ unpopulated).
    pub members_of: Vec<Vec<VertexId>>,
    /// The shard payloads.
    pub shards: DecodedShards,
}

/// Shard payloads in decoded or lazily decodable form.
pub enum DecodedShards {
    /// Every persisted shard, decoded and validated (v1 files, and v2
    /// under [`IndexDecode::Eager`]). Ascending label order.
    Resident(Vec<(LabelId, ClTree)>),
    /// The v2 partial-load handle: payload bytes retained, decoded per
    /// shard on first touch.
    Lazy(Arc<LazyShardStore>),
}

impl std::fmt::Debug for DecodedShards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodedShards::Resident(v) => write!(f, "Resident({} shards)", v.len()),
            DecodedShards::Lazy(store) => write!(f, "Lazy({} shards)", store.entries.len()),
        }
    }
}

/// The retained shard payload region of a v2 snapshot plus its
/// directory: a [`ShardSource`] that decodes one shard per
/// [`load_shard`](ShardSource::load_shard) call.
///
/// The container already checksummed these bytes at load, so random
/// damage cannot reach this point; a *forged* (re-checksummed) payload
/// that fails structural validation here simply yields `None`, and the
/// owning [`ShardedCpIndex`] rebuilds that shard from the graph — a bad
/// payload can cost time, never correctness.
pub struct LazyShardStore {
    blob: Vec<u8>,
    /// `(label, offset, len)` into `blob`, ascending labels.
    entries: Vec<(LabelId, usize, usize)>,
    narrow: bool,
}

impl LazyShardStore {
    /// Labels with a persisted payload, in ascending order.
    pub fn labels(&self) -> impl Iterator<Item = LabelId> + '_ {
        self.entries.iter().map(|&(l, _, _)| l)
    }

    /// Decodes the payload of `label`, if persisted. Structural
    /// failures surface as a typed error (callers going through
    /// [`ShardSource`] treat them as "not available").
    pub fn decode(&self, label: LabelId) -> Result<Option<ClTree>> {
        let Ok(i) = self.entries.binary_search_by_key(&label, |&(l, _, _)| l) else {
            return Ok(None);
        };
        let Some(&(_, off, len)) = self.entries.get(i) else {
            return Ok(None);
        };
        let end = off
            .checked_add(len)
            .ok_or_else(|| corrupt(section::INDEX, "shard extent overflows"))?;
        let payload = self
            .blob
            .get(off..end)
            .ok_or_else(|| corrupt(section::INDEX, "shard extent out of bounds"))?;
        let mut r = SectionReader::new(payload, section::INDEX);
        let flat = decode_cl(&mut r, self.narrow)?;
        r.finish()?;
        let cl = ClTree::from_flat(flat).map_err(|e| corrupt(section::INDEX, e.to_string()))?;
        Ok(Some(cl))
    }
}

impl ShardSource for LazyShardStore {
    fn load_shard(&self, label: LabelId) -> Option<ClTree> {
        self.decode(label).ok().flatten()
    }
}

impl std::fmt::Debug for LazyShardStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyShardStore")
            .field("shards", &self.entries.len())
            .field("blob_bytes", &self.blob.len())
            .finish()
    }
}

/// A fully decoded snapshot: everything an engine needs to warm-start.
#[derive(Debug)]
pub struct SnapshotContents {
    /// The epoch the source engine was at when saved.
    pub epoch: u64,
    /// The host graph (structurally validated on decode).
    pub graph: Graph,
    /// The GP-tree.
    pub tax: Taxonomy,
    /// Per-vertex P-trees.
    pub profiles: Vec<PTree>,
    /// Core numbers, when the source snapshot had them computed.
    pub cores: Option<Vec<u32>>,
    /// The sharded index parts, when the source snapshot had a facade
    /// built (resident shards only; the rest rebuild on demand).
    pub index: Option<DecodedIndex>,
}

fn corrupt(section: u32, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { section, detail: detail.into() }
}

/// Serializes one engine snapshot into a (current-version)
/// [`SnapshotFile`].
///
/// `cores` and `index` are optional: pass whatever the source snapshot
/// has already materialized. Only the index's **resident** shards are
/// persisted — the member table covers every populated label, so a
/// loader can rebuild the rest on demand. The writer guarantees the
/// sections agree with each other — [`decode_snapshot`] re-checks the
/// cheap consistency subset on the way back in.
pub fn encode_snapshot(
    epoch: u64,
    graph: &Graph,
    tax: &Taxonomy,
    profiles: &[PTree],
    cores: Option<&[u32]>,
    index: Option<&ShardedCpIndex>,
) -> SnapshotFile {
    let mut file = SnapshotFile::new();
    let narrow = narrow_width(graph, tax);
    let version = file.version();
    encode_common_sections(&mut file, epoch, graph, tax, profiles, cores, narrow, version);
    if let Some(idx) = index {
        file.push_section(section::INDEX, encode_index_v2(idx, narrow, true));
    }
    file
}

/// Streams one engine snapshot straight to `path` through a
/// [`SnapshotWriter`](crate::format::SnapshotWriter): each section is
/// encoded, written, and dropped before the next is built, so saving
/// never holds more than one section's payload in memory (the
/// [`encode_snapshot`]`+to_bytes` path holds every section **plus** the
/// full serialized file). Atomicity/durability are identical to
/// [`SnapshotFile::write`].
pub fn write_snapshot(
    path: impl AsRef<std::path::Path>,
    epoch: u64,
    graph: &Graph,
    tax: &Taxonomy,
    profiles: &[PTree],
    cores: Option<&[u32]>,
    index: Option<&ShardedCpIndex>,
) -> Result<()> {
    let narrow = narrow_width(graph, tax);
    let count = 4 + u32::from(cores.is_some()) + u32::from(index.is_some());
    let mut w = crate::format::SnapshotWriter::create(path, crate::format::FORMAT_VERSION, count)?;
    // One section payload alive at a time; each drops before the next
    // is built.
    w.put_section(section::META, &encode_meta(epoch, graph, tax, narrow))?;
    w.put_section(section::GRAPH, &encode_graph(graph, narrow))?;
    w.put_section(section::TAXONOMY, &encode_taxonomy(tax, narrow))?;
    w.put_section(section::PROFILES, &encode_profiles_chunked(profiles, narrow))?;
    if let Some(core) = cores {
        w.put_section(section::CORES, &encode_cores(core, narrow))?;
    }
    if let Some(idx) = index {
        w.put_section(section::INDEX, &encode_index_v2(idx, narrow, true))?;
    }
    w.finish()
}

/// The **legacy v1 writer**, kept so the v1→v2 compatibility path stays
/// testable without committed binary fixtures (and for tooling that
/// must produce files an old reader accepts). Writes a version-1
/// container with the monolithic v1 `INDEX` layout. Production code
/// writes [`encode_snapshot`]; nothing in the serving path calls this.
pub fn encode_snapshot_v1(
    epoch: u64,
    graph: &Graph,
    tax: &Taxonomy,
    profiles: &[PTree],
    cores: Option<&[u32]>,
    index: Option<&CpTree>,
) -> SnapshotFile {
    let mut file = SnapshotFile::new_versioned(1);
    let narrow = narrow_width(graph, tax);
    encode_common_sections(&mut file, epoch, graph, tax, profiles, cores, narrow, 1);
    if let Some(idx) = index {
        file.push_section(section::INDEX, encode_index_v1(idx, tax.len(), narrow));
    }
    file
}

/// Narrow (two-byte) id width whenever every id-like value fits:
/// vertex ids, label ids, and everything bounded by them (core levels,
/// arena offsets, CL-node ids). `u16::MAX` stays reserved as the
/// widened `u32::MAX` sentinel.
fn narrow_width(graph: &Graph, tax: &Taxonomy) -> bool {
    graph.num_vertices() < u16::MAX as usize && tax.len() < u16::MAX as usize
}

/// Encode-side checked narrowing to the u32 wire width. Overflow is a
/// writer contract violation (ids and per-entity list lengths are bounded
/// by u32 vertex/label counts); failing loudly beats serializing a
/// checksum-valid lie — the same policy as [`SectionWriter::put_id_slice`].
fn wire_u32(x: usize, what: &str) -> u32 {
    // audit:allow(no-panic): writer contract — a wrapped length would serialize a checksum-valid corrupt file
    u32::try_from(x).unwrap_or_else(|_| panic!("{what} {x} overflows the u32 wire width"))
}

#[allow(clippy::too_many_arguments)]
fn encode_common_sections(
    file: &mut SnapshotFile,
    epoch: u64,
    graph: &Graph,
    tax: &Taxonomy,
    profiles: &[PTree],
    cores: Option<&[u32]>,
    narrow: bool,
    version: u32,
) {
    file.push_section(section::META, encode_meta(epoch, graph, tax, narrow));
    file.push_section(section::GRAPH, encode_graph(graph, narrow));
    file.push_section(section::TAXONOMY, encode_taxonomy(tax, narrow));
    let p = if version >= 3 {
        encode_profiles_chunked(profiles, narrow)
    } else {
        encode_profiles_flat(profiles, narrow)
    };
    file.push_section(section::PROFILES, p);
    if let Some(core) = cores {
        file.push_section(section::CORES, encode_cores(core, narrow));
    }
}

fn encode_meta(epoch: u64, graph: &Graph, tax: &Taxonomy, narrow: bool) -> Vec<u8> {
    let mut meta = SectionWriter::new();
    meta.put_u64(epoch);
    meta.put_u64(graph.num_vertices() as u64);
    meta.put_u64(graph.num_edges() as u64);
    meta.put_u64(tax.len() as u64);
    meta.put_u64(narrow as u64);
    meta.finish()
}

fn encode_graph(graph: &Graph, narrow: bool) -> Vec<u8> {
    let mut g = SectionWriter::new();
    g.put_u64(graph.num_vertices() as u64);
    g.put_usize_slice_as_u64(graph.csr_offsets());
    g.put_u64(graph.csr_neighbors().len() as u64);
    g.put_id_slice(graph.csr_neighbors(), narrow);
    g.finish()
}

fn encode_taxonomy(tax: &Taxonomy, narrow: bool) -> Vec<u8> {
    let mut t = SectionWriter::new();
    t.put_u64(tax.len() as u64);
    t.put_id_slice(tax.parents(), narrow);
    for name in tax.label_names() {
        t.put_u32(wire_u32(name.len(), "label name length"));
        t.put_bytes(name.as_bytes());
    }
    t.finish()
}

/// The v1/v2 `PROFILES` layout: one flat lens/total/ids block.
fn encode_profiles_flat(profiles: &[PTree], narrow: bool) -> Vec<u8> {
    let mut p = SectionWriter::new();
    p.put_u64(profiles.len() as u64);
    for profile in profiles {
        p.put_u32(wire_u32(profile.nodes().len(), "profile length"));
    }
    let total: usize = profiles.iter().map(|pr| pr.nodes().len()).sum();
    p.put_u64(total as u64);
    for profile in profiles {
        p.put_id_slice(profile.nodes(), narrow);
    }
    p.finish()
}

/// The v3 `PROFILES` layout: the vertex range is cut into
/// [`PROFILE_CHUNK`]-sized chunks, each a self-contained
/// lens/total/ids block with its own checksum, listed in a directory
/// up front:
///
/// ```text
/// count u64 | chunk_size u64 | num_chunks u64
/// directory: { data_off u64, data_len u64, xxh64 u64 } × num_chunks
/// data area: chunk 0 bytes, chunk 1 bytes, ...
/// ```
///
/// Offsets are relative to the data area and must tile it exactly. A
/// lazy loader reads the 24-byte header + directory, then faults in
/// (and verifies) one chunk per [`PROFILE_CHUNK`] vertices touched.
fn encode_profiles_chunked(profiles: &[PTree], narrow: bool) -> Vec<u8> {
    let mut p = SectionWriter::new();
    p.put_u64(profiles.len() as u64);
    p.put_u64(PROFILE_CHUNK as u64);
    let num_chunks = profiles.len().div_ceil(PROFILE_CHUNK);
    p.put_u64(num_chunks as u64);
    let mut dir: Vec<(u64, u64, u64)> = Vec::with_capacity(num_chunks);
    let mut data = SectionWriter::new();
    let mut at = 0u64;
    for (i, chunk) in profiles.chunks(PROFILE_CHUNK).enumerate() {
        let mut c = SectionWriter::new();
        for profile in chunk {
            c.put_u32(wire_u32(profile.nodes().len(), "profile length"));
        }
        let total: usize = chunk.iter().map(|pr| pr.nodes().len()).sum();
        c.put_u64(total as u64);
        for profile in chunk {
            c.put_id_slice(profile.nodes(), narrow);
        }
        let bytes = c.finish();
        let sum = crate::format::xxh64(&bytes, profile_chunk_seed(i as u64));
        dir.push((at, bytes.len() as u64, sum));
        at += bytes.len() as u64;
        data.put_bytes(&bytes);
    }
    for (off, len, sum) in dir {
        p.put_u64(off);
        p.put_u64(len);
        p.put_u64(sum);
    }
    p.put_bytes(&data.finish());
    p.finish()
}

fn encode_cores(core: &[u32], narrow: bool) -> Vec<u8> {
    let mut c = SectionWriter::new();
    c.put_u64(core.len() as u64);
    c.put_id_slice(core, narrow);
    c.finish()
}

/// One CL-tree's flat arrays (the per-shard payload, shared by both
/// index layouts).
fn encode_cl(w: &mut SectionWriter, cl: &ClTreeFlat, narrow: bool) {
    w.put_u64(cl.core.len() as u64);
    w.put_id_slice(&cl.core, narrow);
    w.put_id_slice(&cl.parent, narrow);
    w.put_id_slice(&cl.sub_off, narrow);
    w.put_id_slice(&cl.sub_len, narrow);
    w.put_id_slice(&cl.own_len, narrow);
    w.put_u64(cl.arena.len() as u64);
    w.put_id_slice(&cl.arena, narrow);
    w.put_id_slice(&cl.members, narrow);
    w.put_id_slice(&cl.node_of, narrow);
    w.put_id_slice(&cl.arena_pos, narrow);
}

pub(crate) fn decode_cl(r: &mut SectionReader<'_>, narrow: bool) -> Result<ClTreeFlat> {
    let cl_nodes = r.usize64()?;
    let cl = ClTreeFlat {
        core: r.id_vec(cl_nodes, narrow)?,
        parent: r.id_vec(cl_nodes, narrow)?,
        sub_off: r.id_vec(cl_nodes, narrow)?,
        sub_len: r.id_vec(cl_nodes, narrow)?,
        own_len: r.id_vec(cl_nodes, narrow)?,
        arena: Vec::new(),
        members: Vec::new(),
        node_of: Vec::new(),
        arena_pos: Vec::new(),
    };
    let members = r.usize64()?;
    Ok(ClTreeFlat {
        arena: r.id_vec(members, narrow)?,
        members: r.id_vec(members, narrow)?,
        node_of: r.id_vec(members, narrow)?,
        arena_pos: r.id_vec(members, narrow)?,
        ..cl
    })
}

/// v1 `INDEX`: headMap, then every populated label's CL-tree inline.
fn encode_index_v1(idx: &CpTree, num_labels: usize, narrow: bool) -> Vec<u8> {
    let n = wire_u32(idx.num_vertices(), "vertex count");
    let mut w = SectionWriter::new();
    w.put_u64(u64::from(n));
    w.put_u64(num_labels as u64);
    for v in 0..n {
        w.put_u32(wire_u32(idx.head(v).len(), "head list length"));
    }
    let total: usize = (0..n).map(|v| idx.head(v).len()).sum();
    w.put_u64(total as u64);
    for v in 0..n {
        w.put_id_slice(idx.head(v), narrow);
    }
    w.put_u64(idx.num_populated_labels() as u64);
    for label in 0..wire_u32(num_labels, "label count") {
        let Some(node) = idx.node(label) else {
            continue;
        };
        w.put_u32(node.label);
        encode_cl(&mut w, &node.cl.to_flat(), narrow);
    }
    w.finish()
}

/// v2/v3 `INDEX`: the full member table, then a shard directory over a
/// trailing blob holding only the resident shards' payloads (no head
/// map — `T(v)` lives in the `PROFILES` section). Serialized one
/// shard at a time — saving never holds a second copy of the whole
/// index in memory. With `with_sums` (v3) a per-label checksum of each
/// label's raw member-run bytes follows the length table, and each
/// directory entry carries a checksum of its shard payload — so a lazy
/// loader can fault in and verify one label's members or one shard
/// without reading the whole section.
fn encode_index_v2(idx: &ShardedCpIndex, narrow: bool, with_sums: bool) -> Vec<u8> {
    let n = idx.num_vertices();
    let num_labels = wire_u32(idx.num_labels(), "label count");
    let mut w = SectionWriter::new();
    w.put_u64(n as u64);
    w.put_u64(u64::from(num_labels));
    for label in 0..num_labels {
        w.put_u32(wire_u32(idx.vertices_with_label(label).len(), "member list length"));
    }
    if with_sums {
        for label in 0..num_labels {
            let mut run = SectionWriter::new();
            run.put_id_slice(idx.vertices_with_label(label), narrow);
            w.put_u64(crate::format::xxh64(&run.finish(), member_sum_seed(label)));
        }
    }
    let total: usize = (0..num_labels).map(|l| idx.vertices_with_label(l).len()).sum();
    w.put_u64(total as u64);
    for label in 0..num_labels {
        w.put_id_slice(idx.vertices_with_label(label), narrow);
    }
    // Directory + blob: encode each resident shard once, recording its
    // (offset, len[, checksum]) run inside the blob.
    let mut blob = SectionWriter::new();
    let mut directory: Vec<(LabelId, u64, u64, u64)> = Vec::new();
    let mut at = 0u64;
    for shard in idx.resident_iter() {
        let mut sw = SectionWriter::new();
        encode_cl(&mut sw, &shard.cl.to_flat(), narrow);
        let payload = sw.finish();
        let sum = crate::format::xxh64(&payload, shard_sum_seed(shard.label));
        directory.push((shard.label, at, payload.len() as u64, sum));
        at += payload.len() as u64;
        blob.put_bytes(&payload);
    }
    let blob = blob.finish();
    w.put_u64(directory.len() as u64);
    for (label, off, len, sum) in directory {
        w.put_u32(label);
        w.put_u64(off);
        w.put_u64(len);
        if with_sums {
            w.put_u64(sum);
        }
    }
    w.put_u64(blob.len() as u64);
    w.put_bytes(&blob);
    w.finish()
}

/// Anything the codec can pull sections out of: the owned
/// [`SnapshotFile`] or the zero-copy [`SnapshotSlices`] view.
pub trait SectionSource {
    /// The payload of section `id`, if present.
    fn section(&self, id: u32) -> Option<&[u8]>;

    /// The container format version (selects the `INDEX` layout).
    fn version(&self) -> u32;
}

impl SectionSource for SnapshotFile {
    fn section(&self, id: u32) -> Option<&[u8]> {
        SnapshotFile::section(self, id)
    }

    fn version(&self) -> u32 {
        SnapshotFile::version(self)
    }
}

impl SectionSource for SnapshotSlices<'_> {
    fn section(&self, id: u32) -> Option<&[u8]> {
        SnapshotSlices::section(self, id)
    }

    fn version(&self) -> u32 {
        SnapshotSlices::version(self)
    }
}

/// One-call warm-start path: container-validate `bytes` without
/// copying payloads, then [`decode_snapshot`].
pub fn decode_snapshot_bytes(bytes: &[u8]) -> Result<SnapshotContents> {
    decode_snapshot_bytes_mode(bytes, IndexDecode::Eager)
}

/// [`decode_snapshot_bytes`] with the index decode made optional:
/// replicas that will drop the index anyway (`IndexMode::Disabled`)
/// pass `want_index = false` and skip decoding/validating the INDEX
/// section — the dominant share of a warm snapshot — entirely. The
/// container still checksums every section either way.
pub fn decode_snapshot_bytes_with(bytes: &[u8], want_index: bool) -> Result<SnapshotContents> {
    decode_snapshot_bytes_mode(
        bytes,
        if want_index { IndexDecode::Eager } else { IndexDecode::Skip },
    )
}

/// [`decode_snapshot_bytes`] with an explicit [`IndexDecode`] mode
/// (the engine's lazy load path uses [`IndexDecode::Partial`]).
pub fn decode_snapshot_bytes_mode(bytes: &[u8], mode: IndexDecode) -> Result<SnapshotContents> {
    decode_snapshot_mode(&SnapshotSlices::from_bytes(bytes)?, mode)
}

/// Decodes (and cross-validates) a snapshot file back into engine
/// parts.
///
/// Validation layers, cheapest first: the container already proved
/// byte integrity via checksums; this function proves *structure*
/// (graph CSR invariants, taxonomy shape, P-tree closure, CL-tree
/// arena invariants) and *cross-section agreement* (counts line up,
/// core numbers fit their degrees, and the index `headMap` restores
/// exactly the profile section's P-trees). Anything that fails maps to
/// a typed [`StoreError`] — a decoded snapshot is safe to serve from.
pub fn decode_snapshot(file: &impl SectionSource) -> Result<SnapshotContents> {
    decode_snapshot_mode(file, IndexDecode::Eager)
}

/// [`decode_snapshot`] with the index decode made optional (see
/// [`decode_snapshot_bytes_with`]). With `want_index = false` the
/// INDEX section is left untouched and `contents.index` is `None`.
pub fn decode_snapshot_with(
    file: &impl SectionSource,
    want_index: bool,
) -> Result<SnapshotContents> {
    decode_snapshot_mode(file, if want_index { IndexDecode::Eager } else { IndexDecode::Skip })
}

/// The decoded `META` section: the counts every other section is
/// checked against, available without touching anything else. The lazy
/// loader reads this first and sizes its handles from it.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotMeta {
    /// Source engine's epoch at save time.
    pub epoch: u64,
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Label count.
    pub labels: usize,
    /// Two-byte id width in effect.
    pub narrow: bool,
}

/// Decodes and validates the `META` section payload.
pub fn decode_meta_payload(payload: &[u8]) -> Result<SnapshotMeta> {
    let mut meta = SectionReader::new(payload, section::META);
    let epoch = meta.u64()?;
    let n = meta.usize64()?;
    let m = meta.usize64()?;
    let labels = meta.usize64()?;
    let narrow = match meta.u64()? {
        0 => false,
        1 => true,
        other => return Err(corrupt(section::META, format!("unknown flags {other}"))),
    };
    if narrow && (n >= u16::MAX as usize || labels >= u16::MAX as usize) {
        return Err(corrupt(section::META, "narrow id width cannot hold the declared counts"));
    }
    meta.finish()?;
    Ok(SnapshotMeta { epoch, n, m, labels, narrow })
}

/// Decodes the `GRAPH` section payload into a structurally validated
/// CSR graph, pinned against the META counts.
pub fn decode_graph_payload(payload: &[u8], meta: &SnapshotMeta) -> Result<Graph> {
    let mut g = SectionReader::new(payload, section::GRAPH);
    let n = g.usize64()?;
    if n != meta.n {
        return Err(corrupt(section::GRAPH, "vertex count disagrees with META"));
    }
    let offsets = g.usize_vec_from_u64(
        n.checked_add(1).ok_or_else(|| corrupt(section::GRAPH, "vertex count overflows"))?,
    )?;
    let nbr_len = g.usize64()?;
    let neighbors: Vec<VertexId> = g.id_vec(nbr_len, meta.narrow)?;
    g.finish()?;
    let graph =
        Graph::from_csr(offsets, neighbors).map_err(|e| corrupt(section::GRAPH, e.to_string()))?;
    if graph.num_edges() != meta.m {
        return Err(corrupt(section::GRAPH, "edge count disagrees with META"));
    }
    Ok(graph)
}

/// Decodes the `TAXONOMY` section payload, pinned against META's label
/// count.
pub fn decode_taxonomy_payload(payload: &[u8], meta: &SnapshotMeta) -> Result<Taxonomy> {
    let mut t = SectionReader::new(payload, section::TAXONOMY);
    let labels_len = t.usize64()?;
    if labels_len != meta.labels {
        return Err(corrupt(section::TAXONOMY, "label count disagrees with META"));
    }
    let parents = t.id_vec(labels_len, meta.narrow)?;
    let mut names = Vec::with_capacity(labels_len);
    for _ in 0..labels_len {
        let len = t.u32()? as usize;
        let raw = t.bytes(len)?;
        names.push(
            String::from_utf8(raw.to_vec())
                .map_err(|_| corrupt(section::TAXONOMY, "label name is not UTF-8"))?,
        );
    }
    t.finish()?;
    Taxonomy::from_parts(names, parents).map_err(|e| corrupt(section::TAXONOMY, e.to_string()))
}

/// Decodes the `CORES` section payload (structure only — the
/// `core ≤ degree` pin is [`pin_cores_against_graph`], split out so a
/// lazy loader can defer it to graph materialization).
pub fn decode_cores_payload(payload: &[u8], n: usize, narrow: bool) -> Result<Vec<u32>> {
    let mut c = SectionReader::new(payload, section::CORES);
    let count = c.usize64()?;
    if count != n {
        return Err(corrupt(section::CORES, "core count disagrees with the graph"));
    }
    let core = c.id_vec(count, narrow)?;
    c.finish()?;
    Ok(core)
}

/// A vertex's core number can never exceed its degree — the cheap
/// sanity bound that catches a cores section paired with the wrong
/// graph.
pub fn pin_cores_against_graph(core: &[u32], graph: &Graph) -> Result<()> {
    for (v, &k) in core.iter().enumerate() {
        let vid = VertexId::try_from(v)
            .map_err(|_| corrupt(section::CORES, "vertex count overflows u32"))?;
        if k as usize > graph.degree(vid) {
            return Err(corrupt(
                section::CORES,
                format!("core number {k} of vertex {v} exceeds its degree"),
            ));
        }
    }
    Ok(())
}

/// [`decode_snapshot`] with an explicit [`IndexDecode`] mode.
pub fn decode_snapshot_mode(
    file: &impl SectionSource,
    mode: IndexDecode,
) -> Result<SnapshotContents> {
    let require = |id: u32| file.section(id).ok_or(StoreError::MissingSection { section: id });

    let meta = decode_meta_payload(require(section::META)?)?;
    let SnapshotMeta { epoch, narrow, .. } = meta;
    let graph = decode_graph_payload(require(section::GRAPH)?, &meta)?;
    let n = graph.num_vertices();
    let tax = decode_taxonomy_payload(require(section::TAXONOMY)?, &meta)?;

    let profiles_payload = require(section::PROFILES)?;
    let profiles = if file.version() >= 3 {
        decode_profiles_chunked(profiles_payload, n, &tax, narrow)?
    } else {
        decode_profiles_flat(profiles_payload, n, &tax, narrow)?
    };

    let cores = match file.section(section::CORES) {
        None => None,
        Some(payload) => {
            let core = decode_cores_payload(payload, n, narrow)?;
            pin_cores_against_graph(&core, &graph)?;
            Some(core)
        }
    };

    let index = match file.section(section::INDEX) {
        Some(payload) if mode != IndexDecode::Skip => Some(match file.version() {
            1 => decode_index_v1(payload, n, &tax, &profiles, narrow)?,
            v => decode_index_v2(payload, n, tax.len(), &profiles, narrow, mode, v >= 3)?,
        }),
        _ => None,
    };

    Ok(SnapshotContents { epoch, graph, tax, profiles, cores, index })
}

/// Decodes the v1/v2 flat `PROFILES` layout.
fn decode_profiles_flat(
    payload: &[u8],
    n: usize,
    tax: &Taxonomy,
    narrow: bool,
) -> Result<Vec<PTree>> {
    let mut p = SectionReader::new(payload, section::PROFILES);
    let profile_count = p.usize64()?;
    if profile_count != n {
        return Err(corrupt(section::PROFILES, "profile count disagrees with the graph"));
    }
    let lens = p.u32_vec(profile_count)?;
    let total = p.usize64()?;
    if lens.iter().map(|&l| l as u64).sum::<u64>() != total as u64 {
        return Err(corrupt(section::PROFILES, "per-profile lengths disagree with the total"));
    }
    let flat = p.id_vec(total, narrow)?;
    p.finish()?;
    let mut profiles = Vec::with_capacity(profile_count);
    let mut loader = ProfileLoader::new(tax);
    parse_profile_run(&lens, &flat, tax, &mut loader, 0, &mut profiles)?;
    Ok(profiles)
}

/// Parses one lens/flat run into P-trees, appending to `out`.
/// `base` is the id of the run's first vertex (for error messages).
fn parse_profile_run(
    lens: &[u32],
    flat: &[u32],
    tax: &Taxonomy,
    loader: &mut ProfileLoader,
    base: usize,
    out: &mut Vec<PTree>,
) -> Result<()> {
    let mut rest = flat;
    for (i, &len) in lens.iter().enumerate() {
        // The sum-vs-total check upstream makes this splittable by
        // construction; the checked split keeps the decoder
        // structurally panic-free.
        let (nodes, tail) = rest
            .split_at_checked(len as usize)
            .ok_or_else(|| corrupt(section::PROFILES, "per-profile lengths overrun the data"))?;
        rest = tail;
        out.push(loader.ptree(tax, nodes.to_vec()).map_err(|_| {
            corrupt(
                section::PROFILES,
                format!("profile of vertex {} is not a valid P-tree", base + i),
            )
        })?);
    }
    Ok(())
}

/// The parsed header + directory of a v3 chunked `PROFILES` section:
/// everything a lazy loader needs before faulting in any chunk.
/// `data_base` is the byte offset of the data area within the section
/// payload; directory offsets are relative to it and tile it exactly
/// (validated here, so a `read_range` against a directory entry is
/// always in bounds).
#[derive(Debug, Clone)]
pub struct ProfileChunkDir {
    /// Vertex count.
    pub count: usize,
    /// Vertices per chunk (last chunk may be short).
    pub chunk_size: usize,
    /// Per chunk: `(data_off, data_len, xxh64)`.
    pub entries: Vec<(u64, u64, u64)>,
    /// Byte offset of the data area within the section payload.
    pub data_base: u64,
    /// Total data-area length in bytes.
    pub data_len: u64,
}

impl ProfileChunkDir {
    /// Parses and validates the header + directory prefix of a v3
    /// `PROFILES` payload. `prefix` needs to hold at least the first
    /// `24 + 24 × num_chunks` bytes; `section_len` is the full payload
    /// length (for the tiling check).
    pub fn parse(prefix: &[u8], n: usize, section_len: u64) -> Result<ProfileChunkDir> {
        let mut r = SectionReader::new(prefix, section::PROFILES);
        let count = r.usize64()?;
        if count != n {
            return Err(corrupt(section::PROFILES, "profile count disagrees with the graph"));
        }
        let chunk_size = r.usize64()?;
        // The writer always emits [`PROFILE_CHUNK`]; anything else is
        // damage. Pinning the exact value (not just non-zero) keeps
        // every directory byte observable under the lazy path, where
        // the whole-section checksum is never computed.
        if chunk_size != PROFILE_CHUNK {
            return Err(corrupt(section::PROFILES, "unexpected profile chunk size"));
        }
        let num_chunks = r.usize64()?;
        if num_chunks != count.div_ceil(chunk_size) {
            return Err(corrupt(section::PROFILES, "chunk count disagrees with the vertex count"));
        }
        let data_base = (24u64).wrapping_add(24 * num_chunks as u64);
        let Some(data_len) = section_len.checked_sub(data_base) else {
            return Err(corrupt(section::PROFILES, "chunk directory overruns the section"));
        };
        let mut entries = Vec::with_capacity(num_chunks);
        let mut expect_off = 0u64;
        for _ in 0..num_chunks {
            let off = r.u64()?;
            let len = r.u64()?;
            let sum = r.u64()?;
            if off != expect_off {
                return Err(corrupt(section::PROFILES, "profile chunks do not tile"));
            }
            expect_off = off
                .checked_add(len)
                .ok_or_else(|| corrupt(section::PROFILES, "profile chunk length overflows"))?;
            entries.push((off, len, sum));
        }
        if expect_off != data_len {
            return Err(corrupt(section::PROFILES, "chunk directory does not cover the data area"));
        }
        Ok(ProfileChunkDir { count, chunk_size, entries, data_base, data_len })
    }

    /// The number of vertices chunk `i` holds.
    pub fn chunk_vertices(&self, i: usize) -> usize {
        let start = i.saturating_mul(self.chunk_size);
        self.count.saturating_sub(start).min(self.chunk_size)
    }
}

/// Verifies and parses one v3 profile chunk's bytes into P-trees.
/// `expect` is the vertex count of the chunk, `base` its first vertex.
pub fn parse_profile_chunk(
    bytes: &[u8],
    chunk_index: u64,
    stored_sum: u64,
    expect: usize,
    base: usize,
    tax: &Taxonomy,
    narrow: bool,
) -> Result<Vec<PTree>> {
    let sum = crate::format::xxh64(bytes, profile_chunk_seed(chunk_index));
    if sum != stored_sum {
        return Err(StoreError::ChecksumMismatch {
            section: section::PROFILES,
            expected: stored_sum,
            actual: sum,
        });
    }
    let mut r = SectionReader::new(bytes, section::PROFILES);
    let lens = r.u32_vec(expect)?;
    let total = r.usize64()?;
    if lens.iter().map(|&l| l as u64).sum::<u64>() != total as u64 {
        return Err(corrupt(section::PROFILES, "per-profile lengths disagree with the total"));
    }
    let flat = r.id_vec(total, narrow)?;
    r.finish()?;
    let mut out = Vec::with_capacity(expect);
    let mut loader = ProfileLoader::new(tax);
    parse_profile_run(&lens, &flat, tax, &mut loader, base, &mut out)?;
    Ok(out)
}

/// Decodes the v3 chunked `PROFILES` layout eagerly (every chunk
/// verified and parsed).
fn decode_profiles_chunked(
    payload: &[u8],
    n: usize,
    tax: &Taxonomy,
    narrow: bool,
) -> Result<Vec<PTree>> {
    let dir = ProfileChunkDir::parse(payload, n, payload.len() as u64)?;
    let data = payload
        .get(dir.data_base as usize..)
        .ok_or_else(|| corrupt(section::PROFILES, "data area out of bounds"))?;
    let mut profiles = Vec::with_capacity(n);
    for (i, &(off, len, sum)) in dir.entries.iter().enumerate() {
        let end = off
            .checked_add(len)
            .ok_or_else(|| corrupt(section::PROFILES, "profile chunk extent overflows"))?;
        let bytes = data
            .get(off as usize..end as usize)
            .ok_or_else(|| corrupt(section::PROFILES, "profile chunk out of bounds"))?;
        let base = i * dir.chunk_size;
        let parsed =
            parse_profile_chunk(bytes, i as u64, sum, dir.chunk_vertices(i), base, tax, narrow)?;
        profiles.extend(parsed);
    }
    Ok(profiles)
}

/// Shared head-map block of both index layouts.
fn decode_head_map(
    r: &mut SectionReader<'_>,
    n: usize,
    num_labels: usize,
    narrow: bool,
) -> Result<Vec<Vec<LabelId>>> {
    let head_lens = r.u32_vec(n)?;
    let total = r.usize64()?;
    if head_lens.iter().map(|&l| l as u64).sum::<u64>() != total as u64 {
        return Err(corrupt(section::INDEX, "headMap lengths disagree with the total"));
    }
    let flat_heads = r.id_vec(total, narrow)?;
    if flat_heads.iter().any(|&l| l as usize >= num_labels) {
        return Err(corrupt(section::INDEX, "headMap references a missing label"));
    }
    let mut head_map = Vec::with_capacity(n);
    let mut rest = flat_heads.as_slice();
    for &len in &head_lens {
        let (heads, tail) = rest
            .split_at_checked(len as usize)
            .ok_or_else(|| corrupt(section::INDEX, "headMap lengths overrun the data"))?;
        rest = tail;
        head_map.push(heads.to_vec());
    }
    Ok(head_map)
}

/// Validates one decoded shard payload against the member table and
/// structural invariants.
fn validated_shard(
    flat: ClTreeFlat,
    label: LabelId,
    members: &[VertexId],
    n: usize,
) -> Result<ClTree> {
    let cl = ClTree::from_flat(flat).map_err(|e| corrupt(section::INDEX, e.to_string()))?;
    if cl.members().is_empty() {
        return Err(corrupt(section::INDEX, format!("label {label} is populated but empty")));
    }
    if cl.members().last().is_some_and(|&v| v as usize >= n) {
        return Err(corrupt(
            section::INDEX,
            format!("label {label} indexes out-of-range vertices"),
        ));
    }
    if cl.members() != members {
        return Err(corrupt(
            section::INDEX,
            format!("shard {label} member list disagrees with the member table"),
        ));
    }
    Ok(cl)
}

/// The v1 monolithic layout: every populated label's CL-tree, decoded
/// eagerly; the member table is derived from the shards themselves.
/// The wire head map is pin-checked against the profile section (the
/// v1 proof that the index belongs to this snapshot) and then dropped
/// — the sharded runtime restores `T(v)` from the profiles directly.
fn decode_index_v1(
    payload: &[u8],
    n: usize,
    tax: &Taxonomy,
    profiles: &[PTree],
    narrow: bool,
) -> Result<DecodedIndex> {
    let num_labels = tax.len();
    let mut r = SectionReader::new(payload, section::INDEX);
    let idx_n = r.usize64()?;
    let idx_labels = r.usize64()?;
    if idx_n != n || idx_labels != num_labels {
        return Err(corrupt(section::INDEX, "index dimensions disagree with graph/taxonomy"));
    }
    let head_map = decode_head_map(&mut r, n, num_labels, narrow)?;
    // The headMap must restore exactly the profiles section's
    // P-trees. Restoration is upward closure, so
    // `closure(head(v)) == T(v)` iff every head is in T(v) (closure ⊆
    // T(v) follows, T(v) being ancestor-closed) and the closure's size
    // equals |T(v)|. Counted with one reusable stamp array: no
    // per-vertex allocation or sort.
    let mut stamp = vec![usize::MAX; num_labels];
    for (v, (profile, heads)) in profiles.iter().zip(&head_map).enumerate() {
        let mut closure_size = 0usize;
        for &h in heads {
            if !profile.contains(h) {
                return Err(corrupt(
                    section::INDEX,
                    format!("headMap of vertex {v} escapes its profile"),
                ));
            }
            let mut cur = h;
            loop {
                match stamp.get_mut(cur as usize) {
                    Some(s) if *s != v => {
                        *s = v;
                        closure_size += 1;
                    }
                    Some(_) => break,
                    None => {
                        return Err(corrupt(
                            section::INDEX,
                            format!("headMap of vertex {v} references a missing label"),
                        ))
                    }
                }
                if cur == Taxonomy::ROOT {
                    break;
                }
                cur = tax.parent(cur);
            }
        }
        if closure_size != profile.len() {
            return Err(corrupt(
                section::INDEX,
                format!("headMap of vertex {v} does not restore its profile"),
            ));
        }
    }
    drop(head_map);
    let node_count = r.usize64()?;
    let mut members_of: Vec<Vec<VertexId>> = vec![Vec::new(); num_labels];
    let mut shards: Vec<(LabelId, ClTree)> = Vec::with_capacity(node_count.min(num_labels));
    let mut prev: Option<LabelId> = None;
    for _ in 0..node_count {
        let label = r.u32()?;
        // `get_mut` is the bounds check: a label past the taxonomy has no
        // member-table slot.
        let Some(slot) = members_of.get_mut(label as usize) else {
            return Err(corrupt(section::INDEX, format!("populated label {label} out of range")));
        };
        if prev.is_some_and(|p| p >= label) {
            return Err(corrupt(section::INDEX, "populated labels not strictly ascending"));
        }
        prev = Some(label);
        let flat = decode_cl(&mut r, narrow)?;
        let members = flat.members.clone();
        let cl = validated_shard(flat, label, &members, n)?;
        *slot = members;
        shards.push((label, cl));
    }
    r.finish()?;
    Ok(DecodedIndex { members_of, shards: DecodedShards::Resident(shards) })
}

/// The v2/v3 sharded layout: member table + shard directory + blob.
/// The directory is always validated eagerly; payload decode is eager
/// or deferred per `mode`. With `with_sums` (v3) per-label member
/// checksums follow the length table and are verified against the raw
/// member-run bytes.
#[allow(clippy::too_many_arguments)]
fn decode_index_v2(
    payload: &[u8],
    n: usize,
    num_labels: usize,
    profiles: &[PTree],
    narrow: bool,
    mode: IndexDecode,
    with_sums: bool,
) -> Result<DecodedIndex> {
    let mut r = SectionReader::new(payload, section::INDEX);
    let idx_n = r.usize64()?;
    let idx_labels = r.usize64()?;
    if idx_n != n || idx_labels != num_labels {
        return Err(corrupt(section::INDEX, "index dimensions disagree with graph/taxonomy"));
    }
    let member_lens = r.u32_vec(num_labels)?;
    let member_sums = if with_sums {
        let mut sums = Vec::with_capacity(num_labels);
        for _ in 0..num_labels {
            sums.push(r.u64()?);
        }
        Some(sums)
    } else {
        None
    };
    let total = r.usize64()?;
    if member_lens.iter().map(|&l| l as u64).sum::<u64>() != total as u64 {
        return Err(corrupt(section::INDEX, "member-table lengths disagree with the total"));
    }
    let id_width: u64 = if narrow { 2 } else { 4 };
    // Byte offset of the member runs within the payload, for the
    // per-label sum verification below (the reader is positioned there
    // right now).
    let members_base =
        (8 + 8 + 4 * num_labels as u64) + if with_sums { 8 * num_labels as u64 } else { 0 } + 8;
    let flat_members = r.id_vec(total, narrow)?;
    let mut members_of = Vec::with_capacity(num_labels);
    let mut rest = flat_members.as_slice();
    let mut run_off = 0u64;
    for (label, &len) in member_lens.iter().enumerate() {
        let (members, tail) = rest
            .split_at_checked(len as usize)
            .ok_or_else(|| corrupt(section::INDEX, "member-table lengths overrun the data"))?;
        rest = tail;
        if members.windows(2).any(|w| w.first() >= w.last()) {
            return Err(corrupt(section::INDEX, format!("members of label {label} unsorted")));
        }
        if members.last().is_some_and(|&v| v as usize >= n) {
            return Err(corrupt(
                section::INDEX,
                format!("label {label} indexes out-of-range vertices"),
            ));
        }
        if let Some(sums) = &member_sums {
            let run_len = u64::from(len) * id_width;
            let start = members_base + run_off;
            let raw = start
                .checked_add(run_len)
                .and_then(|end| payload.get(start as usize..end as usize))
                .ok_or_else(|| corrupt(section::INDEX, "member run out of bounds"))?;
            let stored = sums.get(label).copied().unwrap_or(0);
            let label_id = LabelId::try_from(label)
                .map_err(|_| corrupt(section::INDEX, "label count overflows u32"))?;
            let actual = crate::format::xxh64(raw, member_sum_seed(label_id));
            if actual != stored {
                return Err(StoreError::ChecksumMismatch {
                    section: section::INDEX,
                    expected: stored,
                    actual,
                });
            }
            run_off += run_len;
        }
        members_of.push(members.to_vec());
    }
    // Cross-section pin: the member table must be exactly the
    // carrier sets of the PROFILES section. Every listed member must
    // carry the label, and the grand totals must agree — since member
    // lists are strictly sorted (no duplicates), containment plus
    // equal counts forces equality. This is the v2 counterpart of the
    // v1 headMap↔profiles pin.
    let carried_total: usize = profiles.iter().map(PTree::len).sum();
    if total != carried_total {
        return Err(corrupt(
            section::INDEX,
            format!("member table lists {total} carriers, profiles imply {carried_total}"),
        ));
    }
    for (label, members) in members_of.iter().enumerate() {
        let label = LabelId::try_from(label)
            .map_err(|_| corrupt(section::INDEX, "label count overflows u32"))?;
        for &v in members {
            let carries = profiles.get(v as usize).is_some_and(|p| p.contains(label));
            if !carries {
                return Err(corrupt(
                    section::INDEX,
                    format!("vertex {v} listed under label {label} it does not carry"),
                ));
            }
        }
    }
    // The shard directory: labels strictly ascending and populated,
    // payload runs exactly tiling the blob.
    let shard_count = r.usize64()?;
    if shard_count > num_labels {
        return Err(corrupt(section::INDEX, "more shards than labels"));
    }
    let mut directory: Vec<(LabelId, usize, usize)> = Vec::with_capacity(shard_count);
    let mut prev: Option<LabelId> = None;
    let mut expect_off = 0u64;
    for _ in 0..shard_count {
        let label = r.u32()?;
        let off = r.u64()?;
        let len = r.u64()?;
        if with_sums {
            // The per-shard payload checksum serves the file-backed lazy
            // loader (which range-reads the blob unverified); here the
            // container checksum already proved these bytes.
            let _shard_sum = r.u64()?;
        }
        let Some(shard_members) = members_of.get(label as usize) else {
            return Err(corrupt(section::INDEX, format!("shard label {label} out of range")));
        };
        if prev.is_some_and(|p| p >= label) {
            return Err(corrupt(section::INDEX, "shard labels not strictly ascending"));
        }
        prev = Some(label);
        if shard_members.is_empty() {
            return Err(corrupt(section::INDEX, format!("shard {label} has no members")));
        }
        if off != expect_off {
            return Err(corrupt(section::INDEX, format!("shard {label} payload does not tile")));
        }
        expect_off = off
            .checked_add(len)
            .ok_or_else(|| corrupt(section::INDEX, "shard payload length overflows"))?;
        let (off, len) = (
            usize::try_from(off)
                .map_err(|_| corrupt(section::INDEX, "shard offset exceeds address space"))?,
            usize::try_from(len)
                .map_err(|_| corrupt(section::INDEX, "shard length exceeds address space"))?,
        );
        directory.push((label, off, len));
    }
    let blob_len = r.usize64()?;
    if expect_off != blob_len as u64 {
        return Err(corrupt(section::INDEX, "shard directory does not cover the blob"));
    }
    let blob = r.bytes(blob_len)?;
    r.finish()?;
    let shards = match mode {
        IndexDecode::Eager => {
            let mut out = Vec::with_capacity(directory.len());
            for (label, off, len) in directory {
                // The directory tiling check bounds every run; `get`
                // keeps the decoder structurally panic-free.
                let payload = off
                    .checked_add(len)
                    .and_then(|end| blob.get(off..end))
                    .ok_or_else(|| corrupt(section::INDEX, "shard payload out of bounds"))?;
                let mut sr = SectionReader::new(payload, section::INDEX);
                let flat = decode_cl(&mut sr, narrow)?;
                sr.finish()?;
                let empty: &[VertexId] = &[];
                let members = members_of.get(label as usize).map_or(empty, Vec::as_slice);
                let cl = validated_shard(flat, label, members, n)?;
                out.push((label, cl));
            }
            DecodedShards::Resident(out)
        }
        IndexDecode::Partial => DecodedShards::Lazy(Arc::new(LazyShardStore {
            blob: blob.to_vec(),
            entries: directory,
            narrow,
        })),
        // Unreachable by construction (`decode_snapshot_mode` never routes
        // Skip here), but a typed error is the contract of this module.
        IndexDecode::Skip => {
            return Err(corrupt(section::INDEX, "internal: Skip mode reached the index decoder"))
        }
    };
    Ok(DecodedIndex { members_of, shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FORMAT_VERSION;
    use pcs_graph::core::CoreDecomposition;

    fn tiny() -> (Graph, Taxonomy, Vec<PTree>) {
        let mut tax = Taxonomy::new("r");
        let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
        let b = tax.add_child(a, "b").unwrap();
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let profiles = vec![
            PTree::from_labels(&tax, [a]).unwrap(),
            PTree::from_labels(&tax, [b]).unwrap(),
            PTree::from_labels(&tax, [a, b]).unwrap(),
            PTree::root_only(),
            PTree::root_only(), // isolated vertex 4
        ];
        (g, tax, profiles)
    }

    fn sharded(g: &Graph, tax: &Taxonomy, profiles: &[PTree]) -> ShardedCpIndex {
        let idx =
            ShardedCpIndex::build(Arc::new(g.clone()), tax, Arc::new(profiles.to_vec())).unwrap();
        idx.materialize_all(1);
        idx
    }

    fn assert_index_matches(decoded: &DecodedIndex, idx: &ShardedCpIndex, tax: &Taxonomy) {
        for label in 0..tax.len() as u32 {
            assert_eq!(
                decoded.members_of[label as usize],
                idx.vertices_with_label(label),
                "members of {label}"
            );
        }
        let DecodedShards::Resident(shards) = &decoded.shards else {
            panic!("eager decode yields resident shards");
        };
        assert_eq!(shards.len(), idx.resident_shards());
        for (label, cl) in shards {
            let shard = idx.shard_if_resident(*label).expect("persisted shard resident");
            assert_eq!(cl.to_flat(), shard.cl.to_flat(), "shard {label}");
        }
    }

    #[test]
    fn full_round_trip_through_bytes() {
        let (g, tax, profiles) = tiny();
        let cores = CoreDecomposition::new(&g);
        let index = sharded(&g, &tax, &profiles);
        let file =
            encode_snapshot(42, &g, &tax, &profiles, Some(cores.core_numbers()), Some(&index));
        let back = SnapshotFile::from_bytes(&file.to_bytes()).expect("container validates");
        assert_eq!(back.version(), FORMAT_VERSION);
        let contents = decode_snapshot(&back).expect("decodes");
        assert_eq!(contents.epoch, 42);
        assert_eq!(&contents.graph, &g);
        assert_eq!(contents.tax.label_names(), tax.label_names());
        assert_eq!(contents.tax.parents(), tax.parents());
        assert_eq!(contents.profiles, profiles);
        assert_eq!(contents.cores.as_deref(), Some(cores.core_numbers()));
        assert_index_matches(&contents.index.expect("index section present"), &index, &tax);
    }

    /// A partially resident index persists only its resident shards;
    /// the member table still covers every populated label.
    #[test]
    fn partial_residency_round_trips() {
        let (g, tax, profiles) = tiny();
        let index =
            ShardedCpIndex::build(Arc::new(g.clone()), &tax, Arc::new(profiles.clone())).unwrap();
        let a = tax.id_of("a").unwrap();
        assert!(index.get_ref(0, 0, a).is_some(), "materialize exactly one shard");
        assert_eq!(index.resident_shards(), 1);
        let file = encode_snapshot(0, &g, &tax, &profiles, None, Some(&index));
        let contents = decode_snapshot(&file).unwrap();
        let decoded = contents.index.unwrap();
        assert_index_matches(&decoded, &index, &tax);
        assert_eq!(decoded.members_of[0].len(), 5, "root members present without a shard");
    }

    /// Partial load defers shard payloads; each decodes on first touch
    /// and matches the eager decode.
    #[test]
    fn lazy_decode_matches_eager() {
        let (g, tax, profiles) = tiny();
        let index = sharded(&g, &tax, &profiles);
        let bytes = encode_snapshot(0, &g, &tax, &profiles, None, Some(&index)).to_bytes();
        let eager = decode_snapshot_bytes(&bytes).unwrap().index.unwrap();
        let partial =
            decode_snapshot_bytes_mode(&bytes, IndexDecode::Partial).unwrap().index.unwrap();
        let DecodedShards::Resident(eager_shards) = &eager.shards else { panic!() };
        let DecodedShards::Lazy(store) = &partial.shards else {
            panic!("partial decode keeps shards lazy");
        };
        assert_eq!(store.labels().count(), eager_shards.len());
        for (label, cl) in eager_shards {
            let lazy = store.decode(*label).unwrap().expect("persisted shard decodes");
            assert_eq!(lazy.to_flat(), cl.to_flat(), "shard {label}");
        }
        assert!(store.decode(999).unwrap().is_none(), "absent labels decode to None");
    }

    /// Graphs too large for two-byte ids take the wide path; both
    /// widths must round-trip.
    #[test]
    fn wide_mode_round_trips() {
        let n = u16::MAX as usize + 10;
        let mut tax = Taxonomy::new("r");
        let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
        let edges: Vec<(u32, u32)> = (0..200u32).map(|i| (i, u16::MAX as u32 + i % 10)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut profiles = vec![PTree::root_only(); n];
        profiles[n - 1] = PTree::from_labels(&tax, [a]).unwrap();
        let cores = CoreDecomposition::new(&g);
        let index = sharded(&g, &tax, &profiles);
        let file =
            encode_snapshot(7, &g, &tax, &profiles, Some(cores.core_numbers()), Some(&index));
        let contents =
            decode_snapshot(&SnapshotFile::from_bytes(&file.to_bytes()).unwrap()).unwrap();
        assert_eq!(&contents.graph, &g);
        assert_eq!(contents.profiles, profiles);
        assert_index_matches(&contents.index.unwrap(), &index, &tax);
    }

    /// The retained v1 writer produces files this reader still decodes
    /// into the same parts.
    #[test]
    fn v1_files_still_decode() {
        let (g, tax, profiles) = tiny();
        let cores = CoreDecomposition::new(&g);
        let mono = CpTree::build(&g, &tax, &profiles).unwrap();
        let file =
            encode_snapshot_v1(9, &g, &tax, &profiles, Some(cores.core_numbers()), Some(&mono));
        assert_eq!(file.version(), 1);
        let bytes = file.to_bytes();
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.version(), 1);
        let contents = decode_snapshot(&back).unwrap();
        assert_eq!(contents.epoch, 9);
        assert_eq!(&contents.graph, &g);
        let decoded = contents.index.unwrap();
        let DecodedShards::Resident(shards) = &decoded.shards else { panic!() };
        assert_eq!(shards.len(), mono.num_populated_labels());
        for (label, cl) in shards {
            assert_eq!(cl.to_flat(), mono.node(*label).unwrap().cl.to_flat(), "label {label}");
            assert_eq!(
                decoded.members_of[*label as usize],
                mono.vertices_with_label(*label),
                "members {label}"
            );
        }
    }

    #[test]
    fn optional_sections_really_optional() {
        let (g, tax, profiles) = tiny();
        let file = encode_snapshot(0, &g, &tax, &profiles, None, None);
        let contents = decode_snapshot(&file).unwrap();
        assert!(contents.cores.is_none());
        assert!(contents.index.is_none());
    }

    #[test]
    fn index_decode_can_be_skipped() {
        let (g, tax, profiles) = tiny();
        let index = sharded(&g, &tax, &profiles);
        let file = encode_snapshot(0, &g, &tax, &profiles, None, Some(&index));
        let contents = decode_snapshot_with(&file, false).unwrap();
        assert!(contents.index.is_none(), "INDEX section present but not wanted");
        assert_eq!(&contents.graph, &g, "the rest of the snapshot still decodes");
    }

    #[test]
    fn missing_required_section_is_typed() {
        let (g, tax, profiles) = tiny();
        let full = encode_snapshot(0, &g, &tax, &profiles, None, None);
        for drop_id in [section::META, section::GRAPH, section::TAXONOMY, section::PROFILES] {
            let mut partial = SnapshotFile::new();
            for id in full.section_ids() {
                if id != drop_id {
                    partial.push_section(id, full.section(id).unwrap().to_vec());
                }
            }
            assert_eq!(
                decode_snapshot(&partial).unwrap_err(),
                StoreError::MissingSection { section: drop_id }
            );
        }
    }

    #[test]
    fn cross_section_disagreement_is_corrupt() {
        let (g, tax, profiles) = tiny();
        // Cores from a *different* (denser) graph exceed degrees here.
        let other = Graph::from_edges(
            5,
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
        .unwrap();
        let wrong_cores = CoreDecomposition::new(&other);
        let file = encode_snapshot(0, &g, &tax, &profiles, Some(wrong_cores.core_numbers()), None);
        assert!(matches!(
            decode_snapshot(&file).unwrap_err(),
            StoreError::Corrupt { section: section::CORES, .. }
        ));
    }
}
