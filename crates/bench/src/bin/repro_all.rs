//! Runs the complete paper reproduction in one go (with reduced query
//! counts so it finishes in minutes). Equivalent to invoking each
//! table/figure binary in sequence; see DESIGN.md §4 for the map.
//!
//! ```text
//! cargo run -p pcs-bench --release --bin repro_all -- --queries 30
//! ```

use std::process::Command;

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table2_datasets",
        "table3_locations",
        "case_study",
        "fig09_cps_ldr",
        "fig10_commnum_cpf",
        "fig11_f1",
        "fig12_metrics",
        "fig13_index_scalability",
        "fig14_query_efficiency",
    ];
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe dir");
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let status = Command::new(dir.join(bin))
            .args(&passthrough)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(status.code().unwrap_or(1));
        }
    }
    println!("\nAll paper experiments completed.");
}
