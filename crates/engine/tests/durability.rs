//! Crash-fault matrix for the WAL-backed durable engine.
//!
//! The contract under test (ISSUE 8): for every kill point on the
//! log → fsync → publish pipeline, and for every torn / truncated /
//! bit-flipped final record, recovery yields either a typed error or a
//! **prefix-consistent** engine — one whose cores, profiles, and
//! answers are set-equal to a from-scratch engine fed exactly the
//! recovered prefix of batches. Never a panic, hang, or wrong answer.

use pcs_engine::{
    BuildError, Error, PcsEngine, QueryRequest, UpdateBatch, UpdateError, WalOptions,
};
use pcs_graph::Graph;
use pcs_ptree::{PTree, Taxonomy};
use pcs_store::faults;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Two triangles sharing vertex 0 plus an isolated vertex 5; labels
/// `a`, `b` under the root.
fn fixture() -> (Graph, Taxonomy, Vec<PTree>) {
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(Taxonomy::ROOT, "b").unwrap();
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)]).unwrap();
    let profiles = vec![
        PTree::from_labels(&tax, [a, b]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [a]).unwrap(),
    ];
    (g, tax, profiles)
}

/// A deterministic stream of batches, each *effective* on the state
/// left by its predecessors — so any prefix replays cleanly and maps
/// 1:1 onto WAL epochs (batch `i` publishes epoch `i + 1`).
fn scripted_batches(tax: &Taxonomy) -> Vec<UpdateBatch> {
    let a = tax.id_of("a").unwrap();
    let b = tax.id_of("b").unwrap();
    vec![
        UpdateBatch::new().add_edge(5, 1),
        UpdateBatch::new().add_edge(5, 2),
        UpdateBatch::new().set_profile(3, PTree::from_labels(tax, [a]).unwrap()),
        UpdateBatch::new().remove_edge(0, 3),
        UpdateBatch::new().add_edge(2, 3),
        UpdateBatch::new().set_profile(5, PTree::from_labels(tax, [a, b]).unwrap()),
        UpdateBatch::new().remove_edge(5, 1),
        UpdateBatch::new().add_edge(1, 3),
    ]
}

fn durable_engine(dir: &Path, opts: WalOptions) -> PcsEngine {
    let (g, tax, profiles) = fixture();
    PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .durable(dir)
        .wal_options(opts)
        .build()
        .unwrap()
}

/// A from-scratch, in-memory engine fed the first `prefix` scripted
/// batches — the ground truth a recovered engine must equal.
fn reference_engine(prefix: usize) -> PcsEngine {
    let (g, tax, profiles) = fixture();
    let batches = scripted_batches(&tax);
    let engine = PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build().unwrap();
    for batch in batches.iter().take(prefix) {
        engine.apply(batch).unwrap();
    }
    engine
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pcs-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Set-equality of everything a recovered engine serves: profiles,
/// core numbers, and the k=2 community answer from every vertex.
/// (Epochs are asserted separately where they matter.)
fn assert_equivalent(got: &PcsEngine, want: &PcsEngine, context: &str) {
    let gs = got.snapshot();
    let ws = want.snapshot();
    assert_eq!(gs.profiles(), ws.profiles(), "{context}: profiles diverge");
    assert_eq!(
        gs.cores().core_numbers(),
        ws.cores().core_numbers(),
        "{context}: core numbers diverge"
    );
    for v in 0..gs.graph().num_vertices() as u32 {
        let req = QueryRequest::vertex(v).k(2);
        let g_comms: Vec<Vec<u32>> =
            got.query(&req).unwrap().communities().iter().map(|c| c.vertices.clone()).collect();
        let w_comms: Vec<Vec<u32>> =
            want.query(&req).unwrap().communities().iter().map(|c| c.vertices.clone()).collect();
        assert_eq!(g_comms, w_comms, "{context}: answers diverge at vertex {v}");
    }
}

#[test]
fn durable_build_apply_reopen_roundtrip() {
    let dir = tmp_dir("roundtrip");
    let engine = durable_engine(&dir, WalOptions::default());
    assert_eq!(engine.durable_epoch(), Some(0));
    let batches = scripted_batches(engine.taxonomy());
    for (i, batch) in batches.iter().enumerate() {
        let report = engine.apply(batch).unwrap();
        assert_eq!(report.epoch, i as u64 + 1);
        let durable = report.durable_epoch.expect("durable engine reports durable_epoch");
        assert!(
            durable >= report.epoch,
            "acknowledged epoch {} must be fsynced (durable_epoch {durable})",
            report.epoch
        );
    }
    assert_eq!(engine.epoch(), 8);
    assert_eq!(engine.durable_epoch(), Some(8));
    drop(engine);

    let reopened = PcsEngine::builder().durable(&dir).open().unwrap();
    assert_eq!(reopened.epoch(), 8, "recovery resumes at the exact pre-crash epoch");
    assert_eq!(reopened.durable_epoch(), Some(8));
    assert_equivalent(&reopened, &reference_engine(8), "reopen");
    // The recovered engine stays fully mutable and durable.
    let report = reopened.apply(&UpdateBatch::new().add_edge(4, 5)).unwrap();
    assert_eq!(report.epoch, 9);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_build_into_nonempty_dir_is_rejected() {
    let dir = tmp_dir("nonempty");
    drop(durable_engine(&dir, WalOptions::default()));
    let (g, tax, profiles) = fixture();
    let err = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .durable(&dir)
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::Build(BuildError::DurableDirNotEmpty { .. })), "got {err:?}");
    // The state the builder refused to shadow is still recoverable.
    assert_eq!(PcsEngine::builder().durable(&dir).open().unwrap().epoch(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole matrix: one kill point per pipeline stage. After the
/// injected crash the engine must fail-stop (typed errors, no panic,
/// no hang), and reopening the directory must recover a prefix of the
/// acknowledged epochs that is set-equal to a from-scratch engine fed
/// the same prefix.
#[test]
fn kill_point_matrix_recovers_prefix_consistent() {
    const PRE: usize = 3; // batches applied (and acked) before the crash
    let kill_points: &[(&str, bool)] = &[
        // (point, record may survive the simulated crash)
        ("wal.append", false),
        ("wal.torn_append", false),
        ("wal.after_append", true),
        ("wal.before_fsync", true),
        ("wal.after_fsync", true),
        ("engine.before_publish", true),
    ];
    for &(point, may_survive) in kill_points {
        let dir = tmp_dir(&format!("kill-{}", point.replace('.', "-")));
        let engine = durable_engine(&dir, WalOptions::default());
        let batches = scripted_batches(engine.taxonomy());
        for batch in batches.iter().take(PRE) {
            engine.apply(batch).unwrap();
        }
        faults::arm(point);
        let err = engine.apply(&batches[PRE]).expect_err(point);
        assert!(matches!(err, Error::Store(_)), "{point}: expected a store error, got {err:?}");
        assert_eq!(faults::armed_count(), 0, "{point}: kill point was never reached");
        // Fail-stop: every later apply errors; the published prefix
        // keeps serving.
        let err2 = engine.apply(&batches[PRE + 1]).expect_err(point);
        assert!(matches!(err2, Error::Store(_)), "{point}: post-crash apply must stay typed");
        assert!(engine.epoch() <= PRE as u64 + 1, "{point}: reader-visible epoch ran ahead");
        assert_equivalent(
            &engine,
            &reference_engine(engine.epoch() as usize),
            &format!("{point}: published prefix"),
        );
        drop(engine);

        let recovered = PcsEngine::builder().durable(&dir).open().unwrap();
        let e = recovered.epoch() as usize;
        if may_survive {
            // The frame reached the file before the simulated death, so
            // recovery may legitimately resurface it — but never more.
            assert!(
                (PRE..=PRE + 1).contains(&e),
                "{point}: recovered epoch {e}, expected {PRE} or {}",
                PRE + 1
            );
        } else {
            assert_eq!(e, PRE, "{point}: nothing past epoch {PRE} was written");
        }
        assert_equivalent(&recovered, &reference_engine(e), point);
        // Recovery restores full service: the durable pipeline accepts
        // the remaining batches.
        for batch in batches.iter().skip(e) {
            recovered.apply(batch).unwrap();
        }
        assert_eq!(recovered.epoch(), batches.len() as u64);
        assert_equivalent(&recovered, &reference_engine(batches.len()), point);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Torn-write corruption matrix on the log's final record: truncations
/// of every flavor (mid-payload, mid-header) and bit flips. Each must
/// recover exactly the 7-batch prefix — the final record is damaged,
/// everything before it is intact — and never panic or mis-answer.
#[test]
fn damaged_final_record_recovers_the_prefix() {
    let dir = tmp_dir("damaged-tail");
    let engine = durable_engine(&dir, WalOptions::default());
    let batches = scripted_batches(engine.taxonomy());
    for batch in &batches {
        engine.apply(batch).unwrap();
    }
    drop(engine);
    let wal_dir = dir.join(pcs_engine::WAL_DIR);
    let segments = pcs_store::list_segments(&wal_dir).unwrap();
    let last_seg = segments.last().unwrap().path.clone();
    let pristine = std::fs::read(&last_seg).unwrap();

    // The final record frames batch 8 (`add_edge`): 20-byte header +
    // 16-byte payload. Damage strictly inside those 36 bytes.
    type Damage = fn(&mut Vec<u8>);
    let cases: &[(&str, Damage)] = &[
        ("truncate 1 byte (checksum torn)", |b| b.truncate(b.len() - 1)),
        ("truncate 7 bytes (mid payload)", |b| b.truncate(b.len() - 7)),
        ("truncate 21 bytes (mid header)", |b| b.truncate(b.len() - 21)),
        ("bit flip in final payload", |b| {
            let i = b.len() - 1;
            b[i] ^= 0x40;
        }),
        ("bit flip in final length field", |b| {
            let i = b.len() - 36;
            b[i] ^= 0x04;
        }),
    ];
    for (name, damage) in cases {
        let mut bytes = pristine.clone();
        damage(&mut bytes);
        std::fs::write(&last_seg, &bytes).unwrap();
        let recovered = PcsEngine::builder().durable(&dir).open().unwrap();
        assert_eq!(recovered.epoch(), 7, "{name}: must recover exactly the undamaged prefix");
        assert_equivalent(&recovered, &reference_engine(7), name);
        drop(recovered);
        // Recovery *truncated* the damaged tail, so put the pristine
        // segment back for the next case. (This also re-checks that
        // truncation only ever removes the damaged suffix.)
        std::fs::write(&last_seg, &pristine).unwrap();
    }
    // And with the pristine bytes restored, the full log is intact.
    let recovered = PcsEngine::builder().durable(&dir).open().unwrap();
    assert_eq!(recovered.epoch(), 8);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: the snapshot-save kill points. A death before the
/// rename must leave the previous checkpoint untouched; a failed
/// checkpoint must not poison the running engine or the log.
#[test]
fn snapshot_kill_points_keep_previous_checkpoint() {
    let dir = tmp_dir("snap-kill");
    let engine = durable_engine(&dir, WalOptions::default());
    let batches = scripted_batches(engine.taxonomy());
    for batch in batches.iter().take(2) {
        engine.apply(batch).unwrap();
    }
    for point in ["snapshot.before_rename", "snapshot.after_rename"] {
        faults::arm(point);
        let err = engine.checkpoint().expect_err(point);
        assert!(matches!(err, Error::Store(_)), "{point}: got {err:?}");
        assert_eq!(faults::armed_count(), 0, "{point}: kill point was never reached");
    }
    // The failed checkpoints neither advanced nor corrupted anything:
    // the engine still applies durably, and recovery still works from
    // the epoch-0 snapshot + full log tail.
    engine.apply(&batches[2]).unwrap();
    assert_eq!(engine.epoch(), 3);
    drop(engine);
    let recovered = PcsEngine::builder().durable(&dir).open().unwrap();
    assert_eq!(recovered.epoch(), 3);
    assert_equivalent(&recovered, &reference_engine(3), "after failed checkpoints");
    // A clean checkpoint now succeeds and is itself recoverable.
    assert_eq!(recovered.checkpoint().unwrap(), 3);
    drop(recovered);
    let again = PcsEngine::builder().durable(&dir).open().unwrap();
    assert_eq!(again.epoch(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A death during fresh durable initialization (before the epoch-0
/// snapshot lands) leaves a directory that `build` can simply retry.
#[test]
fn death_during_fresh_init_is_retryable() {
    let dir = tmp_dir("init-kill");
    faults::arm("snapshot.before_rename");
    let (g, tax, profiles) = fixture();
    let err = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .durable(&dir)
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::Store(_)), "got {err:?}");
    assert_eq!(faults::armed_count(), 0);
    // No snapshot was published, so the directory is still "empty" and
    // a retry initializes it cleanly.
    let engine = durable_engine(&dir, WalOptions::default());
    assert_eq!(engine.epoch(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_rotates_and_reclaims_covered_segments() {
    let dir = tmp_dir("reclaim");
    // Tiny segments: every batch rotates, so reclaim has work to do.
    let engine = durable_engine(&dir, WalOptions { segment_bytes: 40, ..WalOptions::default() });
    let batches = scripted_batches(engine.taxonomy());
    for batch in &batches {
        engine.apply(batch).unwrap();
    }
    let wal_dir = dir.join(pcs_engine::WAL_DIR);
    let before = pcs_store::list_segments(&wal_dir).unwrap().len();
    assert!(before > 4, "tiny segments must have forced rotations (got {before})");
    assert_eq!(engine.checkpoint().unwrap(), 8);
    let after = pcs_store::list_segments(&wal_dir).unwrap();
    assert!(
        after.len() < before,
        "checkpoint must reclaim covered segments ({before} -> {})",
        after.len()
    );
    // The tail a brand-new follower would need from epoch 0 is gone —
    // that is a typed gap, not silence or a wrong answer.
    let err = engine.wal_tail_since(0, u64::MAX).unwrap_err();
    assert!(matches!(err, Error::Store(pcs_store::StoreError::Corrupt { .. })), "got {err:?}");
    // But recovery never needed it: the fresh checkpoint covers it.
    drop(engine);
    let recovered = PcsEngine::builder().durable(&dir).open().unwrap();
    assert_eq!(recovered.epoch(), 8);
    assert_equivalent(&recovered, &reference_engine(8), "post-reclaim recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent appliers on one durable engine: every acknowledged epoch
/// is fsynced, epochs stay dense, group commit coalesces fsyncs, and
/// recovery replays the whole interleaving.
#[test]
fn concurrent_durable_appliers_share_group_commits() {
    const THREADS: u32 = 4;
    const PER_THREAD: u32 = 8;
    let dir = tmp_dir("group-commit");
    let mut tax = Taxonomy::new("r");
    tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let n = 2 + THREADS * PER_THREAD;
    let g = Graph::from_edges(n as usize, &[(0, 1)]).unwrap();
    let profiles = vec![PTree::root_only(); n as usize];
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .durable(&dir)
        .wal_options(WalOptions { group_window: Duration::from_millis(2), ..WalOptions::default() })
        .build()
        .unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            s.spawn(move || {
                for k in 0..PER_THREAD {
                    // Distinct endpoints per (t, k): always effective.
                    let v = 2 + t * PER_THREAD + k;
                    let report = engine.apply(&UpdateBatch::new().add_edge(0, v)).unwrap();
                    assert!(report.durable_epoch.unwrap() >= report.epoch);
                }
            });
        }
    });
    let total = u64::from(THREADS * PER_THREAD);
    assert_eq!(engine.epoch(), total, "epochs must be dense across concurrent appliers");
    assert_eq!(engine.durable_epoch(), Some(total));
    drop(engine);
    let recovered = PcsEngine::builder().durable(&dir).open().unwrap();
    assert_eq!(recovered.epoch(), total);
    assert_eq!(
        recovered.snapshot().graph().num_edges(),
        1 + total as usize,
        "every concurrently acknowledged edge survived recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn follower_tails_the_primary_log() {
    let dir = tmp_dir("follower");
    let primary = durable_engine(&dir, WalOptions::default());
    let batches = scripted_batches(primary.taxonomy());
    for batch in batches.iter().take(3) {
        primary.apply(batch).unwrap();
    }
    // Seeding replays the on-disk tail past the snapshot.
    let follower = PcsEngine::builder().follow(&dir).unwrap();
    assert_eq!(follower.epoch(), 3);
    assert_equivalent(follower.engine(), &reference_engine(3), "seeded follower");
    // The primary moves on; one poll converges the replica.
    for batch in batches.iter().skip(3) {
        primary.apply(batch).unwrap();
    }
    assert_eq!(follower.poll().unwrap(), batches.len() - 3);
    assert_eq!(follower.epoch(), primary.epoch());
    assert_equivalent(follower.engine(), &primary, "polled follower");
    assert_eq!(follower.poll().unwrap(), 0, "caught-up poll is a no-op");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A follower that fell behind a checkpoint (its WAL position was
/// reclaimed) recovers with [`WalFollower::reseed`]: the primary's
/// fresh checkpoint is loaded *lazily* in place — the graph is not
/// decoded until the replica's next query — and the replica lands on
/// the primary's epoch, never rewinding.
#[test]
fn follower_reseeds_lazily_after_a_reclaimed_gap() {
    let dir = tmp_dir("reseed");
    let opts = WalOptions { segment_bytes: 40, ..WalOptions::default() };
    let primary = durable_engine(&dir, opts);
    let batches = scripted_batches(primary.taxonomy());
    let mut follower = PcsEngine::builder().follow(&dir).unwrap();
    assert_eq!(follower.epoch(), 0);
    // The primary advances and checkpoints: every covered segment is
    // reclaimed, so the follower's poll hits an epoch gap.
    for batch in &batches {
        primary.apply(batch).unwrap();
    }
    primary.checkpoint().unwrap();
    assert!(follower.poll().is_err(), "reclaimed tail must be a typed gap");
    // One reseed call recovers: lazy seed + tail replay.
    follower.reseed().unwrap();
    assert_eq!(follower.epoch(), primary.epoch());
    assert!(!follower.engine().snapshot().graph_resident(), "reseed must defer the graph decode");
    assert_equivalent(follower.engine(), &primary, "reseeded follower");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The network-replication surface: `wal_tail_since` frames the fsynced
/// tail, `apply_wal_frames` applies it on the other side, and a damaged
/// stream is a typed error, not a divergent replica.
#[test]
fn wal_frame_streaming_replicates_and_rejects_damage() {
    let dir = tmp_dir("frames");
    let primary = durable_engine(&dir, WalOptions::default());
    let batches = scripted_batches(primary.taxonomy());
    for batch in batches.iter().take(4) {
        primary.apply(batch).unwrap();
    }
    let frames = primary.wal_tail_since(0, u64::MAX).unwrap();
    assert!(!frames.is_empty());
    assert!(primary.wal_tail_since(4, u64::MAX).unwrap().is_empty(), "caught-up tail is empty");

    let replica = reference_engine(0);
    assert_eq!(replica.apply_wal_frames(&frames).unwrap(), 4);
    assert_eq!(replica.epoch(), 4);
    assert_equivalent(&replica, &primary, "frame-streamed replica");
    // Idempotent: re-applying the same stream is a no-op.
    assert_eq!(replica.apply_wal_frames(&frames).unwrap(), 0);

    // A flipped byte anywhere in the stream is caught by the per-record
    // checksum before anything applies.
    let mut damaged = frames.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x10;
    let fresh = reference_engine(0);
    let err = fresh.apply_wal_frames(&damaged).unwrap_err();
    assert!(matches!(err, Error::Store(_)), "got {err:?}");
    assert_eq!(fresh.epoch(), 0, "nothing may apply from a damaged stream");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replay stamping is strict: wrong epoch and no-effect replays are
/// typed divergence errors that leave the engine untouched.
#[test]
fn stamped_replay_is_strict_about_epochs_and_effects() {
    let engine = reference_engine(2);
    let err = engine.apply_at_epoch(&UpdateBatch::new().add_edge(4, 5), 7).unwrap_err();
    assert!(
        matches!(err, Error::Update(UpdateError::EpochMismatch { expected: 7, next: 3 })),
        "got {err:?}"
    );
    // Batch 1 (add_edge(5, 1)) is already applied: replaying it at the
    // next epoch is all no-ops — divergence, not silence.
    let scripted = scripted_batches(engine.taxonomy());
    let err = engine.apply_at_epoch(&scripted[0], 3).unwrap_err();
    assert!(matches!(err, Error::Update(UpdateError::ReplayNoEffect { epoch: 3 })), "got {err:?}");
    assert_eq!(engine.epoch(), 2, "rejected replays leave the engine untouched");
}

/// Round-trip of the batch codec through every operation kind, plus
/// typed rejection of malformed payloads.
#[test]
fn batch_codec_roundtrip_and_rejection() {
    let (_, tax, _) = fixture();
    let a = tax.id_of("a").unwrap();
    let batch = UpdateBatch::new()
        .add_edge(1, 2)
        .remove_edge(0, 3)
        .set_profile(4, PTree::from_labels(&tax, [a]).unwrap());
    let payload = pcs_engine::encode_update_batch(&batch).unwrap();
    let decoded = pcs_engine::decode_update_batch(&payload, &tax).unwrap();
    assert_eq!(decoded, batch);

    // Truncation, trailing garbage, bad tags, and out-of-taxonomy
    // profiles are all typed `Corrupt`/`Truncated`-class errors.
    assert!(pcs_engine::decode_update_batch(&payload[..payload.len() - 2], &tax).is_err());
    let mut trailing = payload.clone();
    trailing.push(0);
    assert!(pcs_engine::decode_update_batch(&trailing, &tax).is_err());
    let mut bad_tag = payload.clone();
    bad_tag[4] = 0xEE;
    assert!(pcs_engine::decode_update_batch(&bad_tag, &tax).is_err());
    let smaller_tax = Taxonomy::new("r");
    assert!(
        pcs_engine::decode_update_batch(&payload, &smaller_tax).is_err(),
        "profiles must be re-validated against the decoding taxonomy"
    );
}

#[test]
fn non_durable_engines_report_not_durable() {
    let engine = reference_engine(0);
    assert_eq!(engine.durable_epoch(), None);
    assert!(matches!(engine.checkpoint(), Err(Error::NotDurable)));
    assert!(matches!(engine.wal_tail_since(0, u64::MAX), Err(Error::NotDurable)));
    let report = engine.apply(&UpdateBatch::new().add_edge(4, 5)).unwrap();
    assert_eq!(report.durable_epoch, None);
}
