// Fixture: a well-formed allow whose coverage span contains no finding
// of its rule — dead suppressions must be removed, not accumulated.

fn fine() -> u32 {
    // audit:allow(no-panic): fixture reason; nothing below can fail
    40 + 2
}
