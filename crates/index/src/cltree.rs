//! The CL-tree: nested k-ĉores as a forest over a flat DFS arena.
//!
//! Because `j-ĉore ⊆ i-ĉore` whenever `i < j`, all connected ĉores of a
//! graph form a containment forest. Each node carries a core level and
//! the vertices whose core number equals that level inside that ĉore;
//! the full vertex set of a ĉore is the node's subtree. A
//! `vertexNodeMap` (here a sorted-id lookup) places every vertex at the
//! node of its own core level, so locating the k-ĉore of a query vertex
//! is an upward walk of at most `max_core` steps.
//!
//! **Arena layout.** All member vertices live in one contiguous
//! `arena`, ordered by a DFS of the forest in which every node's own
//! vertices precede its children's subtrees. Each node records an
//! `(offset, len)` pair into the arena for its own vertices *and* for
//! its whole subtree — so the k-ĉore of `(q, k)`, which is exactly the
//! subtree of `q`'s `k`-level ancestor, is a **borrowed slice**:
//! [`ClTree::community_ref`] answers in O(depth) with zero allocation
//! and zero copying. The owned [`ClTree::get`] remains as a thin
//! sorted copy for callers that need ownership or sorted order.
//!
//! Construction follows the union-find method of Fang et al.: sweep
//! core levels from deepest to shallowest, union the newly activated
//! vertices with already-active neighbours, and make the merged deeper
//! nodes children of the freshly created level node — O(m·α(n)) total.
//! Per-level grouping is a sort-then-partition over a scratch vector
//! (no per-level hash maps).

use pcs_graph::core::CoreDecomposition;
use pcs_graph::{Graph, UnionFind, VertexId};

/// Sentinel for "no parent" links inside the forest.
const NONE: u32 = u32::MAX;

/// One forest node: a connected c-ĉore, minus the deeper ĉores nested
/// inside it (those are its children). Member vertices are held by the
/// owning [`ClTree`]'s arena; see [`ClTree::node_members`] and
/// [`ClTree::subtree_members`].
#[derive(Clone, Debug)]
pub struct ClNode {
    /// Core level of this node.
    pub core: u32,
    /// Child node ids (deeper ĉores merged under this one).
    pub children: Vec<u32>,
    /// Parent node id, or `u32::MAX` at a forest root.
    parent: u32,
    /// Arena offset of this node's subtree (own vertices first).
    sub_off: u32,
    /// Arena length of this node's whole subtree.
    sub_len: u32,
    /// How many of the leading `sub_len` entries are this node's own
    /// vertices (those whose core number equals `core`).
    own_len: u32,
}

impl ClNode {
    /// Parent node id, if any.
    pub fn parent(&self) -> Option<u32> {
        (self.parent != NONE).then_some(self.parent)
    }
}

/// The CL-tree of a graph or induced subgraph (a forest when the
/// underlying vertex set is disconnected). Vertex ids are always ids of
/// the *host* graph, also when the tree indexes only a subset.
#[derive(Clone, Debug)]
pub struct ClTree {
    nodes: Vec<ClNode>,
    /// All member vertices in DFS order: each node's own vertices
    /// (sorted), then its children's subtrees.
    arena: Vec<VertexId>,
    /// Sorted member vertices, parallel with `node_of`.
    members: Vec<VertexId>,
    /// `node_of[i]` = forest node holding `members[i]`.
    node_of: Vec<u32>,
    /// Core number of `members[i]` (within the indexed subgraph).
    core_of: Vec<u32>,
    /// `arena_pos[i]` = index of `members[i]` inside `arena`. Because a
    /// ĉore is one contiguous arena range, "is `v` in this ĉore" is a
    /// range test on `arena_pos` — O(1) after the member lookup.
    arena_pos: Vec<u32>,
}

impl ClTree {
    /// Builds the CL-tree of the whole graph.
    pub fn build(g: &Graph) -> ClTree {
        let all: Vec<VertexId> = g.vertices().collect();
        Self::build_on_subset(g, &all)
    }

    /// Builds the CL-tree of the subgraph induced by `subset`
    /// (duplicates allowed; original vertex ids are retained).
    pub fn build_on_subset(g: &Graph, subset: &[VertexId]) -> ClTree {
        let (sub, ids) = g.induced_subgraph(subset);
        let n = sub.num_vertices();
        if n == 0 {
            return ClTree {
                nodes: Vec::new(),
                arena: Vec::new(),
                members: Vec::new(),
                node_of: Vec::new(),
                core_of: Vec::new(),
                arena_pos: Vec::new(),
            };
        }
        let cd = CoreDecomposition::new(&sub);
        let max_core = cd.max_core();

        // Vertices bucketed by core level (local ids).
        let mut at_level: Vec<Vec<u32>> = vec![Vec::new(); max_core as usize + 1];
        for v in 0..n as u32 {
            at_level[cd.core_number(v) as usize].push(v);
        }

        let mut uf = UnionFind::new(n);
        let mut active = vec![false; n];
        // Maximal already-built node ids inside each component, indexed
        // by the component's current union-find root (no hash map: root
        // ids are local vertex ids < n).
        let mut attached: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut nodes: Vec<ClNode> = Vec::new();
        // Own vertices per node (original host ids), moved into the
        // arena once the forest shape is final.
        let mut own: Vec<Vec<VertexId>> = Vec::new();
        let mut node_of_local = vec![NONE; n];
        // Scratch for the per-level sort-then-partition grouping.
        let mut level_buf: Vec<(u32, u32)> = Vec::new();

        for c in (0..=max_core).rev() {
            let level = &at_level[c as usize];
            for &v in level {
                active[v as usize] = true;
            }
            for &v in level {
                for &u in sub.neighbors(v) {
                    if active[u as usize] {
                        let (ra, rb) = (uf.find(v), uf.find(u));
                        if ra != rb {
                            let rnew = uf.union(ra, rb).expect("distinct roots");
                            let rold = if rnew == ra { rb } else { ra };
                            let moved = std::mem::take(&mut attached[rold as usize]);
                            attached[rnew as usize].extend(moved);
                        }
                    }
                }
            }
            // Group this level's vertices by final component root:
            // sort (root, vertex) pairs, then walk the runs. Sorting by
            // the pair also leaves each group's vertices sorted.
            level_buf.clear();
            level_buf.extend(level.iter().map(|&v| (uf.find(v), v)));
            level_buf.sort_unstable();
            let mut i = 0;
            while i < level_buf.len() {
                let root = level_buf[i].0;
                let mut j = i;
                while j < level_buf.len() && level_buf[j].0 == root {
                    j += 1;
                }
                let id = nodes.len() as u32;
                let children = std::mem::take(&mut attached[root as usize]);
                for &ch in &children {
                    nodes[ch as usize].parent = id;
                }
                for &(_, v) in &level_buf[i..j] {
                    node_of_local[v as usize] = id;
                }
                own.push(level_buf[i..j].iter().map(|&(_, v)| ids[v as usize]).collect());
                nodes.push(ClNode {
                    core: c,
                    children,
                    parent: NONE,
                    sub_off: 0,
                    sub_len: 0,
                    own_len: 0,
                });
                attached[root as usize].push(id);
                i = j;
            }
        }
        debug_assert!(node_of_local.iter().all(|&x| x != NONE));

        // Lay the arena out in DFS order (own vertices before child
        // subtrees) and record per-node subtree ranges.
        let mut arena: Vec<VertexId> = Vec::with_capacity(ids.len());
        enum Step {
            Enter(u32),
            Exit(u32),
        }
        let mut stack: Vec<Step> = (0..nodes.len() as u32)
            .rev()
            .filter(|&id| nodes[id as usize].parent == NONE)
            .map(Step::Enter)
            .collect();
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(id) => {
                    let node = &mut nodes[id as usize];
                    node.sub_off = arena.len() as u32;
                    let vs = std::mem::take(&mut own[id as usize]);
                    node.own_len = vs.len() as u32;
                    arena.extend(vs);
                    stack.push(Step::Exit(id));
                    for &ch in nodes[id as usize].children.iter().rev() {
                        stack.push(Step::Enter(ch));
                    }
                }
                Step::Exit(id) => {
                    let node = &mut nodes[id as usize];
                    node.sub_len = arena.len() as u32 - node.sub_off;
                }
            }
        }
        debug_assert_eq!(arena.len(), ids.len());
        // Invert the arena: where did each (sorted) member land?
        let mut arena_pos = vec![0u32; ids.len()];
        for (pos, &v) in arena.iter().enumerate() {
            let i = ids.binary_search(&v).expect("arena holds exactly the members");
            arena_pos[i] = pos as u32;
        }

        let core_of: Vec<u32> = (0..n as u32).map(|v| cd.core_number(v)).collect();
        ClTree { nodes, arena, members: ids, node_of: node_of_local, core_of, arena_pos }
    }

    /// Number of forest nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.members.len()
    }

    /// The sorted vertex ids this tree indexes.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Forest node by id.
    pub fn node(&self, id: u32) -> &ClNode {
        &self.nodes[id as usize]
    }

    /// The vertices whose core number equals `node(id).core` within
    /// this ĉore (sorted).
    pub fn node_members(&self, id: u32) -> &[VertexId] {
        let node = &self.nodes[id as usize];
        &self.arena[node.sub_off as usize..(node.sub_off + node.own_len) as usize]
    }

    /// All vertices of the ĉore rooted at `id` — the node's whole
    /// subtree — as a borrowed arena slice. Distinct but **not
    /// globally sorted** (DFS order); sort a copy if order matters.
    pub fn subtree_members(&self, id: u32) -> &[VertexId] {
        let node = &self.nodes[id as usize];
        &self.arena[node.sub_off as usize..(node.sub_off + node.sub_len) as usize]
    }

    /// True when `v` is indexed by this tree.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// True when `v` belongs to the ĉore rooted at node `id` — a
    /// member lookup plus an O(1) arena range test, never a walk of
    /// the subtree. The membership companion to the
    /// [`ClTree::community_ref`] slice view: consumers holding a slice
    /// can answer "is `v` in this community" without sorting or
    /// scanning it.
    #[inline]
    pub fn subtree_contains(&self, id: u32, v: VertexId) -> bool {
        let Ok(i) = self.members.binary_search(&v) else {
            return false;
        };
        let node = &self.nodes[id as usize];
        let pos = self.arena_pos[i];
        pos >= node.sub_off && pos < node.sub_off + node.sub_len
    }

    /// Core number of `v` within the indexed subgraph, if present.
    pub fn core_of(&self, v: VertexId) -> Option<u32> {
        let i = self.members.binary_search(&v).ok()?;
        Some(self.core_of[i])
    }

    /// The `vertexNodeMap` lookup: the forest node holding `v`.
    pub fn node_of(&self, v: VertexId) -> Option<u32> {
        let i = self.members.binary_search(&v).ok()?;
        Some(self.node_of[i])
    }

    /// The forest node whose subtree *is* the k-ĉore of `q`: the
    /// shallowest ancestor of `q`'s node still at core level ≥ `k`.
    /// `None` when `q` is absent or its core number is below `k`.
    ///
    /// Two vertices lie in the same k-ĉore iff they report the same
    /// summit — an O(max_core) containment test without collecting the
    /// ĉore itself, used by the incremental CP-tree maintenance to
    /// prove an edge insertion merges nothing.
    pub fn summit(&self, q: VertexId, k: u32) -> Option<u32> {
        let i = self.members.binary_search(&q).ok()?;
        if self.core_of[i] < k {
            return None;
        }
        let mut cur = self.node_of[i];
        loop {
            let p = self.nodes[cur as usize].parent;
            if p == NONE || self.nodes[p as usize].core < k {
                break;
            }
            cur = p;
        }
        Some(cur)
    }

    /// The k-ĉore containing `q` as a borrowed arena slice, or `None`
    /// when `q` is absent or its core number is below `k`.
    ///
    /// This is the query hot path: O(path-to-ancestor), **zero
    /// allocation, zero copying** — the community of `(q, k)` is
    /// exactly one contiguous arena range. The slice holds distinct
    /// vertices in DFS (not sorted) order.
    #[inline]
    pub fn community_ref(&self, q: VertexId, k: u32) -> Option<&[VertexId]> {
        Some(self.subtree_members(self.summit(q, k)?))
    }

    /// The k-ĉore containing `q` (sorted), or `None` when `q` is absent
    /// or its core number is below `k`.
    ///
    /// Thin owned wrapper over [`ClTree::community_ref`], kept for API
    /// compatibility and for callers needing sorted order. **Prefer
    /// `community_ref` anywhere performance matters** — this copies and
    /// sorts the answer on every call.
    pub fn get(&self, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        let mut out = self.community_ref(q, k)?.to_vec();
        out.sort_unstable();
        Some(out)
    }

    /// Iterator over forest roots.
    pub fn roots(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.nodes.len() as u32).filter(|&id| self.nodes[id as usize].parent == NONE)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.arena.len() * size_of::<VertexId>()
            + self.members.len() * (size_of::<VertexId>() + 3 * size_of::<u32>())
            + self.nodes.iter().map(|n| size_of::<ClNode>() + n.children.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::Graph;

    /// The paper's Fig. 4(a) graph: A..H = 0..7.
    fn figure4() -> Graph {
        Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure4_structure() {
        let g = figure4();
        let t = ClTree::build(&g);
        // Fig. 4(b): root 0:# (core 0, no vertices at level 0 here since
        // all vertices have core >= 2 — so the forest root is at core 2).
        // Expected: one core-2 node holding {C} and {F,G,H}... they are
        // a single 2-ĉore (E-F bridge), child = core-3 node {A,B,D,E}.
        assert!(t.num_nodes() >= 2);
        // get checks (the real contract).
        assert_eq!(t.get(3, 3).unwrap(), vec![0, 1, 3, 4]);
        assert_eq!(t.get(2, 2).unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(t.get(6, 2).unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(t.get(2, 3).is_none());
        assert!(t.get(0, 4).is_none());
        // k=0/1 return the whole (connected) graph.
        assert_eq!(t.get(0, 0).unwrap().len(), 8);
        assert_eq!(t.get(0, 1).unwrap().len(), 8);
    }

    #[test]
    fn matches_core_decomposition_everywhere() {
        let g = figure4();
        let t = ClTree::build(&g);
        let cd = CoreDecomposition::new(&g);
        for q in g.vertices() {
            assert_eq!(t.core_of(q), Some(cd.core_number(q)));
            for k in 0..=4 {
                assert_eq!(t.get(q, k), cd.kcore_component(&g, q, k), "q={q} k={k}");
            }
        }
    }

    /// `community_ref` must be set-equal to the owned path and truly
    /// borrowed: repeated probes return the identical arena slice.
    #[test]
    fn community_ref_is_borrowed_and_set_equal() {
        let g = figure4();
        let t = ClTree::build(&g);
        for q in g.vertices() {
            for k in 0..=4 {
                match (t.community_ref(q, k), t.get(q, k)) {
                    (None, None) => {}
                    (Some(slice), Some(owned)) => {
                        let mut sorted = slice.to_vec();
                        sorted.sort_unstable();
                        assert_eq!(sorted, owned, "q={q} k={k}");
                        // Zero-copy: the same probe yields the same
                        // pointer into the arena, every time.
                        let again = t.community_ref(q, k).unwrap();
                        assert_eq!(slice.as_ptr(), again.as_ptr());
                        assert_eq!(slice.len(), again.len());
                        let arena_range = t.arena.as_ptr_range();
                        assert!(arena_range.contains(&slice.as_ptr()));
                    }
                    (r, o) => panic!("q={q} k={k}: ref={r:?} owned={o:?}"),
                }
            }
        }
    }

    /// Every node's subtree slice equals its own members plus its
    /// children's subtree slices — the DFS nesting invariant.
    #[test]
    fn arena_ranges_nest() {
        let g = figure4();
        let t = ClTree::build(&g);
        for id in 0..t.num_nodes() as u32 {
            let mut expect: Vec<VertexId> = t.node_members(id).to_vec();
            for &ch in &t.node(id).children {
                expect.extend_from_slice(t.subtree_members(ch));
            }
            expect.sort_unstable();
            let mut got = t.subtree_members(id).to_vec();
            got.sort_unstable();
            assert_eq!(got, expect, "node {id}");
            // Children ranges are contained in the parent range.
            for &ch in &t.node(id).children {
                let p = t.node(id);
                let c = t.node(ch);
                assert!(c.sub_off >= p.sub_off);
                assert!(c.sub_off + c.sub_len <= p.sub_off + p.sub_len);
            }
        }
    }

    #[test]
    fn subtree_contains_matches_slice() {
        let g = figure4();
        let t = ClTree::build(&g);
        for id in 0..t.num_nodes() as u32 {
            let slice = t.subtree_members(id);
            for v in 0..10u32 {
                assert_eq!(t.subtree_contains(id, v), slice.contains(&v), "node {id} v {v}");
            }
        }
    }

    #[test]
    fn disconnected_graph_is_a_forest() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let t = ClTree::build(&g);
        assert_eq!(t.roots().count(), 3); // two triangles + isolated 6
        assert_eq!(t.get(0, 2).unwrap(), vec![0, 1, 2]);
        assert_eq!(t.get(4, 2).unwrap(), vec![3, 4, 5]);
        assert_eq!(t.get(6, 0).unwrap(), vec![6]);
        assert!(t.get(6, 1).is_none());
        // 0-ĉores are per-component, never merged.
        assert_eq!(t.get(0, 0).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn subset_build_uses_original_ids() {
        let g = figure4();
        // Index only {A,B,D,E,C} (0,1,3,4,2).
        let t = ClTree::build_on_subset(&g, &[0, 1, 2, 3, 4]);
        assert_eq!(t.num_vertices(), 5);
        assert!(t.contains_vertex(0));
        assert!(!t.contains_vertex(5));
        assert_eq!(t.get(0, 3).unwrap(), vec![0, 1, 3, 4]);
        assert_eq!(t.get(2, 2).unwrap(), vec![0, 1, 2, 3, 4]);
        assert!(t.get(5, 0).is_none());
        assert_eq!(t.core_of(2), Some(2));
        assert_eq!(t.core_of(7), None);
    }

    #[test]
    fn empty_subset() {
        let g = figure4();
        let t = ClTree::build_on_subset(&g, &[]);
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_vertices(), 0);
        assert!(t.get(0, 0).is_none());
        assert!(t.community_ref(0, 0).is_none());
    }

    #[test]
    fn randomized_against_decomposition() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..15 {
            let n = 40;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.12) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let t = ClTree::build(&g);
            let cd = CoreDecomposition::new(&g);
            for q in 0..n as u32 {
                for k in 0..=cd.max_core() + 1 {
                    assert_eq!(t.get(q, k), cd.kcore_component(&g, q, k), "q={q} k={k}");
                    // The slice view stays set-equal to the owned path.
                    let as_set = t.community_ref(q, k).map(|s| {
                        let mut v = s.to_vec();
                        v.sort_unstable();
                        v
                    });
                    assert_eq!(as_set, t.get(q, k), "q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn randomized_subset_against_induced() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..15 {
            let n = 30;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.15) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let subset: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.6)).collect();
            let t = ClTree::build_on_subset(&g, &subset);
            let (sub, ids) = g.induced_subgraph(&subset);
            let cd = CoreDecomposition::new(&sub);
            for (local, &orig) in ids.iter().enumerate() {
                for k in 0..4 {
                    let expect = cd
                        .kcore_component(&sub, local as u32, k)
                        .map(|c| c.into_iter().map(|v| ids[v as usize]).collect::<Vec<_>>());
                    assert_eq!(t.get(orig, k), expect);
                }
            }
        }
    }

    #[test]
    fn summit_identifies_shared_cores() {
        let g = figure4();
        let t = ClTree::build(&g);
        // A and D share the 3-ĉore {A,B,D,E}; C is outside it.
        assert_eq!(t.summit(0, 3), t.summit(3, 3));
        assert!(t.summit(2, 3).is_none());
        // At k=2 the whole graph is one ĉore.
        assert_eq!(t.summit(2, 2), t.summit(6, 2));
        // Summit's subtree equals get().
        let nid = t.summit(0, 3).unwrap();
        let mut collected = t.subtree_members(nid).to_vec();
        collected.sort_unstable();
        assert_eq!(collected, t.get(0, 3).unwrap());
    }

    #[test]
    fn node_accessors() {
        let g = figure4();
        let t = ClTree::build(&g);
        let nid = t.node_of(2).unwrap();
        let node = t.node(nid);
        assert_eq!(node.core, 2);
        assert!(t.node_members(nid).contains(&2));
        assert!(t.memory_bytes() > 0);
        // The deepest node has a parent chain ending at a root.
        let deep = t.node_of(0).unwrap();
        let mut cur = deep;
        let mut steps = 0;
        while let Some(p) = t.node(cur).parent() {
            cur = p;
            steps += 1;
            assert!(steps < 100, "cycle in parent links");
        }
        assert!(t.roots().any(|r| r == cur));
    }
}
