//! # pcs-engine — the owned, serving-ready PCS facade
//!
//! Community search is an *online, repeated-query* workload: one
//! profiled graph is loaded (and indexed) once, then answers many
//! queries. The paper-layer [`QueryContext`](pcs_core::QueryContext)
//! is a borrowed bundle tied to its inputs' lifetimes — perfect for
//! reproduction runs, impossible to store in a server handler. This
//! crate provides the owned counterpart:
//!
//! * [`PcsEngine`] — owns graph + taxonomy + profiles, is
//!   `Send + Sync`, and caches the CP-tree index and core
//!   decomposition per epoch snapshot.
//! * [`EngineBuilder`] — validates everything once at build time.
//! * [`QueryRequest`] / [`QueryResponse`] — an extensible
//!   request/response pair replacing positional arguments, with
//!   wall-clock timing, index-usage, and epoch metadata on every
//!   answer.
//! * [`UpdateBatch`] / [`UpdateReport`] — live mutations
//!   (`add_edge`, `remove_edge`, `update_profile`, batched
//!   [`apply`](PcsEngine::apply)) with **incremental** maintenance of
//!   the core decomposition and CP-tree index: only the vertices and
//!   labels an update can affect are revisited.
//! * [`EngineSnapshot`] — a consistent immutable view at one epoch;
//!   queries are lock-free against the snapshot current when they
//!   started, while updates publish the next epoch.
//! * [`CacheMode`] / [`PcsEngine::query_cached`] — an epoch-keyed
//!   result cache for zipfian read traffic, invalidated wholesale on
//!   every publish or surgically via the same label-lattice reasoning
//!   the index patcher uses (see the [`mod@cache`] docs), plus
//!   [`PcsEngine::apply_coalesced`], the group-committing write path
//!   that amortizes epoch publishes across concurrent writers.
//! * [`PcsEngine::save`] / [`EngineBuilder::load`] — versioned,
//!   checksummed on-disk snapshots (via `pcs-store`): a replica
//!   warm-starts by bulk-loading the persisted graph, cores, and
//!   CP-tree arenas instead of rebuilding them, resuming at the saved
//!   epoch with full mutability.
//! * [`EngineBuilder::durable`] / [`EngineBuilder::open`] — the
//!   WAL-backed lifecycle: every applied batch is fsynced to an
//!   epoch-stamped log *before* its epoch publishes, crash recovery
//!   replays the snapshot + log tail to the exact pre-crash epoch,
//!   [`PcsEngine::checkpoint`] reclaims covered segments, and a
//!   [`WalFollower`] tails the log as a read-only replica (see the
//!   [`mod@durable`] module docs).
//! * [`Error`] — one `#[non_exhaustive]` [`std::error::Error`]
//!   wrapping query, index, update, and validation failures.
//!
//! ```
//! use pcs_engine::{PcsEngine, QueryRequest};
//! use pcs_graph::Graph;
//! use pcs_ptree::{PTree, Taxonomy};
//!
//! let mut tax = Taxonomy::new("r");
//! let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
//! let profiles: Vec<PTree> =
//!     (0..3).map(|_| PTree::from_labels(&tax, [a]).unwrap()).collect();
//!
//! let engine = PcsEngine::builder()
//!     .graph(g)
//!     .taxonomy(tax)
//!     .profiles(profiles)
//!     .build()
//!     .unwrap();
//!
//! // Algorithm::Auto picks adv-P (the index is built lazily here).
//! let resp = engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
//! assert_eq!(resp.communities().len(), 1);
//! assert_eq!(resp.communities()[0].vertices, vec![0, 1, 2]);
//! assert!(resp.index_used);
//! ```

#![deny(unsafe_code)]

pub mod cache;
pub mod durable;
mod engine;
mod error;
mod persist;
mod request;
mod snapshot;
mod update;

pub use cache::{CacheMode, CacheStatsSnapshot};
pub use durable::{decode_update_batch, encode_update_batch, WalFollower, SNAPSHOT_FILE, WAL_DIR};
pub use engine::{CoalesceStatsSnapshot, EngineBuilder, IndexMode, PcsEngine, SnapshotIo};
pub use error::{BuildError, Error, Result};
pub use request::{QueryRequest, QueryResponse};
pub use snapshot::EngineSnapshot;
pub use update::{IndexMaintenance, Update, UpdateBatch, UpdateError, UpdateReport};

// The facade re-exports the algorithm selector so callers need only
// this crate for the common path.
pub use pcs_core::Algorithm;
// ...and the snapshot-store error type, which surfaces through
// [`Error::Store`] on the save/load path, plus the WAL tuning knobs
// [`EngineBuilder::wal_options`] accepts.
pub use pcs_store::{StoreError, WalOptions};
