//! The CL-tree: nested k-ĉores as a forest.
//!
//! Because `j-ĉore ⊆ i-ĉore` whenever `i < j`, all connected ĉores of a
//! graph form a containment forest. Each node carries a core level and
//! the vertices whose core number equals that level inside that ĉore;
//! the full vertex set of a ĉore is the node's subtree. A
//! `vertexNodeMap` (here a sorted-id lookup) places every vertex at the
//! node of its own core level, so locating the k-ĉore of a query vertex
//! is an upward walk of at most `max_core` steps plus an output-sized
//! subtree collection.
//!
//! Construction follows the union-find method of Fang et al.: sweep
//! core levels from deepest to shallowest, union the newly activated
//! vertices with already-active neighbours, and make the merged deeper
//! nodes children of the freshly created level node — O(m·α(n)) total.

use pcs_graph::core::CoreDecomposition;
use pcs_graph::{FxHashMap, Graph, UnionFind, VertexId};

/// Sentinel for "no parent" links inside the forest.
const NONE: u32 = u32::MAX;

/// One forest node: a connected c-ĉore, minus the deeper ĉores nested
/// inside it (those are its children).
#[derive(Clone, Debug)]
pub struct ClNode {
    /// Core level of this node.
    pub core: u32,
    /// Vertices whose core number equals `core` within this ĉore
    /// (sorted).
    pub vertices: Vec<VertexId>,
    /// Child node ids (deeper ĉores merged under this one).
    pub children: Vec<u32>,
    /// Parent node id, or `u32::MAX` at a forest root.
    parent: u32,
}

impl ClNode {
    /// Parent node id, if any.
    pub fn parent(&self) -> Option<u32> {
        (self.parent != NONE).then_some(self.parent)
    }
}

/// The CL-tree of a graph or induced subgraph (a forest when the
/// underlying vertex set is disconnected). Vertex ids are always ids of
/// the *host* graph, also when the tree indexes only a subset.
#[derive(Clone, Debug)]
pub struct ClTree {
    nodes: Vec<ClNode>,
    /// Sorted member vertices, parallel with `node_of`.
    members: Vec<VertexId>,
    /// `node_of[i]` = forest node holding `members[i]`.
    node_of: Vec<u32>,
    /// Core number of `members[i]` (within the indexed subgraph).
    core_of: Vec<u32>,
}

impl ClTree {
    /// Builds the CL-tree of the whole graph.
    pub fn build(g: &Graph) -> ClTree {
        let all: Vec<VertexId> = g.vertices().collect();
        Self::build_on_subset(g, &all)
    }

    /// Builds the CL-tree of the subgraph induced by `subset`
    /// (duplicates allowed; original vertex ids are retained).
    pub fn build_on_subset(g: &Graph, subset: &[VertexId]) -> ClTree {
        let (sub, ids) = g.induced_subgraph(subset);
        let n = sub.num_vertices();
        if n == 0 {
            return ClTree {
                nodes: Vec::new(),
                members: Vec::new(),
                node_of: Vec::new(),
                core_of: Vec::new(),
            };
        }
        let cd = CoreDecomposition::new(&sub);
        let max_core = cd.max_core();

        // Vertices bucketed by core level (local ids).
        let mut at_level: Vec<Vec<u32>> = vec![Vec::new(); max_core as usize + 1];
        for v in 0..n as u32 {
            at_level[cd.core_number(v) as usize].push(v);
        }

        let mut uf = UnionFind::new(n);
        let mut active = vec![false; n];
        // Maximal already-built node ids inside each component, keyed by
        // the component's current union-find root.
        let mut attached: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut nodes: Vec<ClNode> = Vec::new();
        let mut node_of_local = vec![NONE; n];

        for c in (0..=max_core).rev() {
            let level = &at_level[c as usize];
            for &v in level {
                active[v as usize] = true;
            }
            for &v in level {
                for &u in sub.neighbors(v) {
                    if active[u as usize] {
                        let (ra, rb) = (uf.find(v), uf.find(u));
                        if ra != rb {
                            let a_list = attached.remove(&ra).unwrap_or_default();
                            let b_list = attached.remove(&rb).unwrap_or_default();
                            let rnew = uf.union(ra, rb).expect("distinct roots");
                            let mut merged = a_list;
                            merged.extend(b_list);
                            if !merged.is_empty() {
                                attached.insert(rnew, merged);
                            }
                        }
                    }
                }
            }
            // Group this level's vertices by final component root.
            let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
            for &v in level {
                groups.entry(uf.find(v)).or_default().push(v);
            }
            for (root, mut vs) in groups {
                vs.sort_unstable();
                let id = nodes.len() as u32;
                let children = attached.remove(&root).unwrap_or_default();
                for &ch in &children {
                    nodes[ch as usize].parent = id;
                }
                for &v in &vs {
                    node_of_local[v as usize] = id;
                }
                nodes.push(ClNode {
                    core: c,
                    vertices: vs.iter().map(|&v| ids[v as usize]).collect(),
                    children,
                    parent: NONE,
                });
                attached.insert(root, vec![id]);
            }
        }
        debug_assert!(node_of_local.iter().all(|&x| x != NONE));

        let core_of: Vec<u32> = (0..n as u32).map(|v| cd.core_number(v)).collect();
        ClTree { nodes, members: ids, node_of: node_of_local, core_of }
    }

    /// Number of forest nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.members.len()
    }

    /// The sorted vertex ids this tree indexes.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Forest node by id.
    pub fn node(&self, id: u32) -> &ClNode {
        &self.nodes[id as usize]
    }

    /// True when `v` is indexed by this tree.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// Core number of `v` within the indexed subgraph, if present.
    pub fn core_of(&self, v: VertexId) -> Option<u32> {
        let i = self.members.binary_search(&v).ok()?;
        Some(self.core_of[i])
    }

    /// The `vertexNodeMap` lookup: the forest node holding `v`.
    pub fn node_of(&self, v: VertexId) -> Option<u32> {
        let i = self.members.binary_search(&v).ok()?;
        Some(self.node_of[i])
    }

    /// The forest node whose subtree *is* the k-ĉore of `q`: the
    /// shallowest ancestor of `q`'s node still at core level ≥ `k`.
    /// `None` when `q` is absent or its core number is below `k`.
    ///
    /// Two vertices lie in the same k-ĉore iff they report the same
    /// summit — an O(max_core) containment test without collecting the
    /// ĉore itself, used by the incremental CP-tree maintenance to
    /// prove an edge insertion merges nothing.
    pub fn summit(&self, q: VertexId, k: u32) -> Option<u32> {
        let i = self.members.binary_search(&q).ok()?;
        if self.core_of[i] < k {
            return None;
        }
        let mut cur = self.node_of[i];
        loop {
            let p = self.nodes[cur as usize].parent;
            if p == NONE || self.nodes[p as usize].core < k {
                break;
            }
            cur = p;
        }
        Some(cur)
    }

    /// The k-ĉore containing `q` (sorted), or `None` when `q` is absent
    /// or its core number is below `k`.
    ///
    /// Runs in O(path-to-ancestor + answer size).
    pub fn get(&self, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        let cur = self.summit(q, k)?;
        // Collect the subtree.
        let mut out = Vec::new();
        let mut stack = vec![cur];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            out.extend_from_slice(&node.vertices);
            stack.extend_from_slice(&node.children);
        }
        out.sort_unstable();
        Some(out)
    }

    /// Iterator over forest roots.
    pub fn roots(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.nodes.len() as u32).filter(|&id| self.nodes[id as usize].parent == NONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::Graph;

    /// The paper's Fig. 4(a) graph: A..H = 0..7.
    fn figure4() -> Graph {
        Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure4_structure() {
        let g = figure4();
        let t = ClTree::build(&g);
        // Fig. 4(b): root 0:# (core 0, no vertices at level 0 here since
        // all vertices have core >= 2 — so the forest root is at core 2).
        // Expected: one core-2 node holding {C} and {F,G,H}... they are
        // a single 2-ĉore (E-F bridge), child = core-3 node {A,B,D,E}.
        assert!(t.num_nodes() >= 2);
        // get checks (the real contract).
        assert_eq!(t.get(3, 3).unwrap(), vec![0, 1, 3, 4]);
        assert_eq!(t.get(2, 2).unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(t.get(6, 2).unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(t.get(2, 3).is_none());
        assert!(t.get(0, 4).is_none());
        // k=0/1 return the whole (connected) graph.
        assert_eq!(t.get(0, 0).unwrap().len(), 8);
        assert_eq!(t.get(0, 1).unwrap().len(), 8);
    }

    #[test]
    fn matches_core_decomposition_everywhere() {
        let g = figure4();
        let t = ClTree::build(&g);
        let cd = CoreDecomposition::new(&g);
        for q in g.vertices() {
            assert_eq!(t.core_of(q), Some(cd.core_number(q)));
            for k in 0..=4 {
                assert_eq!(t.get(q, k), cd.kcore_component(&g, q, k), "q={q} k={k}");
            }
        }
    }

    #[test]
    fn disconnected_graph_is_a_forest() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let t = ClTree::build(&g);
        assert_eq!(t.roots().count(), 3); // two triangles + isolated 6
        assert_eq!(t.get(0, 2).unwrap(), vec![0, 1, 2]);
        assert_eq!(t.get(4, 2).unwrap(), vec![3, 4, 5]);
        assert_eq!(t.get(6, 0).unwrap(), vec![6]);
        assert!(t.get(6, 1).is_none());
        // 0-ĉores are per-component, never merged.
        assert_eq!(t.get(0, 0).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn subset_build_uses_original_ids() {
        let g = figure4();
        // Index only {A,B,D,E,C} (0,1,3,4,2).
        let t = ClTree::build_on_subset(&g, &[0, 1, 2, 3, 4]);
        assert_eq!(t.num_vertices(), 5);
        assert!(t.contains_vertex(0));
        assert!(!t.contains_vertex(5));
        assert_eq!(t.get(0, 3).unwrap(), vec![0, 1, 3, 4]);
        assert_eq!(t.get(2, 2).unwrap(), vec![0, 1, 2, 3, 4]);
        assert!(t.get(5, 0).is_none());
        assert_eq!(t.core_of(2), Some(2));
        assert_eq!(t.core_of(7), None);
    }

    #[test]
    fn empty_subset() {
        let g = figure4();
        let t = ClTree::build_on_subset(&g, &[]);
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_vertices(), 0);
        assert!(t.get(0, 0).is_none());
    }

    #[test]
    fn randomized_against_decomposition() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..15 {
            let n = 40;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.12) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let t = ClTree::build(&g);
            let cd = CoreDecomposition::new(&g);
            for q in 0..n as u32 {
                for k in 0..=cd.max_core() + 1 {
                    assert_eq!(t.get(q, k), cd.kcore_component(&g, q, k), "q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn randomized_subset_against_induced() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..15 {
            let n = 30;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.15) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let subset: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.6)).collect();
            let t = ClTree::build_on_subset(&g, &subset);
            let (sub, ids) = g.induced_subgraph(&subset);
            let cd = CoreDecomposition::new(&sub);
            for (local, &orig) in ids.iter().enumerate() {
                for k in 0..4 {
                    let expect = cd
                        .kcore_component(&sub, local as u32, k)
                        .map(|c| c.into_iter().map(|v| ids[v as usize]).collect::<Vec<_>>());
                    assert_eq!(t.get(orig, k), expect);
                }
            }
        }
    }

    #[test]
    fn summit_identifies_shared_cores() {
        let g = figure4();
        let t = ClTree::build(&g);
        // A and D share the 3-ĉore {A,B,D,E}; C is outside it.
        assert_eq!(t.summit(0, 3), t.summit(3, 3));
        assert!(t.summit(2, 3).is_none());
        // At k=2 the whole graph is one ĉore.
        assert_eq!(t.summit(2, 2), t.summit(6, 2));
        // Summit's subtree equals get().
        let nid = t.summit(0, 3).unwrap();
        let mut collected = Vec::new();
        let mut stack = vec![nid];
        while let Some(id) = stack.pop() {
            collected.extend_from_slice(&t.node(id).vertices);
            stack.extend_from_slice(&t.node(id).children);
        }
        collected.sort_unstable();
        assert_eq!(collected, t.get(0, 3).unwrap());
    }

    #[test]
    fn node_accessors() {
        let g = figure4();
        let t = ClTree::build(&g);
        let nid = t.node_of(2).unwrap();
        let node = t.node(nid);
        assert_eq!(node.core, 2);
        assert!(node.vertices.contains(&2));
        // The deepest node has a parent chain ending at a root.
        let deep = t.node_of(0).unwrap();
        let mut cur = deep;
        let mut steps = 0;
        while let Some(p) = t.node(cur).parent() {
            cur = p;
            steps += 1;
            assert!(steps < 100, "cycle in parent links");
        }
        assert!(t.roots().any(|r| r == cur));
    }
}
