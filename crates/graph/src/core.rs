//! k-core decomposition and localized k-core extraction.
//!
//! Two engines live here:
//!
//! * [`CoreDecomposition`] — the O(m) bucket-peeling algorithm of
//!   Batagelj & Zaversnik computing the *core number* of every vertex of
//!   the whole graph, plus connected k-ĉore extraction (`k-ĉore` is the
//!   paper's notation for a connected component of the k-core).
//! * [`SubsetCore`] — repeated, allocation-free computation of the
//!   connected k-core containing a query vertex **restricted to an
//!   arbitrary candidate vertex subset**. This is the verification
//!   primitive `Gk[T]` that every PCS algorithm calls thousands of times
//!   per query; all scratch state is epoch-stamped so a verification
//!   costs O(candidate edges), never O(n).

use crate::bitset::EpochSet;
use crate::graph::{Graph, VertexId};

/// Core numbers for every vertex of a graph.
///
/// The core number of `v` is the largest `k` such that `v` belongs to
/// the k-core (the largest subgraph with minimum degree ≥ k).
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    core: Vec<u32>,
    max_core: u32,
}

impl CoreDecomposition {
    /// Runs the Batagelj–Zaversnik bucket-peeling algorithm in O(n + m).
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return CoreDecomposition { core: Vec::new(), max_core: 0 };
        }
        let mut degree: Vec<u32> = (0..n).map(|v| g.degree(v as u32) as u32).collect();
        let max_deg = *degree.iter().max().unwrap() as usize;

        // Bucket sort vertices by degree.
        let mut bin = vec![0usize; max_deg + 2];
        for &d in &degree {
            bin[d as usize] += 1;
        }
        let mut start = 0usize;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        let mut vert = vec![0 as VertexId; n]; // vertices in degree order
        let mut pos = vec![0usize; n]; // position of each vertex in `vert`
        {
            let mut cursor = bin.clone();
            for v in 0..n {
                let d = degree[v] as usize;
                pos[v] = cursor[d];
                vert[cursor[d]] = v as u32;
                cursor[d] += 1;
            }
        }

        // Peel in non-decreasing degree order, decrementing neighbours.
        for i in 0..n {
            let v = vert[i];
            for &u in g.neighbors(v) {
                if degree[u as usize] > degree[v as usize] {
                    let du = degree[u as usize] as usize;
                    let pu = pos[u as usize];
                    let pw = bin[du];
                    let w = vert[pw];
                    if u != w {
                        vert.swap(pu, pw);
                        pos[u as usize] = pw;
                        pos[w as usize] = pu;
                    }
                    bin[du] += 1;
                    degree[u as usize] -= 1;
                }
            }
        }
        let max_core = *degree.iter().max().unwrap();
        CoreDecomposition { core: degree, max_core }
    }

    /// Adopts an externally maintained core-number array (e.g. one kept
    /// up to date by [`crate::IncrementalCores`] across edge updates),
    /// recomputing only the cached maximum. O(n).
    pub fn from_core_numbers(core: Vec<u32>) -> Self {
        let max_core = core.iter().copied().max().unwrap_or(0);
        CoreDecomposition { core, max_core }
    }

    /// Core number of `v`.
    #[inline]
    pub fn core_number(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    /// Slice of all core numbers, indexed by vertex id.
    #[inline]
    pub fn core_numbers(&self) -> &[u32] {
        &self.core
    }

    /// The degeneracy of the graph (largest non-empty core level).
    #[inline]
    pub fn max_core(&self) -> u32 {
        self.max_core
    }

    /// All vertices of the k-core, sorted.
    pub fn kcore_vertices(&self, k: u32) -> Vec<VertexId> {
        (0..self.core.len() as u32).filter(|&v| self.core[v as usize] >= k).collect()
    }

    /// The connected k-ĉore containing `q`: the connected component of
    /// `q` in the subgraph induced by vertices with core number ≥ k.
    /// Returns a sorted vertex list, or `None` when `core(q) < k`.
    pub fn kcore_component(&self, g: &Graph, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        if (q as usize) >= self.core.len() || self.core[q as usize] < k {
            return None;
        }
        let mut visited = vec![false; self.core.len()];
        let mut queue = vec![q];
        visited[q as usize] = true;
        let mut out = Vec::new();
        while let Some(v) = queue.pop() {
            out.push(v);
            for &u in g.neighbors(v) {
                if !visited[u as usize] && self.core[u as usize] >= k {
                    visited[u as usize] = true;
                    queue.push(u);
                }
            }
        }
        out.sort_unstable();
        Some(out)
    }
}

/// Reusable engine computing `Gk[·]`: the connected k-core containing a
/// query vertex inside an arbitrary candidate subset.
///
/// All state is sized once for the host graph and reset in O(1) between
/// calls, so repeated verification (the PCS hot loop) performs zero
/// allocation beyond the returned community vector.
#[derive(Clone, Debug)]
pub struct SubsetCore {
    members: EpochSet,
    visited: EpochSet,
    deg: Vec<u32>,
    peel: Vec<VertexId>,
    bfs: Vec<VertexId>,
    /// Number of peel/verify invocations (exposed for the paper's
    /// search-effort instrumentation).
    calls: u64,
}

impl SubsetCore {
    /// Creates scratch state for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        SubsetCore {
            members: EpochSet::new(n),
            visited: EpochSet::new(n),
            deg: vec![0; n],
            peel: Vec::new(),
            bfs: Vec::new(),
            calls: 0,
        }
    }

    /// How many verifications this engine has executed.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Resets the call counter (used between benchmark sections).
    pub fn reset_calls(&mut self) {
        self.calls = 0;
    }

    /// Computes the connected k-core containing `q` within `candidates`.
    ///
    /// Semantics: take the subgraph of `g` induced by `candidates`,
    /// repeatedly delete vertices of degree < `k`, then return the
    /// connected component of `q` (sorted), or `None` if `q` was deleted
    /// or absent.
    ///
    /// Cost: O(Σ degree over candidates); independent of `g`'s size.
    pub fn kcore_component_within(
        &mut self,
        g: &Graph,
        candidates: &[VertexId],
        q: VertexId,
        k: u32,
    ) -> Option<Vec<VertexId>> {
        self.calls += 1;
        self.members.reset();
        for &v in candidates {
            self.members.insert(v as usize);
        }
        if !self.members.contains(q as usize) {
            return None;
        }
        // Degrees restricted to the candidate set.
        self.peel.clear();
        for &v in candidates {
            let d = g.neighbors(v).iter().filter(|&&u| self.members.contains(u as usize)).count()
                as u32;
            self.deg[v as usize] = d;
            if d < k {
                self.peel.push(v);
            }
        }
        // Iteratively peel under-degree vertices.
        while let Some(v) = self.peel.pop() {
            if !self.members.remove(v as usize) {
                continue; // candidates may contain duplicates
            }
            if v == q {
                return None;
            }
            for &u in g.neighbors(v) {
                if self.members.contains(u as usize) {
                    self.deg[u as usize] -= 1;
                    if self.deg[u as usize] == k.wrapping_sub(1) {
                        self.peel.push(u);
                    }
                }
            }
        }
        if !self.members.contains(q as usize) {
            return None;
        }
        // BFS for the component of q among survivors.
        self.visited.reset();
        self.bfs.clear();
        self.bfs.push(q);
        self.visited.insert(q as usize);
        let mut out = Vec::new();
        while let Some(v) = self.bfs.pop() {
            out.push(v);
            for &u in g.neighbors(v) {
                if self.members.contains(u as usize) && self.visited.insert(u as usize) {
                    self.bfs.push(u);
                }
            }
        }
        out.sort_unstable();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Naive reference: repeatedly delete vertices with degree < k.
    fn naive_kcore(g: &Graph, k: u32) -> Vec<bool> {
        let n = g.num_vertices();
        let mut alive = vec![true; n];
        loop {
            let mut changed = false;
            for v in 0..n as u32 {
                if alive[v as usize] {
                    let d = g.neighbors(v).iter().filter(|&&u| alive[u as usize]).count() as u32;
                    if d < k {
                        alive[v as usize] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                return alive;
            }
        }
    }

    fn figure1_graph() -> Graph {
        // The paper's Fig. 1(a)/Fig. 4(a) topology: vertices A..H = 0..7.
        // {A,B,D,E} is a 3-ĉore; adding C gives a 2-ĉore; {F,G,H} is a
        // separate 2-ĉore bridged to the rest via E-F and D-G... we
        // follow Example 1: {A,B,D,E} 3-ĉore, {A,B,C,D,E} 2-ĉore,
        // {F,G,H} triangle 2-ĉore, bridge E-F.
        Graph::from_edges(
            8,
            &[
                (0, 1), // A-B
                (0, 3), // A-D
                (0, 4), // A-E
                (1, 3), // B-D
                (1, 4), // B-E
                (3, 4), // D-E
                (1, 2), // B-C
                (2, 3), // C-D
                (4, 5), // E-F
                (5, 6), // F-G
                (5, 7), // F-H
                (6, 7), // G-H
            ],
        )
        .unwrap()
    }

    #[test]
    fn example1_core_numbers() {
        let g = figure1_graph();
        let cd = CoreDecomposition::new(&g);
        // A,B,D,E form a clique of 4 => core 3.
        for v in [0u32, 1, 3, 4] {
            assert_eq!(cd.core_number(v), 3, "vertex {v}");
        }
        assert_eq!(cd.core_number(2), 2); // C
        for v in [5u32, 6, 7] {
            assert_eq!(cd.core_number(v), 2, "vertex {v}");
        }
        assert_eq!(cd.max_core(), 3);
    }

    #[test]
    fn example1_kcore_components() {
        let g = figure1_graph();
        let cd = CoreDecomposition::new(&g);
        // 3-ĉore of D = {A,B,D,E}.
        assert_eq!(cd.kcore_component(&g, 3, 3).unwrap(), vec![0, 1, 3, 4]);
        // 2-ĉore of C = {A,B,C,D,E,F,G,H}: E-F bridge keeps them
        // connected at k=2 since every vertex has core >= 2.
        let comp2 = cd.kcore_component(&g, 2, 2).unwrap();
        assert_eq!(comp2, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // 4-ĉore does not exist.
        assert!(cd.kcore_component(&g, 0, 4).is_none());
    }

    #[test]
    fn zero_core_is_connected_component() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let cd = CoreDecomposition::new(&g);
        assert_eq!(cd.kcore_component(&g, 0, 0).unwrap(), vec![0, 1]);
        assert_eq!(cd.kcore_component(&g, 3, 0).unwrap(), vec![3]);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = 30 + trial;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.15) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let cd = CoreDecomposition::new(&g);
            for k in 0..=cd.max_core() + 1 {
                let alive = naive_kcore(&g, k);
                for v in 0..n as u32 {
                    assert_eq!(cd.core_number(v) >= k, alive[v as usize], "n={n} k={k} v={v}");
                }
            }
        }
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let cd = CoreDecomposition::new(&g);
        assert_eq!(cd.max_core(), 0);
        assert!(cd.kcore_vertices(0).is_empty());
        assert!(cd.kcore_component(&g, 0, 0).is_none());
    }

    #[test]
    fn subset_core_full_set_matches_global() {
        let g = figure1_graph();
        let cd = CoreDecomposition::new(&g);
        let mut sc = SubsetCore::new(g.num_vertices());
        let all: Vec<u32> = g.vertices().collect();
        for q in g.vertices() {
            for k in 0..=4 {
                let global = cd.kcore_component(&g, q, k);
                let local = sc.kcore_component_within(&g, &all, q, k);
                assert_eq!(global, local, "q={q} k={k}");
            }
        }
        assert!(sc.calls() > 0);
    }

    #[test]
    fn subset_core_restricted() {
        let g = figure1_graph();
        let mut sc = SubsetCore::new(g.num_vertices());
        // Restrict to {A,B,D,E,C}: 3-core survives as {A,B,D,E}.
        let cand = vec![0, 1, 2, 3, 4];
        assert_eq!(sc.kcore_component_within(&g, &cand, 3, 3).unwrap(), vec![0, 1, 3, 4]);
        // C peels off at k=3, so querying from C fails.
        assert!(sc.kcore_component_within(&g, &cand, 2, 3).is_none());
        // q not in candidate set.
        assert!(sc.kcore_component_within(&g, &[0, 1], 5, 0).is_none());
    }

    #[test]
    fn subset_core_disconnected_candidates() {
        let g = figure1_graph();
        let mut sc = SubsetCore::new(g.num_vertices());
        // Two triangles far apart: component of q only.
        let cand = vec![0, 1, 3, 5, 6, 7]; // A,B,D + F,G,H (A-B-D triangle)
        let got = sc.kcore_component_within(&g, &cand, 6, 2).unwrap();
        assert_eq!(got, vec![5, 6, 7]);
        let got = sc.kcore_component_within(&g, &cand, 0, 2).unwrap();
        assert_eq!(got, vec![0, 1, 3]);
    }

    #[test]
    fn subset_core_duplicate_candidates_ok() {
        let g = figure1_graph();
        let mut sc = SubsetCore::new(g.num_vertices());
        let cand = vec![0, 0, 1, 1, 3, 3, 4];
        let got = sc.kcore_component_within(&g, &cand, 0, 3).unwrap();
        assert_eq!(got, vec![0, 1, 3, 4]);
    }

    #[test]
    fn subset_core_k_zero_isolated_query() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut sc = SubsetCore::new(3);
        assert_eq!(sc.kcore_component_within(&g, &[2], 2, 0).unwrap(), vec![2]);
        assert!(sc.kcore_component_within(&g, &[2], 2, 1).is_none());
    }

    #[test]
    fn subset_core_randomized_against_naive() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..30 {
            let n = 25;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.2) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let cand: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.7)).collect();
            if cand.is_empty() {
                continue;
            }
            let q = cand[rng.gen_range(0..cand.len())];
            let k = rng.gen_range(0..4);
            let (sub, ids) = g.induced_subgraph(&cand);
            let cd = CoreDecomposition::new(&sub);
            let q_new = ids.binary_search(&q).unwrap() as u32;
            let expected = cd
                .kcore_component(&sub, q_new, k)
                .map(|c| c.into_iter().map(|v| ids[v as usize]).collect::<Vec<_>>());
            let mut sc = SubsetCore::new(n);
            let got = sc.kcore_component_within(&g, &cand, q, k);
            assert_eq!(got, expected);
        }
    }
}
