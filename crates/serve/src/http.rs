//! A hand-rolled HTTP/1.1 connection: request parsing and response
//! writing over one `TcpStream`, `std` only.
//!
//! Scope is deliberately narrow — the subset of RFC 9112 a
//! fixed-protocol service needs: `GET`/`POST`, `Content-Length` bodies
//! (no chunked transfer coding), `Connection: close`/`keep-alive`, and
//! hard caps on header and body size so a misbehaving client cannot
//! make the server allocate unboundedly. Everything else is a typed
//! [`HttpError`] that maps to a 4xx/5xx status — this module never
//! panics on wire input.
//!
//! The connection owns its read buffer, so it can be parked in the
//! server's run queue between requests without losing bytes a client
//! pipelined ahead.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;

/// Request methods the protocol uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Read: queries, health, stats.
    Get,
    /// Write: update batches.
    Post,
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Path component of the target, e.g. `/query`.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// The body (empty for bodyless requests).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Everything that can go wrong reading one request off the wire.
///
/// `#[non_exhaustive]` per the workspace error-enum policy.
#[derive(Debug)]
#[non_exhaustive]
pub enum HttpError {
    /// The peer closed the connection cleanly before sending a
    /// request — the normal end of a keep-alive session, not a fault.
    Closed,
    /// The read timed out (socket read timeout elapsed mid-request).
    Timeout,
    /// An I/O error other than timeout/close.
    Io(io::Error),
    /// Request line or headers exceed [`MAX_HEAD_BYTES`] /
    /// [`MAX_HEADERS`] → 431.
    HeadTooLarge,
    /// Declared `Content-Length` exceeds the server's body cap → 413.
    BodyTooLarge {
        /// Declared length.
        declared: usize,
        /// The server's cap.
        cap: usize,
    },
    /// A method other than GET/POST → 405 (at the routing layer the
    /// path decides; this is the wire-level backstop).
    UnsupportedMethod(String),
    /// Not HTTP/1.0 or HTTP/1.1 → 505.
    UnsupportedVersion(String),
    /// Anything else malformed (bad request line, bad header syntax,
    /// bad `Content-Length`) → 400.
    Malformed(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed by peer"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge { declared, cap } => {
                write!(f, "declared body of {declared} bytes exceeds cap {cap}")
            }
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method {m}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v}"),
            HttpError::Malformed(d) => write!(f, "malformed request: {d}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Result of a non-blocking readiness poll on a parked connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Poll {
    /// Bytes are buffered — a request is (at least partially) waiting.
    Data,
    /// Nothing arrived within the poll window.
    Idle,
    /// The peer closed the connection.
    Closed,
}

/// One server-side connection: the stream plus a persistent read
/// buffer (bytes read past the current request are kept for the next
/// one, so pipelined requests survive re-queuing).
#[derive(Debug)]
pub struct HttpConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpConn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> HttpConn {
        HttpConn { stream, buf: Vec::new() }
    }

    /// The underlying stream (for peer-address logging).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Polls for request bytes, waiting at most `window`. Returns
    /// [`Poll::Data`] as soon as anything is buffered, [`Poll::Idle`]
    /// on timeout, [`Poll::Closed`] on EOF.
    pub fn poll_readable(&mut self, window: Duration) -> io::Result<Poll> {
        if !self.buf.is_empty() {
            return Ok(Poll::Data);
        }
        // A zero timeout is "infinite" to the socket API; clamp up.
        self.stream.set_read_timeout(Some(window.max(Duration::from_millis(1))))?;
        let mut chunk = [0u8; 512];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Poll::Closed),
            Ok(got) => {
                self.buf.extend_from_slice(chunk.get(..got).unwrap_or_default());
                Ok(Poll::Data)
            }
            Err(e) if would_block(&e) => Ok(Poll::Idle),
            Err(e) => Err(e),
        }
    }

    /// Reads one full request, blocking up to `read_timeout` per
    /// socket read. `max_body` caps the accepted `Content-Length`.
    pub fn read_request(
        &mut self,
        read_timeout: Duration,
        max_body: usize,
    ) -> Result<Request, HttpError> {
        self.stream
            .set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))))
            .map_err(HttpError::Io)?;
        let head_end = self.fill_until_head_end()?;
        let head: Vec<u8> = self.buf.drain(..head_end + 4).collect();
        let head_str = std::str::from_utf8(head.get(..head_end).unwrap_or_default())
            .map_err(|_| HttpError::Malformed("request head is not UTF-8"))?;
        let mut lines = head_str.split("\r\n");
        let request_line = lines.next().ok_or(HttpError::Malformed("empty request head"))?;
        let (method, path, query) = parse_request_line(request_line)?;

        // Headers: we only interpret Content-Length and Connection.
        let mut content_length = 0usize;
        let mut keep_alive = true; // HTTP/1.1 default
        let mut header_count = 0usize;
        for line in lines {
            header_count += 1;
            if header_count > MAX_HEADERS {
                return Err(HttpError::HeadTooLarge);
            }
            let (name, value) =
                line.split_once(':').ok_or(HttpError::Malformed("header without ':'"))?;
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| HttpError::Malformed("unparsable Content-Length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError::Malformed("chunked transfer coding is not supported"));
            }
        }
        if content_length > max_body {
            return Err(HttpError::BodyTooLarge { declared: content_length, cap: max_body });
        }
        let body = self.fill_body(content_length)?;
        Ok(Request { method, path, query, body, keep_alive })
    }

    /// Reads until the head terminator `\r\n\r\n` is buffered; returns
    /// its offset.
    fn fill_until_head_end(&mut self) -> Result<usize, HttpError> {
        let mut scanned = 0usize;
        loop {
            if let Some(pos) = find_head_end(&self.buf, scanned) {
                return Ok(pos);
            }
            scanned = self.buf.len().saturating_sub(3);
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadTooLarge);
            }
            self.fill_some()?;
        }
    }

    /// Reads until `len` body bytes are buffered, then drains them.
    fn fill_body(&mut self, len: usize) -> Result<Vec<u8>, HttpError> {
        while self.buf.len() < len {
            self.fill_some()?;
        }
        Ok(self.buf.drain(..len).collect())
    }

    /// One socket read appended to the buffer.
    fn fill_some(&mut self) -> Result<(), HttpError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Malformed("connection closed mid-request"))
                }
            }
            Ok(got) => {
                self.buf.extend_from_slice(chunk.get(..got).unwrap_or_default());
                Ok(())
            }
            Err(e) if would_block(&e) => Err(HttpError::Timeout),
            Err(e) => Err(HttpError::Io(e)),
        }
    }

    /// Writes one response. `keep_alive` controls the `Connection`
    /// header; the caller decides whether to actually reuse the
    /// connection.
    ///
    /// Head and body go out in **one** `write_all`: split across two
    /// small writes, Nagle on the server side would hold the body back
    /// until the client ACKs the head — and a delayed ACK turns every
    /// response into a ~40 ms stall.
    pub fn write_response(&mut self, resp: &Response) -> io::Result<()> {
        let mut wire = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            resp.status,
            reason(resp.status),
            resp.content_type,
            resp.body.len(),
            if resp.keep_alive { "keep-alive" } else { "close" },
        )
        .into_bytes();
        wire.extend_from_slice(&resp.body);
        self.stream.write_all(&wire)?;
        self.stream.flush()
    }
}

/// Scans for `\r\n\r\n` starting near `from` (re-scanning only the
/// tail as the buffer grows).
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    (from..=buf.len() - 4).find(|&i| buf.get(i..i + 4) == Some(b"\r\n\r\n"))
}

fn would_block(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Parses `METHOD SP TARGET SP VERSION`.
fn parse_request_line(line: &str) -> Result<(Method, String, String), HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().ok_or(HttpError::Malformed("missing method"))?;
    let target = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("request line has extra fields"));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(HttpError::UnsupportedMethod(other.to_string())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed("request target must be origin-form"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok((method, path, query))
}

/// One response to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// The body — raw bytes, so the WAL replication endpoint can ship
    /// binary frames over the same writer as the JSON routes.
    pub body: Vec<u8>,
    /// Whether to advertise `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String, keep_alive: bool) -> Response {
        Response { status, content_type: "application/json", body: body.into_bytes(), keep_alive }
    }

    /// A binary response (`application/octet-stream`).
    pub fn octets(status: u16, body: Vec<u8>, keep_alive: bool) -> Response {
        Response { status, content_type: "application/octet-stream", body, keep_alive }
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// The wire bytes of a minimal load-shed 503, for writing straight
/// from the accept loop before any connection state exists.
pub const SHED_503: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 54\r\nConnection: close\r\n\r\n{\"error\":\"overloaded\",\"detail\":\"connection limit hit\"}";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses() {
        let (m, p, q) = parse_request_line("GET /query?v=1&k=2 HTTP/1.1").unwrap();
        assert_eq!(m, Method::Get);
        assert_eq!(p, "/query");
        assert_eq!(q, "v=1&k=2");
        let (m, p, q) = parse_request_line("POST /apply HTTP/1.0").unwrap();
        assert_eq!(m, Method::Post);
        assert_eq!(p, "/apply");
        assert_eq!(q, "");
    }

    #[test]
    fn request_line_rejections_are_typed() {
        assert!(matches!(
            parse_request_line("PUT / HTTP/1.1"),
            Err(HttpError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            parse_request_line("GET / HTTP/2"),
            Err(HttpError::UnsupportedVersion(_))
        ));
        assert!(matches!(parse_request_line("GET /"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse_request_line("GET query HTTP/1.1"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse_request_line("GET / HTTP/1.1 extra"), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn head_end_scanner_finds_terminator() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n", 0), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n", 0), None);
        assert_eq!(find_head_end(b"", 0), None);
    }

    #[test]
    fn shed_503_content_length_matches() {
        let text = std::str::from_utf8(SHED_503).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let declared: usize =
            head.lines().find_map(|l| l.strip_prefix("Content-Length: ")).unwrap().parse().unwrap();
        assert_eq!(declared, body.len());
    }

    #[test]
    fn reasons_cover_emitted_statuses() {
        for s in [200u16, 400, 404, 405, 408, 410, 413, 431, 500, 503, 505] {
            assert_ne!(reason(s), "Unknown");
        }
    }
}
