// Fixture: hot-path-idiomatic code — checked accessors, saturating
// arithmetic, no hash containers, no clock reads in loops. Zero
// findings expected under every rule scope.

fn sum_checked(v: &[u32]) -> u32 {
    let mut total = 0u32;
    for &x in v {
        total = total.saturating_add(x);
    }
    total
}

fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[non_exhaustive]
#[derive(Debug)]
pub enum GuardedError {
    Io,
}
