// Fixture: bare slice indexing, the no-index rule's only target.

fn pick(v: &[u32], i: usize) -> u32 {
    v[i] + v[0]
}
