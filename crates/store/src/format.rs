//! The snapshot container: a versioned, checksummed section file.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"PCSSNAP1"
//! 8       4     format version (u32 LE; this build writes 3, reads 1-3)
//! 12      4     section count (u32 LE)
//! 16      8     xxh64 of the section table (seeded with the version)
//! 24      32×c  section table: { id: u32, pad: u32, offset: u64,
//!               len: u64, xxh64(payload, seed = id): u64 }
//! ...           section payloads (contiguous, in table order)
//! ```
//!
//! Everything is little-endian. The container knows nothing about what
//! the sections mean — [`crate::codec`] does — it only guarantees that
//! a successfully read payload is byte-identical to what was written:
//! magic and version gate the parse, the table checksum protects the
//! directory, and each payload carries its own checksum seeded with its
//! section id (so a payload cannot silently answer for a different
//! section). Any violation surfaces as a typed [`StoreError`]; no input
//! can make the reader panic or loop.

use std::path::Path;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PCSSNAP1";

/// The format version this build **writes** (and the newest it reads).
///
/// v2 changed the `INDEX` section to the label-sharded layout (member
/// table + per-shard payload directory). v3 chunks the `PROFILES`
/// section (per-chunk checksums, so a file-backed loader can fault in
/// vertex ranges without reading the whole section) and adds per-label
/// member checksums to `INDEX` for the same reason. The container
/// layout itself is unchanged. Readers still accept
/// [`MIN_FORMAT_VERSION`]..=v3 — v1/v2 files load transparently.
pub const FORMAT_VERSION: u32 = 3;

/// The oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Pseudo section id used in [`StoreError::ChecksumMismatch`] when the
/// section *table* (not a payload) fails its checksum.
pub const SECTION_TABLE: u32 = u32::MAX;

pub(crate) const HEADER_LEN: u64 = 24;
pub(crate) const TABLE_ENTRY_LEN: u64 = 32;

/// Most sections a file may declare (defense against forged headers;
/// see the count check in [`SnapshotSlices::from_bytes`]).
pub const MAX_SECTIONS: u64 = 1024;

/// Everything that can go wrong writing or reading a snapshot file.
///
/// `#[non_exhaustive]`: future corruption classes may be added without
/// a semver break; keep a `_` arm when matching.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io {
        /// What was being attempted (e.g. `"read"`, `"write"`).
        op: &'static str,
        /// The OS error, stringified (kept `Clone`/`Eq`-friendly).
        detail: String,
    },
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The file declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// The file ends before the declared structure does.
    Truncated {
        /// Bytes the structure requires.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section table entry points outside the file (or its
    /// offset + length overflows).
    SectionOverflow {
        /// Section id of the offending entry.
        section: u32,
        /// Declared payload offset.
        offset: u64,
        /// Declared payload length.
        len: u64,
        /// Actual file length.
        file_len: u64,
    },
    /// A checksum did not match: the payload (or the table itself, when
    /// `section == `[`SECTION_TABLE`]) was altered after writing.
    ChecksumMismatch {
        /// Section id, or [`SECTION_TABLE`].
        section: u32,
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// A section the decoder requires is absent.
    MissingSection {
        /// The missing section's id.
        section: u32,
    },
    /// A checksum-valid section failed structural decoding — the writer
    /// and reader disagree about its contents.
    Corrupt {
        /// Section id being decoded.
        section: u32,
        /// Description of the violated invariant.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, detail } => write!(f, "snapshot {op} failed: {detail}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot format v{found} is newer than supported v{supported}")
            }
            StoreError::Truncated { needed, actual } => {
                write!(f, "snapshot truncated: need {needed} bytes, file has {actual}")
            }
            StoreError::SectionOverflow { section, offset, len, file_len } => {
                write!(f, "section {section} claims bytes {offset}+{len} of a {file_len}-byte file")
            }
            StoreError::ChecksumMismatch { section, expected, actual } => {
                let what: &dyn std::fmt::Display =
                    if *section == SECTION_TABLE { &"section table" } else { section };
                write!(
                    f,
                    "checksum mismatch in {what}: stored {expected:#018x}, computed {actual:#018x}"
                )
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} is missing")
            }
            StoreError::Corrupt { section, detail } => {
                write!(f, "section {section} failed to decode: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

// ---------------------------------------------------------------------
// xxHash64 (Collet's XXH64, implemented in-tree: no external deps).
// ---------------------------------------------------------------------

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2)).rotate_left(31).wrapping_mul(P1)
}

#[inline]
fn xxh_merge(acc: u64, val: u64) -> u64 {
    (acc ^ xxh_round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

// Every call site is length-guarded, so the zero fallback is dead code;
// it exists so these helpers are structurally incapable of panicking on
// the decode path.
#[inline]
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    debug_assert!(b.len() >= 8);
    b.first_chunk::<8>().map_or(0, |c| u64::from_le_bytes(*c))
}

#[inline]
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    debug_assert!(b.len() >= 4);
    b.first_chunk::<4>().map_or(0, |c| u32::from_le_bytes(*c))
}

#[inline]
fn le_u16(b: &[u8]) -> u16 {
    debug_assert!(b.len() >= 2);
    b.first_chunk::<2>().map_or(0, |c| u16::from_le_bytes(*c))
}

/// The XXH64 hash of `input` under `seed` — the checksum every section
/// (and the table) carries. Exposed publicly so corruption tests can
/// craft adversarial-but-internally-consistent files, and so external
/// tooling can verify snapshots without this crate's reader.
pub fn xxh64(input: &[u8], seed: u64) -> u64 {
    let len = input.len() as u64;
    let mut rest = input;
    let mut h = if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            let (c1, r) = rest.split_at(8);
            let (c2, r) = r.split_at(8);
            let (c3, r) = r.split_at(8);
            let (c4, r) = r.split_at(8);
            v1 = xxh_round(v1, le_u64(c1));
            v2 = xxh_round(v2, le_u64(c2));
            v3 = xxh_round(v3, le_u64(c3));
            v4 = xxh_round(v4, le_u64(c4));
            rest = r;
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh_merge(h, v1);
        h = xxh_merge(h, v2);
        h = xxh_merge(h, v3);
        xxh_merge(h, v4)
    } else {
        seed.wrapping_add(P5)
    };
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        let (c, r) = rest.split_at(8);
        h = (h ^ xxh_round(0, le_u64(c))).rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = r;
    }
    if rest.len() >= 4 {
        let (c, r) = rest.split_at(4);
        h = (h ^ u64::from(le_u32(c)).wrapping_mul(P1))
            .rotate_left(23)
            .wrapping_mul(P2)
            .wrapping_add(P3);
        rest = r;
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(P5)).rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

/// Incremental XXH64: feed bytes with [`Xxh64::update`], read the
/// digest with [`Xxh64::finish`]. Produces bit-identical output to the
/// one-shot [`xxh64`] for any split of the input — the streaming save
/// path hashes each section while writing it, so a payload never has to
/// exist contiguously in memory just to be checksummed.
#[derive(Debug, Clone)]
pub struct Xxh64 {
    v1: u64,
    v2: u64,
    v3: u64,
    v4: u64,
    buf: [u8; 32],
    buf_len: usize,
    total: u64,
    seed: u64,
}

impl Xxh64 {
    /// A fresh hasher under `seed`.
    pub fn new(seed: u64) -> Self {
        Xxh64 {
            v1: seed.wrapping_add(P1).wrapping_add(P2),
            v2: seed.wrapping_add(P2),
            v3: seed,
            v4: seed.wrapping_sub(P1),
            buf: [0u8; 32],
            buf_len: 0,
            total: 0,
            seed,
        }
    }

    #[inline]
    fn stripe(&mut self, b: &[u8]) {
        debug_assert!(b.len() >= 32);
        let (c1, r) = b.split_at(8);
        let (c2, r) = r.split_at(8);
        let (c3, c4) = r.split_at(8);
        self.v1 = xxh_round(self.v1, le_u64(c1));
        self.v2 = xxh_round(self.v2, le_u64(c2));
        self.v3 = xxh_round(self.v3, le_u64(c3));
        self.v4 = xxh_round(self.v4, le_u64(c4));
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut input: &[u8]) {
        self.total = self.total.wrapping_add(input.len() as u64);
        if self.buf_len > 0 {
            let take = (32 - self.buf_len).min(input.len());
            let (head, tail) = input.split_at(take);
            let (_, open) = self.buf.split_at_mut(self.buf_len);
            let (dst, _) = open.split_at_mut(take);
            dst.copy_from_slice(head);
            self.buf_len += take;
            input = tail;
            if self.buf_len < 32 {
                return;
            }
            let stripe = self.buf;
            self.stripe(&stripe);
            self.buf_len = 0;
        }
        while input.len() >= 32 {
            let (s, rest) = input.split_at(32);
            self.stripe(s);
            input = rest;
        }
        let (dst, _) = self.buf.split_at_mut(input.len());
        dst.copy_from_slice(input);
        self.buf_len = input.len();
    }

    /// The digest of everything absorbed so far (the hasher may keep
    /// absorbing afterwards).
    pub fn finish(&self) -> u64 {
        let mut h = if self.total >= 32 {
            let mut h = self
                .v1
                .rotate_left(1)
                .wrapping_add(self.v2.rotate_left(7))
                .wrapping_add(self.v3.rotate_left(12))
                .wrapping_add(self.v4.rotate_left(18));
            h = xxh_merge(h, self.v1);
            h = xxh_merge(h, self.v2);
            h = xxh_merge(h, self.v3);
            xxh_merge(h, self.v4)
        } else {
            self.seed.wrapping_add(P5)
        };
        h = h.wrapping_add(self.total);
        let (mut rest, _) = self.buf.split_at(self.buf_len);
        while rest.len() >= 8 {
            let (c, r) = rest.split_at(8);
            h = (h ^ xxh_round(0, le_u64(c))).rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
            rest = r;
        }
        if rest.len() >= 4 {
            let (c, r) = rest.split_at(4);
            h = (h ^ u64::from(le_u32(c)).wrapping_mul(P1))
                .rotate_left(23)
                .wrapping_mul(P2)
                .wrapping_add(P3);
            rest = r;
        }
        for &b in rest {
            h = (h ^ (b as u64).wrapping_mul(P5)).rotate_left(11).wrapping_mul(P1);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(P2);
        h ^= h >> 29;
        h = h.wrapping_mul(P3);
        h ^ (h >> 32)
    }
}

// ---------------------------------------------------------------------
// The section container.
// ---------------------------------------------------------------------

/// An in-memory snapshot: an ordered list of `(section id, payload)`
/// pairs, serializable to the checksummed wire layout above.
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    sections: Vec<(u32, Vec<u8>)>,
    /// The container version `to_bytes` stamps (and section layouts
    /// follow). Defaults to [`FORMAT_VERSION`]; the legacy writer kept
    /// for compatibility tests dials it back to 1.
    version: u32,
}

impl Default for SnapshotFile {
    fn default() -> Self {
        SnapshotFile { sections: Vec::new(), version: FORMAT_VERSION }
    }
}

impl SnapshotFile {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty snapshot that will serialize as format `version`.
    /// Callers are responsible for pushing section payloads in that
    /// version's layout (this is the compat-test/tooling entry point —
    /// production code always writes [`FORMAT_VERSION`]).
    pub fn new_versioned(version: u32) -> Self {
        SnapshotFile { sections: Vec::new(), version }
    }

    /// The format version this file parses/serializes as.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Appends a section. Ids must be unique per file (the reader
    /// rejects duplicates).
    pub fn push_section(&mut self, id: u32, payload: Vec<u8>) {
        debug_assert!(!self.sections.iter().any(|(i, _)| *i == id), "duplicate section {id}");
        self.sections.push((id, payload));
    }

    /// The payload of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.sections.iter().find(|(i, _)| *i == id).map(|(_, p)| p.as_slice())
    }

    /// Ids of all sections, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|(i, _)| *i).collect()
    }

    /// Serializes to the wire layout.
    ///
    /// # Panics
    /// If more than `u32::MAX` sections were pushed — a writer contract
    /// violation that would otherwise serialize a checksum-valid lie
    /// (the reader's `MAX_SECTIONS` cap is orders of magnitude lower).
    pub fn to_bytes(&self) -> Vec<u8> {
        // audit:allow(no-panic): writer contract — a wrapped section count would produce a checksum-valid corrupt file
        let count = u32::try_from(self.sections.len()).expect("section count fits u32");
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * u64::from(count);
        let total = table_end + self.sections.iter().map(|(_, p)| p.len() as u64).sum::<u64>();
        let mut out = Vec::with_capacity(total as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        let mut table = Vec::with_capacity((TABLE_ENTRY_LEN * count as u64) as usize);
        let mut offset = table_end;
        for (id, payload) in &self.sections {
            table.extend_from_slice(&id.to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            table.extend_from_slice(&xxh64(payload, *id as u64).to_le_bytes());
            offset += payload.len() as u64;
        }
        out.extend_from_slice(&xxh64(&table, self.version as u64).to_le_bytes());
        out.extend_from_slice(&table);
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses and fully validates the wire layout: magic, version,
    /// table checksum, per-entry bounds, and every payload checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotFile> {
        let view = SnapshotSlices::from_bytes(bytes)?;
        Ok(SnapshotFile {
            sections: view.sections.iter().map(|&(id, s)| (id, s.to_vec())).collect(),
            version: view.version,
        })
    }

    /// Writes the snapshot to `path` atomically and durably: the bytes
    /// go to a unique temporary file in the same directory, are synced
    /// to disk (`sync_all` — the rename must never be journaled ahead
    /// of the data it points at), and then renamed over the target —
    /// so an interrupted save (crash, power loss) can never destroy a
    /// previous good snapshot, and a reader never observes a
    /// half-written file. The parent directory is then fsynced so the
    /// rename itself survives power loss; a directory-sync *failure*
    /// is a real error (the caller believes the save durable), and
    /// only platforms that refuse to open directories at all skip it.
    ///
    /// Kill points (crash-fault tests): `snapshot.before_rename` —
    /// the temp file is synced but the target still holds the old
    /// bytes; `snapshot.after_rename` — the rename happened but its
    /// directory entry was never synced. At either point the target
    /// path parses as a complete snapshot (old or new) — never a
    /// half-written one.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<()> {
        let count = u32::try_from(self.sections.len()).map_err(|_| StoreError::Corrupt {
            section: SECTION_TABLE,
            detail: "section count exceeds u32".into(),
        })?;
        let mut w = SnapshotWriter::create(path.as_ref(), self.version, count)?;
        for (id, payload) in &self.sections {
            w.put_section(*id, payload)?;
        }
        w.finish()
    }

    /// Reads and fully validates a snapshot from `path`.
    pub fn read(path: impl AsRef<Path>) -> Result<SnapshotFile> {
        let bytes = std::fs::read(path)
            .map_err(|e| StoreError::Io { op: "read", detail: e.to_string() })?;
        Self::from_bytes(&bytes)
    }
}

static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn tmp_path_for(path: &Path) -> std::path::PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::path::PathBuf::from(tmp)
}

#[inline]
fn io_err(op: &'static str) -> impl Fn(std::io::Error) -> StoreError {
    move |e| StoreError::Io { op, detail: e.to_string() }
}

/// Streams a snapshot to disk section by section, so a payload never
/// has to be buffered alongside the full serialized file (the old
/// `to_bytes` path held every section **twice** — once in the section
/// `Vec`s and once in the output buffer — which at scale is the
/// difference between fitting in memory and not).
///
/// The writer lays down the header and a zeroed section table up
/// front, appends each payload while hashing it incrementally
/// ([`Xxh64`]), then seeks back and backpatches the table (checksum
/// included) in [`SnapshotWriter::finish`]. Atomicity and durability
/// are identical to [`SnapshotFile::write`]: bytes go to a unique
/// temporary, `sync_all`, rename over the target, parent-directory
/// fsync — with the same `snapshot.before_rename` /
/// `snapshot.after_rename` kill points.
///
/// The number of sections is declared at [`SnapshotWriter::create`]
/// time (it fixes the table size); `finish` rejects a mismatch.
#[derive(Debug)]
pub struct SnapshotWriter {
    file: std::fs::File,
    tmp: std::path::PathBuf,
    path: std::path::PathBuf,
    version: u32,
    declared: u32,
    entries: Vec<(u32, u64, u64, u64)>,
    offset: u64,
    finished: bool,
}

impl SnapshotWriter {
    /// Opens the temporary file and reserves header + table space for
    /// exactly `sections` sections.
    pub fn create(path: impl AsRef<Path>, version: u32, sections: u32) -> Result<SnapshotWriter> {
        use std::io::Write as _;
        let path = path.as_ref().to_path_buf();
        let tmp = tmp_path_for(&path);
        let mut file = std::fs::File::create(&tmp).map_err(io_err("create"))?;
        let table_len = TABLE_ENTRY_LEN * u64::from(sections);
        let mut header = Vec::with_capacity((HEADER_LEN + table_len) as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        header.extend_from_slice(&sections.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // table checksum, backpatched
        header.resize((HEADER_LEN + table_len) as usize, 0); // table, backpatched
        let init = file.write_all(&header).map_err(io_err("write"));
        if let Err(e) = init {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(SnapshotWriter {
            file,
            tmp,
            path,
            version,
            declared: sections,
            entries: Vec::with_capacity(sections as usize),
            offset: HEADER_LEN + table_len,
            finished: false,
        })
    }

    fn fail<T>(&mut self, e: StoreError) -> Result<T> {
        self.finished = true; // suppress the Drop cleanup double-remove
        let _ = std::fs::remove_file(&self.tmp);
        Err(e)
    }

    /// Begins streaming section `id`; feed bytes to the returned sink
    /// and call [`SectionSink::end`] when the payload is complete.
    /// Ids must be unique per file (the reader rejects duplicates).
    pub fn begin_section(&mut self, id: u32) -> SectionSink<'_> {
        debug_assert!(!self.entries.iter().any(|&(i, ..)| i == id), "duplicate section {id}");
        SectionSink { w: self, id, hasher: Xxh64::new(u64::from(id)), len: 0 }
    }

    /// Writes a complete in-memory payload as one section.
    pub fn put_section(&mut self, id: u32, payload: &[u8]) -> Result<()> {
        let mut sink = self.begin_section(id);
        sink.write(payload)?;
        sink.end()
    }

    /// Backpatches the section table, syncs, and atomically publishes
    /// the file (see the type docs for the durability contract).
    pub fn finish(mut self) -> Result<()> {
        use std::io::{Seek as _, SeekFrom, Write as _};
        if self.entries.len() as u64 != u64::from(self.declared) {
            let (got, want) = (self.entries.len(), self.declared);
            return self.fail(StoreError::Corrupt {
                section: SECTION_TABLE,
                detail: format!("writer declared {want} sections but streamed {got}"),
            });
        }
        let mut table = Vec::with_capacity((TABLE_ENTRY_LEN * u64::from(self.declared)) as usize);
        for &(id, offset, len, sum) in &self.entries {
            table.extend_from_slice(&id.to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&len.to_le_bytes());
            table.extend_from_slice(&sum.to_le_bytes());
        }
        let table_sum = xxh64(&table, u64::from(self.version));
        let patch = (|| {
            self.file.seek(SeekFrom::Start(16)).map_err(io_err("seek"))?;
            self.file.write_all(&table_sum.to_le_bytes()).map_err(io_err("write"))?;
            self.file.write_all(&table).map_err(io_err("write"))?;
            self.file.sync_all().map_err(io_err("sync"))?;
            crate::faults::hit("snapshot.before_rename")?;
            std::fs::rename(&self.tmp, &self.path).map_err(io_err("rename"))
        })();
        if let Err(e) = patch {
            return self.fail(e);
        }
        self.finished = true;
        crate::faults::hit("snapshot.after_rename")?;
        // Durability of the directory entry (not of the data — that is
        // already synced). An error here means the rename could still
        // be lost to power failure, so it must surface.
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            crate::wal::sync_dir(dir)?;
        }
        Ok(())
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// An in-progress section being streamed through a [`SnapshotWriter`].
#[derive(Debug)]
pub struct SectionSink<'w> {
    w: &'w mut SnapshotWriter,
    id: u32,
    hasher: Xxh64,
    len: u64,
}

impl SectionSink<'_> {
    /// Appends payload bytes, hashing them as they pass through.
    pub fn write(&mut self, bytes: &[u8]) -> Result<()> {
        use std::io::Write as _;
        if let Err(e) = self.w.file.write_all(bytes) {
            return Err(StoreError::Io { op: "write", detail: e.to_string() });
        }
        self.hasher.update(bytes);
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Completes the section, recording its table entry.
    pub fn end(self) -> Result<()> {
        let sum = self.hasher.finish();
        let offset = self.w.offset;
        self.w.offset += self.len;
        self.w.entries.push((self.id, offset, self.len, sum));
        Ok(())
    }
}

/// A zero-copy view of a snapshot's sections, borrowing the file bytes.
///
/// Validation is identical to [`SnapshotFile::from_bytes`] (magic,
/// version, table checksum, bounds, payload checksums) but payloads
/// stay borrowed slices — the warm-start hot path: one `fs::read`, one
/// checksum pass, and the decoders bulk-copy straight out of the file
/// buffer.
#[derive(Debug)]
pub struct SnapshotSlices<'a> {
    sections: Vec<(u32, &'a [u8])>,
    version: u32,
}

impl<'a> SnapshotSlices<'a> {
    /// Parses and fully validates the wire layout without copying any
    /// payload.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<SnapshotSlices<'a>> {
        let file_len = bytes.len() as u64;
        // One length check admits the whole fixed-size header; every
        // field below comes off `split_at` within it, so no later read
        // can go out of bounds.
        let Some(header) = bytes.get(..HEADER_LEN as usize) else {
            return Err(StoreError::Truncated { needed: HEADER_LEN, actual: file_len });
        };
        let (magic, header) = header.split_at(8);
        let (version_b, header) = header.split_at(4);
        let (count_b, table_sum_b) = header.split_at(4);
        if magic != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(StoreError::BadMagic { found });
        }
        let version = le_u32(version_b);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = u64::from(le_u32(count_b));
        // Cap the declared section count before it sizes anything: a
        // forged header could otherwise drive the duplicate-id scan
        // quadratic and the table allocation huge long before any
        // checksum gets a chance to reject the file. Real snapshots
        // have single-digit counts; the cap leaves two orders of
        // magnitude of headroom for future sections.
        if count > MAX_SECTIONS {
            return Err(StoreError::Corrupt {
                section: SECTION_TABLE,
                detail: format!("{count} sections declared (limit {MAX_SECTIONS})"),
            });
        }
        let stored_table_sum = le_u64(table_sum_b);
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count; // cannot overflow: count < 2^32
        let Some(table) = bytes.get(HEADER_LEN as usize..table_end as usize) else {
            return Err(StoreError::Truncated { needed: table_end, actual: file_len });
        };
        let table_sum = xxh64(table, version as u64);
        if table_sum != stored_table_sum {
            return Err(StoreError::ChecksumMismatch {
                section: SECTION_TABLE,
                expected: stored_table_sum,
                actual: table_sum,
            });
        }
        let mut sections: Vec<(u32, &'a [u8])> = Vec::with_capacity(count as usize);
        for entry in table.chunks_exact(TABLE_ENTRY_LEN as usize) {
            let (id_b, entry) = entry.split_at(4);
            let (_reserved, entry) = entry.split_at(4);
            let (offset_b, entry) = entry.split_at(8);
            let (len_b, sum_b) = entry.split_at(8);
            let id = le_u32(id_b);
            let offset = le_u64(offset_b);
            let len = le_u64(len_b);
            let stored_sum = le_u64(sum_b);
            let end = offset.checked_add(len).ok_or(StoreError::SectionOverflow {
                section: id,
                offset,
                len,
                file_len,
            })?;
            if end > file_len {
                return Err(StoreError::SectionOverflow { section: id, offset, len, file_len });
            }
            if sections.iter().any(|(i, _)| *i == id) {
                return Err(StoreError::Corrupt {
                    section: id,
                    detail: "section id appears twice".into(),
                });
            }
            let Some(payload) = bytes.get(offset as usize..end as usize) else {
                return Err(StoreError::SectionOverflow { section: id, offset, len, file_len });
            };
            let sum = xxh64(payload, u64::from(id));
            if sum != stored_sum {
                return Err(StoreError::ChecksumMismatch {
                    section: id,
                    expected: stored_sum,
                    actual: sum,
                });
            }
            sections.push((id, payload));
        }
        Ok(SnapshotSlices { sections, version })
    }

    /// The format version the file declared (already range-checked).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The payload of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        self.sections.iter().find(|(i, _)| *i == id).map(|&(_, p)| p)
    }

    /// Ids of all sections, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|(i, _)| *i).collect()
    }
}

// ---------------------------------------------------------------------
// Little-endian section cursors used by the codec.
// ---------------------------------------------------------------------

/// Append-only little-endian byte builder for one section payload.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one `u32`.
    #[inline]
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends one `u64`.
    #[inline]
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends raw bytes.
    #[inline]
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a flat `u32` array (no length prefix; the codec writes
    /// lengths explicitly where needed).
    pub fn put_u32_slice(&mut self, xs: &[u32]) {
        self.buf.reserve(xs.len() * 4);
        for &x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends an id array at the file's id width: two bytes per
    /// element when `narrow` (every value must fit, with `u32::MAX` —
    /// the shared "none" sentinel — mapped to `u16::MAX`), four
    /// otherwise. Narrow files are roughly half the size, which is
    /// most of the read+checksum cost of a warm start.
    ///
    /// # Panics
    /// In narrow mode, on a value that fits neither the two-byte width
    /// nor the sentinel — a caller contract violation that would
    /// otherwise be *silently truncated into a checksum-valid file*,
    /// the one corruption the reader could never detect. The check is
    /// unconditional (not `debug_assert`) for exactly that reason.
    pub fn put_id_slice(&mut self, xs: &[u32], narrow: bool) {
        if !narrow {
            self.put_u32_slice(xs);
            return;
        }
        self.buf.reserve(xs.len() * 2);
        for &x in xs {
            assert!(x < u32::from(u16::MAX) || x == u32::MAX, "id {x} overflows the narrow width");
            // The assert admits exactly the values where this is lossless:
            // in-range ids convert, and the u32 sentinel maps to the u16 one.
            let v = u16::try_from(x).unwrap_or(u16::MAX);
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a `usize` array widened to `u64`.
    pub fn put_usize_slice_as_u64(&mut self, xs: &[usize]) {
        self.buf.reserve(xs.len() * 8);
        for &x in xs {
            self.buf.extend_from_slice(&(x as u64).to_le_bytes());
        }
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian cursor over one section payload. Every
/// overrun or leftover byte is a typed [`StoreError::Corrupt`] naming
/// the section — decoding can never panic on malformed input.
#[derive(Debug)]
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: u32,
}

impl<'a> SectionReader<'a> {
    /// A cursor over `buf`, reporting errors against `section`.
    pub fn new(buf: &'a [u8], section: u32) -> Self {
        SectionReader { buf, pos: 0, section }
    }

    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt { section: self.section, detail: detail.into() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("ran out of bytes at offset {}", self.pos)))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.corrupt(format!("ran out of bytes at offset {}", self.pos)))?;
        self.pos = end;
        Ok(out)
    }

    /// Reads one `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(le_u32(self.take(4)?))
    }

    /// Reads one `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(le_u64(self.take(8)?))
    }

    /// Reads one `u64` and narrows it to `usize`.
    pub fn usize64(&mut self) -> Result<usize> {
        let x = self.u64()?;
        usize::try_from(x).map_err(|_| self.corrupt(format!("length {x} exceeds address space")))
    }

    /// Reads a flat `u32` array of `count` elements.
    pub fn u32_vec(&mut self, count: usize) -> Result<Vec<u32>> {
        let n = count
            .checked_mul(4)
            .ok_or_else(|| self.corrupt(format!("u32 array length {count} overflows")))?;
        Ok(self.take(n)?.chunks_exact(4).map(le_u32).collect())
    }

    /// Reads an id array written by [`SectionWriter::put_id_slice`] at
    /// the same width (`u16::MAX` widens back to `u32::MAX`).
    pub fn id_vec(&mut self, count: usize, narrow: bool) -> Result<Vec<u32>> {
        if !narrow {
            return self.u32_vec(count);
        }
        let n = count
            .checked_mul(2)
            .ok_or_else(|| self.corrupt(format!("id array length {count} overflows")))?;
        Ok(self
            .take(n)?
            .chunks_exact(2)
            .map(|c| {
                let v = le_u16(c);
                if v == u16::MAX {
                    u32::MAX
                } else {
                    u32::from(v)
                }
            })
            .collect())
    }

    /// Reads a flat `u64` array of `count` elements, each narrowed to
    /// `usize`.
    pub fn usize_vec_from_u64(&mut self, count: usize) -> Result<Vec<usize>> {
        let n = count
            .checked_mul(8)
            .ok_or_else(|| self.corrupt(format!("u64 array length {count} overflows")))?;
        self.take(n)?
            .chunks_exact(8)
            .map(|c| {
                usize::try_from(le_u64(c)).map_err(|_| self.corrupt("offset exceeds address space"))
            })
            .collect()
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the last field",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the canonical XXH64 implementation.
    #[test]
    fn xxh64_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        // Long input pins the 32-byte stripe loop and merge rounds
        // against the canonical implementation — the path every real
        // section payload takes (and the claim that external tooling
        // can verify snapshots with stock XXH64).
        let long: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        assert_eq!(xxh64(&long, 0), 0x6EF4_36B0_0EBA_4078);
        assert_ne!(xxh64(&long, 0), xxh64(&long, 1));
        let mut flipped = long.clone();
        flipped[500] ^= 1;
        assert_ne!(xxh64(&long, 0), xxh64(&flipped, 0));
    }

    /// The incremental hasher must agree with the one-shot function for
    /// every split of the input, including splits inside the 32-byte
    /// stripe buffer and inputs shorter than one stripe.
    #[test]
    fn streaming_hasher_matches_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            for len in [0usize, 1, 3, 4, 7, 8, 31, 32, 33, 63, 64, 100, 999, 1000] {
                let input = &data[..len];
                let want = xxh64(input, seed);
                for chunk in [1usize, 5, 7, 13, 31, 32, 33, 64, 1000] {
                    let mut h = Xxh64::new(seed);
                    for piece in input.chunks(chunk) {
                        h.update(piece);
                    }
                    assert_eq!(h.finish(), want, "seed={seed} len={len} chunk={chunk}");
                }
            }
        }
    }

    /// The streaming writer must produce byte-identical files to the
    /// buffered `to_bytes` path (same table, same checksums).
    #[test]
    fn streaming_writer_matches_to_bytes() {
        let dir = std::env::temp_dir().join(format!("pcs_swriter_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.pcs");
        let mut f = SnapshotFile::new();
        f.push_section(7, vec![1, 2, 3]);
        f.push_section(9, Vec::new());
        f.push_section(2, (0u8..200).collect());
        let mut w = SnapshotWriter::create(&path, f.version(), 3).unwrap();
        w.put_section(7, &[1, 2, 3]).unwrap();
        // Stream one section in several pieces to exercise the sink.
        w.put_section(9, &[]).unwrap();
        let mut sink = w.begin_section(2);
        let data: Vec<u8> = (0u8..200).collect();
        for piece in data.chunks(7) {
            sink.write(piece).unwrap();
        }
        sink.end().unwrap();
        w.finish().unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, f.to_bytes());
        let back = SnapshotFile::read(&path).unwrap();
        assert_eq!(back.section_ids(), vec![7, 9, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Declaring the wrong section count must fail typed and leave no
    /// temp file behind.
    #[test]
    fn streaming_writer_rejects_count_mismatch() {
        let dir = std::env::temp_dir().join(format!("pcs_swriter_mis_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.pcs");
        let mut w = SnapshotWriter::create(&path, FORMAT_VERSION, 2).unwrap();
        w.put_section(1, &[0]).unwrap();
        let err = w.finish().unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { section: SECTION_TABLE, .. }));
        assert!(!path.exists());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "temp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn container_round_trips() {
        let mut f = SnapshotFile::new();
        f.push_section(7, vec![1, 2, 3]);
        f.push_section(9, Vec::new());
        f.push_section(2, (0u8..200).collect());
        let bytes = f.to_bytes();
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.section(7), Some(&[1u8, 2, 3][..]));
        assert_eq!(back.section(9), Some(&[][..]));
        assert_eq!(back.section(2).unwrap().len(), 200);
        assert_eq!(back.section(1), None);
        assert_eq!(back.section_ids(), vec![7, 9, 2]);
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut w = SectionWriter::new();
        w.put_u32(5);
        w.put_u64(6);
        let payload = w.finish();
        let mut r = SectionReader::new(&payload, 3);
        assert_eq!(r.u32().unwrap(), 5);
        assert_eq!(r.u64().unwrap(), 6);
        assert!(matches!(r.u32(), Err(StoreError::Corrupt { section: 3, .. })));

        let mut r = SectionReader::new(&payload, 3);
        assert!(matches!(r.u32_vec(usize::MAX), Err(StoreError::Corrupt { .. })));
        let _ = r.u32().unwrap();
        assert!(matches!(r.finish(), Err(StoreError::Corrupt { .. })));
    }
}
