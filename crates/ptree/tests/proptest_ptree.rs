//! Property tests for the profile-tree substrate: set-algebra laws,
//! lattice moves, and enumeration invariants.

use pcs_ptree::enumerate::{count_rooted_subtrees, enumerate_rooted_subtrees};
use pcs_ptree::{PTree, QuerySpace, Taxonomy};
use proptest::prelude::*;

/// Strategy: a random taxonomy of up to 14 labels plus two label picks.
fn instance() -> impl Strategy<Value = (Vec<u32>, Vec<u16>, Vec<u16>)> {
    // parents[i] encodes the parent (mod available ids) of label i+1.
    let parents = proptest::collection::vec(any::<u32>(), 0..13);
    (
        parents,
        proptest::collection::vec(any::<u16>(), 0..8),
        proptest::collection::vec(any::<u16>(), 0..8),
    )
}

fn build(parents: &[u32]) -> Taxonomy {
    let mut tax = Taxonomy::new("r");
    for (i, &p) in parents.iter().enumerate() {
        let parent = p % (i as u32 + 1);
        tax.add_child(parent, &format!("n{}", i + 1)).unwrap();
    }
    tax
}

fn pick(tax: &Taxonomy, raw: &[u16]) -> PTree {
    let labels = raw.iter().map(|&r| r as u32 % tax.len() as u32);
    PTree::from_labels(tax, labels).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn intersection_union_algebra((parents, ra, rb) in instance()) {
        let tax = build(&parents);
        let a = pick(&tax, &ra);
        let b = pick(&tax, &rb);
        let i = a.intersect(&b);
        let u = a.union(&b);
        // Lattice laws.
        prop_assert!(i.is_subtree_of(&a) && i.is_subtree_of(&b));
        prop_assert!(a.is_subtree_of(&u) && b.is_subtree_of(&u));
        prop_assert_eq!(a.intersect(&a), a.clone());
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&b), b.union(&a));
        // Inclusion–exclusion on node counts.
        prop_assert_eq!(i.len() + u.len(), a.len() + b.len());
        // Everything stays ancestor-closed.
        prop_assert!(tax.is_ancestor_closed(i.nodes()));
        prop_assert!(tax.is_ancestor_closed(u.nodes()));
        // Absorption.
        prop_assert_eq!(a.intersect(&u), a.clone());
        prop_assert_eq!(a.union(&i), a);
    }

    #[test]
    fn subtree_relation_is_partial_order((parents, ra, rb) in instance()) {
        let tax = build(&parents);
        let a = pick(&tax, &ra);
        let b = pick(&tax, &rb);
        // Reflexive; antisymmetric.
        prop_assert!(a.is_subtree_of(&a));
        if a.is_subtree_of(&b) && b.is_subtree_of(&a) {
            prop_assert_eq!(&a, &b);
        }
        // Consistent with intersection.
        prop_assert_eq!(a.is_subtree_of(&b), a.intersect(&b) == a);
    }

    #[test]
    fn query_space_moves_preserve_validity((parents, ra, _rb) in instance()) {
        let tax = build(&parents);
        let tq = pick(&tax, &ra);
        let space = QuerySpace::new(&tax, &tq).unwrap();
        // Walk a few random-ish candidates via rightmost extension and
        // check children/parents stay valid and invert each other.
        let mut stack = vec![space.empty()];
        let mut steps = 0;
        while let Some(s) = stack.pop() {
            if steps > 200 { break; }
            steps += 1;
            prop_assert!(space.is_valid(&s));
            for p in space.lattice_children(&s) {
                let child = s.with(p);
                prop_assert!(space.is_valid(&child));
                // Removing the added node gets us back.
                prop_assert!(space.lattice_parents(&child).contains(&p));
                prop_assert_eq!(child.without(p), s.clone());
            }
            for p in space.rightmost_extensions(&s) {
                stack.push(s.with(p));
            }
        }
    }

    #[test]
    fn enumeration_matches_count((parents, ra, _rb) in instance()) {
        let tax = build(&parents);
        let tq = pick(&tax, &ra);
        if tq.len() > 12 {
            return Ok(()); // keep the exhaustive check small
        }
        let space = QuerySpace::new(&tax, &tq).unwrap();
        let all = enumerate_rooted_subtrees(&space);
        prop_assert_eq!(all.len() as u128, count_rooted_subtrees(&space));
        // All unique and valid; each converts to a PTree inside T(q).
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        prop_assert_eq!(set.len(), all.len());
        for s in &all {
            prop_assert!(space.is_valid(s));
            let p = space.to_ptree(s);
            prop_assert!(p.is_subtree_of(&tq));
            prop_assert_eq!(space.from_ptree(&p).unwrap(), s.clone());
        }
    }

    #[test]
    fn leaves_determine_ptree((parents, ra, _rb) in instance()) {
        let tax = build(&parents);
        let a = pick(&tax, &ra);
        let rebuilt = PTree::from_labels(&tax, a.leaves(&tax)).unwrap();
        prop_assert_eq!(rebuilt, a);
    }
}
