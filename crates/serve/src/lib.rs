//! # pcs-serve — the std-only network serving layer
//!
//! Puts a [`PcsEngine`](pcs_engine::PcsEngine) behind a socket: a
//! hand-rolled HTTP/1.1 server over `std::net` (no async runtime, no
//! external dependencies — the container builds offline), plus the
//! closed-loop load generator that measures it.
//!
//! The interesting engineering lives at three points:
//!
//! * **Admission control** ([`server`]) — a bounded live-connection
//!   count checked at the accept gate; excess connections are shed
//!   with an immediate `503` instead of queueing without bound. Under
//!   overload the server degrades by *refusing* work, never by
//!   stalling or panicking.
//! * **Cross-request batching** ([`batch`]) — concurrent queries are
//!   gathered for a short window, deduplicated, and executed through
//!   `query_batch` under a single epoch pin, so a zipfian hot set
//!   collapses to one search per distinct request per window.
//! * **Total server-side validation** ([`protocol`]) — every
//!   out-of-range vertex, `k = 0`, absurd community cap, or malformed
//!   body is a typed 4xx produced *before* any snapshot or scratch
//!   buffer is touched.
//! * **WAL replication** ([`replica`]) — a durable primary exposes its
//!   write-ahead log at `GET /wal?from=<epoch>`; an [`HttpFollower`]
//!   tails it into a local engine, re-validating every frame, so reads
//!   scale out with the same prefix-consistency guarantee crash
//!   recovery provides.
//!
//! The protocol grammar and the `BENCH_serve.json` schema are
//! documented in `crates/README.md` ("Serving layer").

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod http;
pub mod loadgen;
pub mod protocol;
pub mod replica;
pub mod server;

pub use batch::Batcher;
pub use http::{HttpConn, HttpError, Method, Request, Response};
pub use loadgen::{run_load, LatencyUs, LoadConfig, LoadOp, LoadReport};
pub use protocol::{ApiError, Route};
pub use replica::{HttpFollower, ReplicaConfig, ReplicaError};
pub use server::{PcsServer, ServeConfig, ServeError, ServerStats, StatsSnapshot};
