//! The CP-tree index (Section 4.2 / Algorithm 2 of the paper).
//!
//! One node per GP-tree label; each node stores the CL-tree of the
//! subgraph induced by the vertices whose P-trees contain that label.
//! Parent/child links between CP-tree nodes simply follow the taxonomy.
//! A `headMap` records, per vertex, the leaf labels of its P-tree so
//! the whole profile can be restored from the index (upward closure).
//!
//! Build cost is `O(|P| · m · α(n))` and space `O(|P| · n)` as analyzed
//! in the paper; the per-label CL-trees are independent, so construction
//! optionally fans out across threads.

use pcs_graph::{Graph, VertexId};
use pcs_ptree::{LabelId, PTree, Taxonomy};

use crate::cltree::ClTree;
use crate::{IndexError, Result};

/// One CP-tree node: a taxonomy label plus the CL-tree of its induced
/// subgraph.
#[derive(Clone, Debug)]
pub struct CpNode {
    /// The label this node indexes.
    pub label: LabelId,
    /// Sorted vertices whose P-tree contains `label`.
    pub vertices: Vec<VertexId>,
    /// The CL-tree over those vertices (the paper's per-node
    /// `vertexNodeMap`).
    pub cl: ClTree,
}

/// The CP-tree index.
#[derive(Clone, Debug)]
pub struct CpTree {
    /// Indexed by `LabelId`; `None` when no vertex carries the label.
    nodes: Vec<Option<CpNode>>,
    /// `headMap`: per vertex, the leaf labels of its P-tree.
    head_map: Vec<Vec<LabelId>>,
    n: usize,
}

impl CpTree {
    /// Builds the index sequentially (Algorithm 2).
    pub fn build(g: &Graph, tax: &Taxonomy, profiles: &[PTree]) -> Result<CpTree> {
        Self::build_with_threads(g, tax, profiles, 1)
    }

    /// Builds the index, constructing per-label CL-trees on up to
    /// `threads` worker threads (they are fully independent).
    pub fn build_with_threads(
        g: &Graph,
        tax: &Taxonomy,
        profiles: &[PTree],
        threads: usize,
    ) -> Result<CpTree> {
        if g.num_vertices() != profiles.len() {
            return Err(IndexError::ProfileCountMismatch {
                vertices: g.num_vertices(),
                profiles: profiles.len(),
            });
        }
        // Lines 2-7 of Algorithm 2: bucket vertices per label and fill
        // the headMap from P-tree leaves.
        let mut vertices_of: Vec<Vec<VertexId>> = vec![Vec::new(); tax.len()];
        let mut head_map: Vec<Vec<LabelId>> = Vec::with_capacity(profiles.len());
        for (v, p) in profiles.iter().enumerate() {
            for &l in p.nodes() {
                if l as usize >= tax.len() {
                    return Err(IndexError::UnknownLabel(l));
                }
                vertices_of[l as usize].push(v as VertexId);
            }
            head_map.push(p.leaves(tax));
        }
        // Lines 8-10: build one CL-tree per populated label.
        let threads = threads.max(1);
        let mut nodes: Vec<Option<CpNode>> = vec![None; tax.len()];
        if threads == 1 {
            for (label, verts) in vertices_of.into_iter().enumerate() {
                if verts.is_empty() {
                    continue;
                }
                let cl = ClTree::build_on_subset(g, &verts);
                nodes[label] = Some(CpNode { label: label as LabelId, vertices: verts, cl });
            }
        } else {
            let work: Vec<(usize, Vec<VertexId>)> =
                vertices_of.into_iter().enumerate().filter(|(_, v)| !v.is_empty()).collect();
            let built: Vec<(usize, CpNode)> = std::thread::scope(|scope| {
                let chunk = work.len().div_ceil(threads).max(1);
                let handles: Vec<_> = work
                    .chunks(chunk)
                    .map(|batch| {
                        scope.spawn(move || {
                            batch
                                .iter()
                                .map(|(label, verts)| {
                                    let cl = ClTree::build_on_subset(g, verts);
                                    (
                                        *label,
                                        CpNode {
                                            label: *label as LabelId,
                                            vertices: verts.clone(),
                                            cl,
                                        },
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("index worker panicked")).collect()
            });
            for (label, node) in built {
                nodes[label] = Some(node);
            }
        }
        Ok(CpTree { nodes, head_map, n: g.num_vertices() })
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of populated CP-tree nodes (labels carried by at least
    /// one vertex).
    pub fn num_populated_labels(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// The CP-tree node of `label`, if populated.
    pub fn node(&self, label: LabelId) -> Option<&CpNode> {
        self.nodes.get(label as usize)?.as_ref()
    }

    /// Sorted vertices carrying `label` (empty slice when none).
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.node(label).map_or(&[], |n| &n.vertices)
    }

    /// The paper's `I.get(k, q, t)`: the k-ĉore containing `q` in the
    /// subgraph of vertices carrying `label`. Sorted; `None` when it
    /// does not exist.
    pub fn get(&self, k: u32, q: VertexId, label: LabelId) -> Option<Vec<VertexId>> {
        self.node(label)?.cl.get(q, k)
    }

    /// Leaf labels of `v`'s P-tree (the `headMap` entry).
    pub fn head(&self, v: VertexId) -> &[LabelId] {
        &self.head_map[v as usize]
    }

    /// Restores `T(v)` from the headMap by upward closure — the paper's
    /// "Restore P-trees" operation.
    pub fn restore_ptree(&self, tax: &Taxonomy, v: VertexId) -> PTree {
        PTree::from_labels(tax, self.head_map[v as usize].iter().copied())
            .expect("headMap labels always come from the build taxonomy")
    }

    /// Approximate heap footprint in bytes (for the paper's space-cost
    /// discussion and the scalability harness).
    pub fn memory_bytes(&self) -> usize {
        let mut total = 0usize;
        for node in self.nodes.iter().flatten() {
            total += node.vertices.len() * std::mem::size_of::<VertexId>();
            total += node.cl.num_vertices()
                * (std::mem::size_of::<VertexId>() + std::mem::size_of::<u32>() * 2);
            total += node.cl.num_nodes() * 48;
        }
        for h in &self.head_map {
            total += h.len() * std::mem::size_of::<LabelId>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_graph::core::CoreDecomposition;

    /// Fig. 1(a): graph A..H with the CCS-fragment profiles.
    fn figure1() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),         // A
            PTree::from_labels(&t, [ml, ai]).unwrap(),          // B
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),      // C
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(), // D
            PTree::from_labels(&t, [dms, hw]).unwrap(),         // E
            PTree::from_labels(&t, [is, hw]).unwrap(),          // F
            PTree::from_labels(&t, [hw, cm]).unwrap(),          // G
            PTree::from_labels(&t, [is, hw]).unwrap(),          // H
        ];
        (g, t, profiles)
    }

    #[test]
    fn build_validates_inputs() {
        let (g, t, mut profiles) = figure1();
        profiles.pop();
        assert_eq!(
            CpTree::build(&g, &t, &profiles).unwrap_err(),
            IndexError::ProfileCountMismatch { vertices: 8, profiles: 7 }
        );
    }

    #[test]
    fn per_label_get_matches_bruteforce() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        for label in 0..t.len() as u32 {
            let with_label: Vec<u32> =
                (0..8u32).filter(|&v| profiles[v as usize].contains(label)).collect();
            assert_eq!(idx.vertices_with_label(label), &with_label[..]);
            if with_label.is_empty() {
                continue;
            }
            let (sub, ids) = g.induced_subgraph(&with_label);
            let cd = CoreDecomposition::new(&sub);
            for &q in &with_label {
                let q_local = ids.binary_search(&q).unwrap() as u32;
                for k in 0..4 {
                    let expect = cd
                        .kcore_component(&sub, q_local, k)
                        .map(|c| c.into_iter().map(|v| ids[v as usize]).collect::<Vec<_>>());
                    assert_eq!(idx.get(k, q, label), expect, "label={label} q={q} k={k}");
                }
            }
            // Vertices without the label are absent.
            for v in 0..8u32 {
                if !with_label.contains(&v) {
                    assert!(idx.get(0, v, label).is_none());
                }
            }
        }
    }

    #[test]
    fn root_label_indexes_everyone() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        assert_eq!(idx.vertices_with_label(Taxonomy::ROOT).len(), 8);
        // 2-ĉore of D under the root label = whole graph's 2-ĉore.
        assert_eq!(idx.get(2, 3, Taxonomy::ROOT).unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let _ = g;
    }

    #[test]
    fn head_map_restores_ptrees() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        for v in 0..8u32 {
            assert_eq!(idx.restore_ptree(&t, v), profiles[v as usize], "vertex {v}");
        }
        // B's leaves are exactly ML and AI.
        let mut head = idx.head(1).to_vec();
        head.sort_unstable();
        let mut expect = vec![t.id_of("ML").unwrap(), t.id_of("AI").unwrap()];
        expect.sort_unstable();
        assert_eq!(head, expect);
        let _ = g;
    }

    #[test]
    fn nested_label_cores_shrink() {
        // I.get(k,q,t) ⊆ I.get(k,q,parent(t)) — the containment the
        // paper's verifyPtree relies on.
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        for label in 1..t.len() as u32 {
            let parent = t.parent(label);
            for q in 0..8u32 {
                for k in 0..3 {
                    if let Some(child_core) = idx.get(k, q, label) {
                        let parent_core =
                            idx.get(k, q, parent).expect("parent label core must exist");
                        assert!(
                            child_core.iter().all(|v| parent_core.binary_search(v).is_ok()),
                            "label={label} q={q} k={k}"
                        );
                    }
                }
            }
        }
        let _ = g;
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let (g, t, profiles) = figure1();
        let seq = CpTree::build(&g, &t, &profiles).unwrap();
        let par = CpTree::build_with_threads(&g, &t, &profiles, 4).unwrap();
        assert_eq!(seq.num_populated_labels(), par.num_populated_labels());
        for label in 0..t.len() as u32 {
            assert_eq!(seq.vertices_with_label(label), par.vertices_with_label(label));
            for q in 0..8u32 {
                for k in 0..4 {
                    assert_eq!(seq.get(k, q, label), par.get(k, q, label));
                }
            }
        }
    }

    #[test]
    fn unpopulated_label_behaviour() {
        let (g, mut t, mut profiles) = figure1();
        let lonely = t.add_child(Taxonomy::ROOT, "lonely").unwrap();
        // Rebuild profiles against the grown taxonomy (ids unchanged).
        profiles = profiles
            .into_iter()
            .map(|p| PTree::from_labels(&t, p.nodes().iter().copied().skip(1)).unwrap())
            .collect();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        assert!(idx.node(lonely).is_none());
        assert!(idx.get(0, 0, lonely).is_none());
        assert!(idx.vertices_with_label(lonely).is_empty());
    }

    #[test]
    fn memory_accounting_positive() {
        let (g, t, profiles) = figure1();
        let idx = CpTree::build(&g, &t, &profiles).unwrap();
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.num_vertices(), 8);
        assert!(idx.num_populated_labels() >= 6);
    }
}
