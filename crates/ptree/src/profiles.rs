//! Profile collections that may fault in from disk.
//!
//! Algorithms consume per-vertex P-trees through [`ProfilesRef`], a
//! `Copy` view that is either a plain slice (the resident case — zero
//! overhead beyond one enum branch) or a [`ProfileSource`], an object
//! that materializes vertex ranges on first touch. The engine's
//! file-backed snapshot loader (in `pcs-store`) implements
//! [`ProfileSource`] over checksummed on-disk chunks, so a query on a
//! freshly loaded replica reads only the profile ranges it actually
//! inspects.
//!
//! [`ProfilesHandle`] is the owning analogue used by long-lived holders
//! (engine snapshots, the sharded index facade): cheap to clone, and
//! densifiable in one pass when a mutation needs the whole vector.

use crate::ptree::PTree;
use std::sync::Arc;

/// Vertex-indexed P-tree storage that materializes on demand.
///
/// `get` returns `None` for an out-of-range vertex **or** when the
/// backing bytes turn out to be damaged. Implementations must record
/// the typed cause of a damage-induced `None` in their own fault cell
/// *before* returning, and `fault` must report it; callers that
/// tolerate `None` as "no profile" are required to consult `fault`
/// before trusting any answer derived from the collection (the engine
/// does this once per query, so a damaged chunk yields a typed error,
/// never a silently smaller community).
pub trait ProfileSource: Send + Sync {
    /// Number of vertices (always known without materializing).
    fn len(&self) -> usize;

    /// True when there are no vertices.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The profile of vertex `v`, faulting its range in on first touch.
    fn get(&self, v: usize) -> Option<&PTree>;

    /// Human-readable description of the first materialization failure,
    /// if any occurred. (The typed error is kept by the storage layer;
    /// this is the trait-level signal that an answer may be based on
    /// incomplete data and must be discarded.)
    fn fault(&self) -> Option<String>;

    /// Materializes every vertex and returns the dense vector, cached
    /// so repeated calls are one `Arc` clone.
    fn materialize(&self) -> Result<Arc<Vec<PTree>>, String>;

    /// Borrowed dense view; only available once fully materialized.
    fn dense(&self) -> Option<&[PTree]>;
}

/// A borrowed, `Copy` view over either a resident slice or a lazy
/// source. This is what [`QueryContext`](../..) and the algorithm layer
/// read profiles through.
#[derive(Clone, Copy)]
pub enum ProfilesRef<'a> {
    /// Resident profiles.
    Slice(&'a [PTree]),
    /// File-backed profiles that fault in per range.
    Source(&'a dyn ProfileSource),
}

impl<'a> ProfilesRef<'a> {
    /// Number of vertices.
    pub fn len(self) -> usize {
        match self {
            ProfilesRef::Slice(s) => s.len(),
            ProfilesRef::Source(s) => s.len(),
        }
    }

    /// True when there are no vertices.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// The profile of vertex `v` (`None` when out of range, or when a
    /// lazy source failed to fault the range in — see
    /// [`ProfileSource::get`] for the discipline that implies).
    pub fn get(self, v: usize) -> Option<&'a PTree> {
        match self {
            ProfilesRef::Slice(s) => s.get(v),
            ProfilesRef::Source(s) => s.get(v),
        }
    }

    /// First materialization failure of a lazy source (`None` for
    /// slices, which cannot fail).
    pub fn fault(self) -> Option<String> {
        match self {
            ProfilesRef::Slice(_) => None,
            ProfilesRef::Source(s) => s.fault(),
        }
    }

    /// The resident slice, when this view is (or has become) dense.
    pub fn as_slice(self) -> Option<&'a [PTree]> {
        match self {
            ProfilesRef::Slice(s) => Some(s),
            ProfilesRef::Source(s) => s.dense(),
        }
    }
}

impl<'a> From<&'a [PTree]> for ProfilesRef<'a> {
    fn from(s: &'a [PTree]) -> Self {
        ProfilesRef::Slice(s)
    }
}

impl<'a> From<&'a Vec<PTree>> for ProfilesRef<'a> {
    fn from(s: &'a Vec<PTree>) -> Self {
        ProfilesRef::Slice(s.as_slice())
    }
}

impl<'a, const N: usize> From<&'a [PTree; N]> for ProfilesRef<'a> {
    fn from(s: &'a [PTree; N]) -> Self {
        ProfilesRef::Slice(s.as_slice())
    }
}

impl<'a> From<&'a ProfilesHandle> for ProfilesRef<'a> {
    fn from(h: &'a ProfilesHandle) -> Self {
        h.as_ref()
    }
}

impl std::fmt::Debug for ProfilesRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            ProfilesRef::Slice(_) => "slice",
            ProfilesRef::Source(_) => "source",
        };
        f.debug_struct("ProfilesRef").field("kind", &kind).field("len", &self.len()).finish()
    }
}

/// Owning, cheaply clonable profile storage: dense, or backed by a
/// shared lazy source.
#[derive(Clone)]
pub enum ProfilesHandle {
    /// Resident profiles, shared by `Arc`.
    Dense(Arc<Vec<PTree>>),
    /// A shared lazy source (clones share materialization state).
    Lazy(Arc<dyn ProfileSource>),
}

impl ProfilesHandle {
    /// Wraps a resident vector.
    pub fn dense(profiles: Arc<Vec<PTree>>) -> ProfilesHandle {
        ProfilesHandle::Dense(profiles)
    }

    /// Wraps a lazy source.
    pub fn lazy(source: Arc<dyn ProfileSource>) -> ProfilesHandle {
        ProfilesHandle::Lazy(source)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        match self {
            ProfilesHandle::Dense(p) => p.len(),
            ProfilesHandle::Lazy(s) => s.len(),
        }
    }

    /// True when there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The profile of vertex `v`; see [`ProfileSource::get`] for the
    /// lazy-failure contract.
    pub fn get(&self, v: usize) -> Option<&PTree> {
        match self {
            ProfilesHandle::Dense(p) => p.get(v),
            ProfilesHandle::Lazy(s) => s.get(v),
        }
    }

    /// The borrowed view to hand to the algorithm layer.
    pub fn as_ref(&self) -> ProfilesRef<'_> {
        match self {
            ProfilesHandle::Dense(p) => ProfilesRef::Slice(p),
            ProfilesHandle::Lazy(s) => ProfilesRef::Source(&**s),
        }
    }

    /// First materialization failure, if any (`None` for dense).
    pub fn fault(&self) -> Option<String> {
        match self {
            ProfilesHandle::Dense(_) => None,
            ProfilesHandle::Lazy(s) => s.fault(),
        }
    }

    /// The dense vector, materializing everything on first call. The
    /// mutation path uses this: updates work on the whole vector, so a
    /// lazily loaded replica densifies on its first applied batch.
    pub fn to_dense(&self) -> Result<Arc<Vec<PTree>>, String> {
        match self {
            ProfilesHandle::Dense(p) => Ok(Arc::clone(p)),
            ProfilesHandle::Lazy(s) => s.materialize(),
        }
    }

    /// True when every vertex is resident.
    pub fn is_materialized(&self) -> bool {
        match self {
            ProfilesHandle::Dense(_) => true,
            ProfilesHandle::Lazy(s) => s.dense().is_some(),
        }
    }
}

impl std::fmt::Debug for ProfilesHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            ProfilesHandle::Dense(_) => "dense",
            ProfilesHandle::Lazy(_) => "lazy",
        };
        f.debug_struct("ProfilesHandle")
            .field("kind", &kind)
            .field("len", &self.len())
            .field("materialized", &self.is_materialized())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_view_roundtrips() {
        let profiles = vec![PTree::root_only(), PTree::root_only()];
        let view: ProfilesRef<'_> = (&profiles).into();
        assert_eq!(view.len(), 2);
        assert!(view.get(1).is_some());
        assert!(view.get(2).is_none());
        assert!(view.fault().is_none());
        assert_eq!(view.as_slice().unwrap().len(), 2);
    }

    #[test]
    fn dense_handle_matches_slice_semantics() {
        let h = ProfilesHandle::dense(Arc::new(vec![PTree::root_only(); 3]));
        assert_eq!(h.len(), 3);
        assert!(h.is_materialized());
        assert!(h.get(0).is_some());
        assert_eq!(h.to_dense().unwrap().len(), 3);
        assert_eq!(h.as_ref().len(), 3);
    }
}
