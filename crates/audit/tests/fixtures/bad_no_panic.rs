// Fixture: every panicking construct the no-panic rule forbids, and
// nothing else. Linted under a hot-path pseudo-path.

fn take(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("second element");
    if *first > *second {
        panic!("ordering");
    }
    unreachable!()
}
