//! Algorithm 1 — the `basic` query.
//!
//! Bottom-up enumeration of the subtrees of `T(q)` by rightmost-path
//! extension, pruned by anti-monotonicity (Lemma 2: once a candidate is
//! infeasible, nothing above it can be feasible). Each verification
//! recomputes `Gk[T]` from the global k-ĉore `Gk` — no index needed.
//! Worst case `O(2^{|T(q)|} · m)` as analyzed in the paper.
//!
//! The enumeration runs in [`SubtreeId`] space: the stack, the memo,
//! and the result set are all id-keyed, so no `Subtree` is cloned or
//! hashed inside the loop.

use std::rc::Rc;

use pcs_graph::VertexId;
use pcs_ptree::SubtreeId;

use crate::problem::{PcsOutcome, ProfiledCommunity, QueryContext};
use crate::verify::{QueryScratch, Verifier};
use crate::Result;

/// Runs Algorithm 1 for `(q, k)` on one-shot scratch.
pub fn query(ctx: &QueryContext<'_>, q: VertexId, k: u32) -> Result<PcsOutcome> {
    query_scratch(ctx, q, k, &mut QueryScratch::new(ctx.graph.num_vertices()))
}

/// Runs Algorithm 1 on pooled scratch (the engine hot path).
pub fn query_scratch(
    ctx: &QueryContext<'_>,
    q: VertexId,
    k: u32,
    scratch: &mut QueryScratch,
) -> Result<PcsOutcome> {
    let space = ctx.space_for(q)?;
    let ver = Verifier::with_scratch(ctx, &space, q, k, scratch);
    Ok(run(ver))
}

fn run(mut ver: Verifier<'_>) -> PcsOutcome {
    let mut results: Vec<(SubtreeId, Rc<Vec<VertexId>>)> = Vec::new();

    // Line 3-4: compute Gk; nothing to do if it is empty.
    if ver.gk().is_some() {
        // Line 5: Ψ ← generateSubtree(∅, T(q)) = the root-only subtree
        // (feasible because every P-tree contains the taxonomy root).
        let root = ver.ids_mut().root_only();
        let mut stack: Vec<SubtreeId> = vec![root];
        ver.note_generated(1);
        let mut ext: Vec<u32> = Vec::new();
        // Lines 6-13.
        while let Some(t_prime) = stack.pop() {
            let mut flag = true;
            ver.ids().rightmost_extensions_into(t_prime, &mut ext);
            ver.note_generated(ext.len() as u64);
            for &pos in &ext {
                let t = ver.ids_mut().with(t_prime, pos);
                if ver.verify_id(t).is_some() {
                    flag = false;
                    stack.push(t);
                }
            }
            if flag && ver.is_maximal_feasible_id(t_prime) {
                // Maximal implies feasible, so the verify (a memo hit)
                // always yields a community. Rightmost enumeration
                // generates each subtree exactly once — no dedup needed.
                if let Some(community) = ver.verify_id(t_prime) {
                    results.push((t_prime, community));
                }
            }
        }
    }
    assemble(results, ver)
}

/// Turns the list of maximal feasible subtrees into a sorted outcome.
/// Shared by all algorithms; the only place interned ids are
/// materialized back into owned [`pcs_ptree::PTree`]s.
pub(crate) fn assemble(
    results: Vec<(SubtreeId, Rc<Vec<VertexId>>)>,
    ver: Verifier<'_>,
) -> PcsOutcome {
    let space = ver.space();
    let mut communities: Vec<ProfiledCommunity> = results
        .into_iter()
        .map(|(id, vs)| ProfiledCommunity {
            subtree: space.to_ptree(&ver.ids().subtree(id)),
            vertices: vs.as_ref().clone(),
        })
        .collect();
    communities.sort_by(|a, b| a.subtree.cmp(&b.subtree));
    // Maximal feasible subtrees are pairwise incomparable, which is
    // exactly the paper's profile-cohesiveness property.
    debug_assert!(communities.iter().all(|a| {
        communities
            .iter()
            .filter(|b| a.subtree != b.subtree)
            .all(|b| !a.subtree.is_subtree_of(&b.subtree))
    }));
    PcsOutcome { communities, stats: ver.stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Algorithm;
    use pcs_graph::Graph;
    use pcs_ptree::{PTree, Taxonomy};

    /// The running example of the paper (Fig. 1 + Fig. 2).
    fn figure1() -> (Graph, Taxonomy, Vec<PTree>) {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4),
                (3, 4),
                (1, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let mut t = Taxonomy::new("r");
        let cm = t.add_child(0, "CM").unwrap();
        let is = t.add_child(0, "IS").unwrap();
        let hw = t.add_child(0, "HW").unwrap();
        let ml = t.add_child(cm, "ML").unwrap();
        let ai = t.add_child(cm, "AI").unwrap();
        let dms = t.add_child(is, "DMS").unwrap();
        let profiles = vec![
            PTree::from_labels(&t, [dms, hw]).unwrap(),         // A
            PTree::from_labels(&t, [ml, ai]).unwrap(),          // B
            PTree::from_labels(&t, [ml, ai, is]).unwrap(),      // C
            PTree::from_labels(&t, [ml, ai, dms, hw]).unwrap(), // D
            PTree::from_labels(&t, [dms, hw]).unwrap(),         // E
            PTree::from_labels(&t, [is, hw]).unwrap(),          // F
            PTree::from_labels(&t, [hw, cm]).unwrap(),          // G
            PTree::from_labels(&t, [is, hw]).unwrap(),          // H
        ];
        (g, t, profiles)
    }

    #[test]
    fn paper_example_two_pcs_of_d() {
        // Fig. 2: query D (=3), k=2 yields {B,C,D} with theme
        // r->CM->{ML,AI} and {A,D,E} with theme r->{IS->DMS, HW}.
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let out = ctx.query(3, 2, Algorithm::Basic).unwrap();
        let mut sets: Vec<Vec<u32>> = out.communities.iter().map(|c| c.vertices.clone()).collect();
        sets.sort();
        assert!(sets.contains(&vec![1, 2, 3]), "expected {{B,C,D}}, got {sets:?}");
        assert!(sets.contains(&vec![0, 3, 4]), "expected {{A,D,E}}, got {sets:?}");
        // Theme subtrees match Fig. 2(b)/(c).
        for c in &out.communities {
            if c.vertices == vec![1, 2, 3] {
                let expect =
                    PTree::from_labels(&t, [t.id_of("ML").unwrap(), t.id_of("AI").unwrap()])
                        .unwrap();
                assert_eq!(c.subtree, expect);
            }
            if c.vertices == vec![0, 3, 4] {
                let expect =
                    PTree::from_labels(&t, [t.id_of("DMS").unwrap(), t.id_of("HW").unwrap()])
                        .unwrap();
                assert_eq!(c.subtree, expect);
            }
        }
    }

    #[test]
    fn every_community_satisfies_problem_1() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        for q in 0..8u32 {
            for k in 0..=3u32 {
                let out = ctx.query(q, k, Algorithm::Basic).unwrap();
                for c in &out.communities {
                    // Connectivity + membership.
                    assert!(c.vertices.binary_search(&q).is_ok());
                    assert!(pcs_graph::components::is_connected_subset(&g, &c.vertices));
                    // Structure cohesiveness.
                    for &v in &c.vertices {
                        let deg = g
                            .neighbors(v)
                            .iter()
                            .filter(|u| c.vertices.binary_search(u).is_ok())
                            .count();
                        assert!(deg >= k as usize, "q={q} k={k} v={v} deg={deg}");
                    }
                    // Reported subtree = actual maximal common subtree.
                    let m = PTree::intersect_all(c.vertices.iter().map(|&v| &profiles[v as usize]))
                        .unwrap();
                    assert_eq!(m, c.subtree, "q={q} k={k}");
                }
                // Profile cohesiveness: themes pairwise incomparable.
                for a in &out.communities {
                    for b in &out.communities {
                        if a.subtree != b.subtree {
                            assert!(!a.subtree.is_subtree_of(&b.subtree));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_path_matches_owned_path() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let mut scratch = QueryScratch::new(g.num_vertices());
        for q in 0..8u32 {
            for k in 0..=3u32 {
                let owned = query(&ctx, q, k).unwrap();
                let pooled = query_scratch(&ctx, q, k, &mut scratch).unwrap();
                assert_eq!(owned.communities, pooled.communities, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn no_gk_means_no_community() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let out = ctx.query(2, 3, Algorithm::Basic).unwrap(); // C has core 2
        assert!(out.communities.is_empty());
        let out = ctx.query(0, 9, Algorithm::Basic).unwrap();
        assert!(out.communities.is_empty());
    }

    #[test]
    fn k_zero_returns_components_with_themes() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let out = ctx.query(6, 0, Algorithm::Basic).unwrap();
        assert!(!out.communities.is_empty());
        for c in &out.communities {
            assert!(c.vertices.contains(&6));
        }
    }

    #[test]
    fn stats_are_populated() {
        let (g, t, profiles) = figure1();
        let ctx = QueryContext::new(&g, &t, &profiles).unwrap();
        let out = ctx.query(3, 2, Algorithm::Basic).unwrap();
        assert!(out.stats.subtrees_generated > 0);
        assert!(out.stats.verifications > 0);
        assert!(out.stats.feasible > 0);
        assert_eq!(out.stats.query_tree_size, 7);
        assert_eq!(out.subtree_sizes().len(), out.communities.len());
    }
}
