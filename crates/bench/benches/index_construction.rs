//! Criterion bench: CP-tree index construction (Fig. 13 companion).
//!
//! Measures sequential and parallel CP-tree builds on the ACMDL-like
//! dataset at vertex fractions 20/60/100 %, plus the underlying CL-tree
//! build of the full graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcs_datasets::scale::subsample_vertices;
use pcs_datasets::suite::{build, SuiteConfig};
use pcs_datasets::SuiteDataset;
use pcs_index::{ClTree, CpTree};

fn bench_index_construction(c: &mut Criterion) {
    let cfg = SuiteConfig { scale: 0.01, ..SuiteConfig::default() };
    let ds = build(SuiteDataset::Acmdl, cfg);

    let mut group = c.benchmark_group("fig13_index_construction");
    group.sample_size(10);
    for frac in [0.2f64, 0.6, 1.0] {
        let sub = subsample_vertices(&ds, frac, 13);
        group.bench_with_input(
            BenchmarkId::new("cptree_seq", format!("{:.0}%", frac * 100.0)),
            &sub,
            |b, sub| {
                b.iter(|| CpTree::build(&sub.graph, &sub.tax, &sub.profiles).unwrap());
            },
        );
    }
    let full = subsample_vertices(&ds, 1.0, 13);
    group.bench_function("cptree_par8/100%", |b| {
        b.iter(|| CpTree::build_with_threads(&full.graph, &full.tax, &full.profiles, 8).unwrap());
    });
    group.bench_function("cltree_full_graph", |b| {
        b.iter(|| ClTree::build(&full.graph));
    });
    group.finish();
}

criterion_group!(benches, bench_index_construction);
criterion_main!(benches);
