//! Cross-request query batching.
//!
//! Worker threads do not call [`PcsEngine::query`] directly. Each
//! validated query is submitted to a shared [`Batcher`]; a dedicated
//! dispatcher thread gathers everything that arrives within a short
//! window (or until the batch cap), **deduplicates identical
//! requests**, and executes the whole batch through
//! [`PcsEngine::query_batch`] — which pins *one* epoch snapshot and
//! shares it across the batch. Two things fall out of that:
//!
//! * under a zipfian workload the hot vertices collapse — fifty
//!   concurrent requests for the same `(v, k)` cost one search;
//! * every response in a batch reports the same `epoch`, so a client
//!   fanning one logical operation across requests can check it got a
//!   consistent view.
//!
//! The submitting worker blocks on a per-request slot (condvar) until
//! the dispatcher posts its result. A slot that is still empty after
//! [`SUBMIT_DEADLINE`] returns `None` — the server maps that to a 500
//! rather than parking a connection forever; it cannot happen unless
//! the dispatcher thread has died.

use pcs_engine::{Error as EngineError, PcsEngine, QueryRequest, QueryResponse};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard ceiling on how long a submitter waits for its result.
pub const SUBMIT_DEADLINE: Duration = Duration::from_secs(30);

/// One waiting request's result cell.
struct Slot {
    result: Mutex<Option<Result<QueryResponse, EngineError>>>,
    done: Condvar,
}

struct PendingQuery {
    req: QueryRequest,
    slot: Arc<Slot>,
}

struct BatcherState {
    pending: Vec<PendingQuery>,
    shutdown: bool,
}

/// Counters the batcher maintains (read via the server's `/stats`).
#[derive(Debug, Default)]
pub struct BatchStats {
    /// Batches dispatched.
    pub batches: AtomicU64,
    /// Requests carried by those batches (pre-dedup).
    pub batched_requests: AtomicU64,
    /// Requests answered from a deduplicated twin's execution.
    pub dedup_saved: AtomicU64,
}

/// The shared batching queue. Workers submit; one dispatcher drains.
pub struct Batcher {
    state: Mutex<BatcherState>,
    arrived: Condvar,
    stats: BatchStats,
    window: Duration,
    max_batch: usize,
}

impl Batcher {
    /// Creates a batcher gathering for at most `window` per batch, up
    /// to `max_batch` requests.
    pub fn new(window: Duration, max_batch: usize) -> Batcher {
        Batcher {
            state: Mutex::new(BatcherState { pending: Vec::new(), shutdown: false }),
            arrived: Condvar::new(),
            stats: BatchStats::default(),
            window,
            max_batch: max_batch.max(1),
        }
    }

    /// The batching counters.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Recovers the state lock even if a holder panicked: the queue is
    /// a Vec of (request, slot) pairs, which cannot be left in a
    /// torn state by any code here.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, BatcherState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.state.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Submits one validated query and blocks until the dispatcher
    /// posts the result. Returns `None` only on dispatcher death
    /// (deadline) or post-shutdown submission.
    pub fn submit(&self, req: QueryRequest) -> Option<Result<QueryResponse, EngineError>> {
        let slot = Arc::new(Slot { result: Mutex::new(None), done: Condvar::new() });
        {
            let mut state = self.lock_state();
            if state.shutdown {
                return None;
            }
            state.pending.push(PendingQuery { req, slot: Arc::clone(&slot) });
        }
        self.arrived.notify_all();

        let deadline = Instant::now() + SUBMIT_DEADLINE;
        let mut result = match slot.result.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                slot.result.clear_poison();
                poisoned.into_inner()
            }
        };
        loop {
            if let Some(r) = result.take() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self.done_wait(result, &slot.done, deadline - now).ok()?;
            result = guard;
        }
    }

    /// One condvar wait with poison recovery.
    #[allow(clippy::type_complexity)]
    fn done_wait<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, Option<Result<QueryResponse, EngineError>>>,
        done: &Condvar,
        dur: Duration,
    ) -> Result<(std::sync::MutexGuard<'a, Option<Result<QueryResponse, EngineError>>>, bool), ()>
    {
        match done.wait_timeout(guard, dur) {
            Ok((g, t)) => Ok((g, t.timed_out())),
            Err(_) => Err(()),
        }
    }

    /// The dispatcher loop. Run on a dedicated thread; returns when
    /// [`Batcher::shutdown`] is called and the queue has drained.
    pub fn run_dispatcher(&self, engine: &PcsEngine) {
        loop {
            let taken = {
                let mut state = self.lock_state();
                // Sleep until something arrives or shutdown.
                while state.pending.is_empty() && !state.shutdown {
                    state = match self.arrived.wait(state) {
                        Ok(g) => g,
                        Err(poisoned) => {
                            self.state.clear_poison();
                            poisoned.into_inner()
                        }
                    };
                }
                if state.pending.is_empty() && state.shutdown {
                    return;
                }
                // Gather: give stragglers one window to pile on, then
                // take everything up to the cap.
                let deadline = Instant::now() + self.window;
                while state.pending.len() < self.max_batch && !state.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match self.arrived.wait_timeout(state, deadline - now) {
                        Ok((g, timed_out)) => {
                            state = g;
                            if timed_out.timed_out() {
                                break;
                            }
                        }
                        Err(poisoned) => {
                            self.state.clear_poison();
                            state = poisoned.into_inner().0;
                        }
                    }
                }
                let take = state.pending.len().min(self.max_batch);
                state.pending.drain(..take).collect::<Vec<_>>()
            };
            if taken.is_empty() {
                continue;
            }
            self.execute(engine, taken);
        }
    }

    /// Deduplicates and executes one gathered batch, then distributes
    /// results to the waiting slots.
    fn execute(&self, engine: &PcsEngine, batch: Vec<PendingQuery>) {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.batched_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);

        // Dedup key: the full request identity. QueryRequest doesn't
        // implement Hash, so key on its observable fields.
        type Key = (u32, u32, &'static str, Option<usize>, bool);
        let key = |r: &QueryRequest| -> Key {
            (
                r.vertex_id(),
                r.degree_bound(),
                r.requested_algorithm().name(),
                r.community_cap(),
                r.wants_stats(),
            )
        };
        let mut unique: Vec<QueryRequest> = Vec::new();
        let mut index_of: HashMap<Key, usize> = HashMap::new();
        let mut assignment: Vec<usize> = Vec::with_capacity(batch.len());
        for p in &batch {
            let k = key(&p.req);
            let idx = *index_of.entry(k).or_insert_with(|| {
                unique.push(p.req.clone());
                unique.len() - 1
            });
            assignment.push(idx);
        }
        let saved = batch.len() - unique.len();
        if saved > 0 {
            self.stats.dedup_saved.fetch_add(saved as u64, Ordering::Relaxed);
        }

        // One epoch pin for the whole batch.
        let results = engine.query_batch(&unique);

        for (p, idx) in batch.iter().zip(assignment) {
            let outcome = results
                .get(idx)
                .cloned()
                .unwrap_or(Err(EngineError::IndexDisabled { algorithm: "batch-dispatch" }));
            let mut cell = match p.slot.result.lock() {
                Ok(g) => g,
                Err(poisoned) => {
                    p.slot.result.clear_poison();
                    poisoned.into_inner()
                }
            };
            *cell = Some(outcome);
            drop(cell);
            p.slot.done.notify_all();
        }
    }

    /// Signals shutdown and wakes the dispatcher so it can drain and
    /// exit. Safe to call more than once.
    pub fn shutdown(&self) {
        self.lock_state().shutdown = true;
        self.arrived.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_engine::PcsEngine;
    use pcs_graph::Graph;
    use pcs_ptree::{PTree, Taxonomy};
    use std::sync::atomic::Ordering;
    use std::thread;

    fn engine() -> Arc<PcsEngine> {
        let n = 12usize;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for d in 1..=2u32 {
                let v = (u + d) % n as u32;
                let (lo, hi) = (u.min(v), u.max(v));
                if !edges.contains(&(lo, hi)) {
                    edges.push((lo, hi));
                }
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut tax = Taxonomy::new("root");
        let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
        let profiles = (0..n).map(|_| PTree::from_labels(&tax, [a]).unwrap()).collect::<Vec<_>>();
        Arc::new(PcsEngine::builder().graph(g).taxonomy(tax).profiles(profiles).build().unwrap())
    }

    #[test]
    fn submissions_get_results_and_twins_dedup() {
        let engine = engine();
        let batcher = Arc::new(Batcher::new(Duration::from_millis(30), 64));
        let dispatcher = {
            let b = Arc::clone(&batcher);
            let e = Arc::clone(&engine);
            thread::spawn(move || b.run_dispatcher(&e))
        };
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&batcher);
            handles.push(thread::spawn(move || {
                b.submit(QueryRequest::vertex(3).k(2)).expect("result")
            }));
        }
        let epochs: Vec<u64> =
            handles.into_iter().map(|h| h.join().unwrap().expect("query ok").epoch).collect();
        assert!(epochs.windows(2).all(|w| w[0] == w[1]), "one epoch per batch");
        assert!(batcher.stats().dedup_saved.load(Ordering::Relaxed) > 0);
        batcher.shutdown();
        dispatcher.join().unwrap();
    }

    #[test]
    fn shutdown_refuses_new_submissions() {
        let batcher = Batcher::new(Duration::from_millis(5), 8);
        batcher.shutdown();
        assert!(batcher.submit(QueryRequest::vertex(0).k(1)).is_none());
    }
}
