//! Seeded random-graph primitives.
//!
//! These are the topology building blocks `pcs-datasets` composes into
//! paper-calibrated profiled graphs: Erdős–Rényi G(n,m), Barabási–Albert
//! preferential attachment (power-law degrees like co-authorship and
//! follower networks), and planted overlapping groups (the community
//! structure PCS is supposed to recover).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, GraphBuilder, VertexId};
use crate::hash::FxHashSet;

/// Uniform random graph with exactly `m` distinct edges (G(n, m)).
///
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_edges, "requested {m} edges but only {max_edges} possible");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut builder = GraphBuilder::new(n);
    while seen.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if seen.insert(key) {
            builder.add_edge(a, b);
        }
    }
    builder.build()
}

/// Erdős–Rényi G(n, p): every pair independently with probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(p) {
                builder.add_edge(a, b);
            }
        }
    }
    builder.build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices chosen proportionally to degree.
///
/// Produces the heavy-tailed degree distributions of real collaboration
/// and follower networks, with average degree ≈ `2 · m_attach`.
pub fn preferential_attachment(n: usize, m_attach: usize, seed: u64) -> Graph {
    assert!(m_attach >= 1, "m_attach must be positive");
    assert!(n > m_attach, "need more vertices than attachment count");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // `targets` holds one entry per edge endpoint => sampling uniformly
    // from it is degree-proportional sampling.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique over the first m_attach + 1 vertices.
    for a in 0..=(m_attach as u32) {
        for b in (a + 1)..=(m_attach as u32) {
            builder.add_edge(a, b);
            targets.push(a);
            targets.push(b);
        }
    }
    for v in (m_attach as u32 + 1)..n as u32 {
        let mut chosen: FxHashSet<VertexId> = FxHashSet::default();
        let mut guard = 0;
        while chosen.len() < m_attach && guard < 50 * m_attach {
            let t = targets[rng.gen_range(0..targets.len())];
            chosen.insert(t);
            guard += 1;
        }
        // Extremely unlikely fallback: fill with arbitrary earlier ids.
        let mut fill = 0u32;
        while chosen.len() < m_attach {
            chosen.insert(fill);
            fill += 1;
        }
        for &t in &chosen {
            builder.add_edge(v, t);
            targets.push(v);
            targets.push(t);
        }
    }
    builder.build()
}

/// Planted overlapping groups.
///
/// `memberships[v]` lists the group ids of vertex `v`. Any two vertices
/// sharing at least one group are connected with probability `p_in`; all
/// other pairs with probability `p_out`. Classic (dense) construction —
/// intended for graphs up to a few tens of thousands of vertices.
pub fn planted_overlapping_groups(
    memberships: &[Vec<u32>],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Graph {
    let n = memberships.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Bucket vertices by group to avoid the O(n^2) shared-group test for
    // intra-group edges; sample p_out edges sparsely.
    let group_count =
        memberships.iter().flat_map(|g| g.iter().copied()).max().map_or(0, |g| g as usize + 1);
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); group_count];
    for (v, groups) in memberships.iter().enumerate() {
        for &g in groups {
            members[g as usize].push(v as VertexId);
        }
    }
    for group in &members {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                if rng.gen_bool(p_in) {
                    builder.add_edge(group[i], group[j]);
                }
            }
        }
    }
    if p_out > 0.0 && n >= 2 {
        // Expected number of background edges, sampled by pair draws.
        let expect = (p_out * (n as f64) * (n as f64 - 1.0) / 2.0).round() as usize;
        for _ in 0..expect {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a != b {
                builder.add_edge(a, b);
            }
        }
    }
    builder.build()
}

/// Ensures every vertex of `g` reaches vertex 0 by linking component
/// representatives to random already-connected vertices. Returns the
/// (possibly) augmented graph.
pub fn connectify(g: &Graph, seed: u64) -> Graph {
    let (labels, count) = crate::components::connected_components(g);
    if count <= 1 {
        return g.clone();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(g.num_vertices());
    for (a, b) in g.edges() {
        builder.add_edge(a, b);
    }
    let mut reps: Vec<VertexId> = Vec::with_capacity(count);
    let mut seen = vec![false; count];
    for v in 0..g.num_vertices() as u32 {
        let l = labels[v as usize] as usize;
        if !seen[l] {
            seen[l] = true;
            reps.push(v);
        }
    }
    reps.shuffle(&mut rng);
    for w in reps.windows(2) {
        builder.add_edge(w[0], w[1]);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(50, 200, 1);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn gnm_deterministic_per_seed() {
        assert_eq!(gnm(30, 60, 5), gnm(30, 60, 5));
        assert_ne!(gnm(30, 60, 5), gnm(30, 60, 6));
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn gnm_rejects_impossible() {
        gnm(3, 10, 0);
    }

    #[test]
    fn gnp_density_tracks_p() {
        let g = gnp(100, 0.1, 42);
        let possible = 100 * 99 / 2;
        let density = g.num_edges() as f64 / possible as f64;
        assert!((density - 0.1).abs() < 0.03, "density {density}");
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(500, 3, 9);
        assert_eq!(g.num_vertices(), 500);
        // avg degree ~ 2 * m_attach.
        assert!((g.avg_degree() - 6.0).abs() < 1.0, "avg {}", g.avg_degree());
        // Heavy tail: max degree far above average.
        assert!(g.max_degree() > 20, "max {}", g.max_degree());
        // Single connected component by construction.
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn planted_groups_are_denser_inside() {
        let mut memberships = vec![Vec::new(); 60];
        for (v, m) in memberships.iter_mut().enumerate() {
            m.push(if v < 30 { 0 } else { 1 });
        }
        let g = planted_overlapping_groups(&memberships, 0.5, 0.002, 3);
        let mut inside = 0usize;
        let mut across = 0usize;
        for (a, b) in g.edges() {
            if (a < 30) == (b < 30) {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > across * 5, "inside {inside} across {across}");
    }

    #[test]
    fn connectify_produces_single_component() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let g2 = connectify(&g, 7);
        let (_, count) = connected_components(&g2);
        assert_eq!(count, 1);
        // Existing edges preserved.
        assert!(g2.has_edge(0, 1) && g2.has_edge(2, 3) && g2.has_edge(4, 5));
    }

    #[test]
    fn connectify_noop_when_connected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(connectify(&g, 1), g);
    }
}
