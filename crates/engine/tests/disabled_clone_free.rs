//! Regression pin: building an `IndexMode::Disabled` engine and
//! serving index-free queries performs **zero taxonomy deep copies**.
//! The builder takes ownership and validation borrows; the index-less
//! query path borrows the query vertex's P-tree instead of cloning it
//! (and must never clone the taxonomy to restore anything).
//!
//! Lives in its own integration-test binary on purpose: the clone
//! counter ([`Taxonomy::clone_count`]) is process-wide, and a dedicated
//! process keeps it deterministic.

use pcs_engine::{Algorithm, IndexMode, PcsEngine, QueryRequest, UpdateBatch};
use pcs_graph::Graph;
use pcs_ptree::{PTree, Taxonomy};

#[test]
fn disabled_engine_never_clones_the_taxonomy() {
    let mut tax = Taxonomy::new("r");
    let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
    let b = tax.add_child(a, "b").unwrap();
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
    let profiles = vec![
        PTree::from_labels(&tax, [a]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::from_labels(&tax, [a, b]).unwrap(),
        PTree::from_labels(&tax, [b]).unwrap(),
        PTree::root_only(),
    ];

    let before = Taxonomy::clone_count();
    // Build: ownership moves in, validation borrows.
    let engine = PcsEngine::builder()
        .graph(g)
        .taxonomy(tax)
        .profiles(profiles)
        .index_mode(IndexMode::Disabled)
        .build()
        .unwrap();
    assert_eq!(
        Taxonomy::clone_count(),
        before,
        "EngineBuilder::build(Disabled) deep-copied the taxonomy"
    );

    // Serve: Auto resolves to `basic` (no index), repeatedly.
    for q in 0..5u32 {
        for k in 1..4u32 {
            engine.query(&QueryRequest::vertex(q).k(k)).unwrap();
            engine.query(&QueryRequest::vertex(q).k(k).algorithm(Algorithm::Basic)).unwrap();
        }
    }
    assert_eq!(
        Taxonomy::clone_count(),
        before,
        "the index-free query path deep-copied the taxonomy"
    );

    // Mutate: the update path validates profiles against a borrowed
    // taxonomy too.
    engine.apply(&UpdateBatch::new().add_edge(0, 3)).unwrap();
    engine.query(&QueryRequest::vertex(0).k(2)).unwrap();
    assert_eq!(Taxonomy::clone_count(), before, "the update path deep-copied the taxonomy");
}
