//! Write-ahead log for `UpdateBatch` records: segmented, checksummed,
//! group-committed.
//!
//! A snapshot (see [`crate::format`]) persists the engine's state at
//! one epoch; the WAL persists every effective update batch *since*
//! that epoch, so recovery is snapshot + log tail instead of a cold
//! rebuild. The log is a directory of segment files:
//!
//! ```text
//! wal-00000000000000000042.seg        (name = first epoch the segment
//! wal-00000000000000000107.seg         may contain: last_epoch+1 at
//! ...                                  creation/rotation time)
//!
//! segment layout
//! offset  size  field
//! 0       8     magic  b"PCSWAL01"
//! 8       4     wal format version (u32 LE; this build writes 1)
//! 12      4     reserved (zero)
//! 16      ...   records, back to back:
//!
//! record frame
//! 0       4     payload length (u32 LE, <= MAX_RECORD_LEN)
//! 4       8     epoch (u64 LE, strictly increasing across the log)
//! 12      8     xxh64(payload, seed = epoch)
//! 20      len   payload (opaque to this layer; the engine encodes
//!               the batch with the snapshot codec's section cursors)
//! ```
//!
//! Everything little-endian; the checksum is seeded with the epoch so
//! a payload cannot silently answer for a different epoch. The reader
//! replays complete, checksum-valid, epoch-monotonic records and stops
//! at the first violation — a **torn tail** from a crash mid-append —
//! which [`Wal::open`] then physically truncates so the next append
//! starts from a clean prefix. Corrupt input yields typed
//! [`StoreError`]s, never a panic, hang, or silently wrong replay:
//! the same contract the snapshot fault-injection matrix enforces.
//!
//! ## Group commit
//!
//! [`Wal::append`] buffers the frame into the active segment under a
//! mutex and returns a ticket; [`Wal::commit`] makes it durable. The
//! first committer becomes the *sync leader*: it optionally waits out
//! a short commit window, snapshots the highest written ticket, and
//! issues one `fdatasync` covering every record buffered so far —
//! concurrent committers park on a condvar and are released by that
//! single fsync. Under write concurrency the fsync-per-record ratio
//! drops well below one (measured by `bench_wal`).
//!
//! ## Failure model
//!
//! The log is **fail-stop**: any append/fsync error — including an
//! injected kill point from [`crate::faults`] — marks the whole `Wal`
//! failed, and every subsequent operation returns a typed error. A
//! failed log may hold a record that was never acknowledged; recovery
//! treats whatever durable prefix it finds as truth, which is exactly
//! the contract callers get from `fsync` semantics anyway.

use crate::faults;
use crate::format::{xxh64, Result, StoreError};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// First eight bytes of every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"PCSWAL01";

/// The WAL format version this build writes (and the newest it reads).
pub const WAL_VERSION: u32 = 1;

/// Pseudo section id used in [`StoreError`]s raised by the WAL layer
/// (the snapshot sections own the small ids; see
/// [`crate::format::SECTION_TABLE`] for the other pseudo id).
pub const WAL_SECTION: u32 = u32::MAX - 1;

/// Segment header length in bytes.
pub const SEG_HEADER_LEN: u64 = 16;

/// Record frame header length in bytes (length + epoch + checksum).
pub const REC_HEADER_LEN: u64 = 20;

/// Largest payload a record may carry. A forged length field larger
/// than this is classified as corruption immediately instead of
/// driving a giant allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 28;

const SEG_PREFIX: &str = "wal-";
const SEG_SUFFIX: &str = ".seg";

fn io_err(op: &'static str, e: std::io::Error) -> StoreError {
    StoreError::Io { op, detail: e.to_string() }
}

fn corrupt(detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { section: WAL_SECTION, detail: detail.into() }
}

/// Tuning knobs for an append-mode [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate the active segment once it holds at least this many
    /// bytes. Small values force rotation in tests; the default keeps
    /// segments big enough that rotation cost is noise.
    pub segment_bytes: u64,
    /// How long the sync leader waits before issuing its fsync, to
    /// coalesce more concurrent committers into one flush. Zero (the
    /// default) still coalesces naturally: while one fsync is in
    /// flight, later appends pile up and the next leader covers them
    /// all.
    pub group_window: Duration,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { segment_bytes: 8 << 20, group_window: Duration::ZERO }
    }
}

/// One replayed record: the epoch it produced and the opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Epoch the batch produced when first applied (snapshot epoch of
    /// the engine after publish).
    pub epoch: u64,
    /// Engine-encoded `UpdateBatch` bytes.
    pub payload: Vec<u8>,
}

/// Where and why a scan stopped before the physical end of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTail {
    /// Segment holding the first bad byte.
    pub segment: PathBuf,
    /// Byte length of the valid prefix of that segment.
    pub valid_len: u64,
    /// Human-readable reason (torn frame, checksum mismatch, ...).
    pub detail: String,
}

/// One segment file as seen by a scan.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Path of the segment file.
    pub path: PathBuf,
    /// First epoch the segment may contain (parsed from its name).
    pub first_epoch: u64,
    /// Physical file length in bytes.
    pub file_len: u64,
}

/// Result of scanning a WAL directory.
#[derive(Debug)]
pub struct WalReplay {
    /// Complete, checksum-valid, epoch-monotonic records in order.
    pub records: Vec<WalRecord>,
    /// The torn tail, if the scan stopped before the physical end.
    pub torn: Option<WalTail>,
    /// Segments present, sorted by first epoch.
    pub segments: Vec<SegmentInfo>,
}

impl WalReplay {
    /// Epoch of the last replayed record, if any.
    pub fn last_epoch(&self) -> Option<u64> {
        self.records.last().map(|r| r.epoch)
    }
}

/// Encodes one record frame. Fails (typed) if the payload exceeds
/// [`MAX_RECORD_LEN`] — a writer that ignored the cap would produce a
/// file the reader rejects as corrupt.
pub fn encode_record(epoch: u64, payload: &[u8]) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_RECORD_LEN)
        .ok_or_else(|| corrupt(format!("record payload of {} bytes exceeds cap", payload.len())))?;
    let mut out = Vec::with_capacity(REC_HEADER_LEN as usize + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&xxh64(payload, epoch).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Encodes a batch of records into one contiguous frame stream (the
/// `GET /wal?from=` response body is exactly this).
pub fn encode_records(records: &[WalRecord]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(&encode_record(r.epoch, &r.payload)?);
    }
    Ok(out)
}

/// Outcome of parsing a frame stream: records up to the first
/// violation, bytes consumed, and the reason parsing stopped early.
#[derive(Debug)]
pub struct FrameScan {
    /// Valid records, in order.
    pub records: Vec<WalRecord>,
    /// Bytes of `input` covered by those records.
    pub consumed: u64,
    /// Why the scan stopped before the end of input, if it did.
    pub torn: Option<String>,
}

/// Parses back-to-back record frames from `bytes`, enforcing strictly
/// increasing epochs starting above `last_epoch`. Stops (without
/// error) at the first incomplete, oversized, checksum-bad, or
/// non-monotonic frame: a prefix parse, never a panic.
pub fn decode_frames(bytes: &[u8], mut last_epoch: Option<u64>) -> FrameScan {
    let mut records = Vec::new();
    let mut pos: usize = 0;
    let torn = loop {
        let Some(rest) = bytes.get(pos..) else {
            break None;
        };
        if rest.is_empty() {
            break None;
        }
        let Some(header) = rest.get(..REC_HEADER_LEN as usize) else {
            break Some(format!("{} trailing bytes, shorter than a frame header", rest.len()));
        };
        let (len_b, header) = header.split_at(4);
        let (epoch_b, sum_b) = header.split_at(8);
        let len = u32::from_le_bytes(len_b.try_into().unwrap_or([0; 4]));
        let epoch = u64::from_le_bytes(epoch_b.try_into().unwrap_or([0; 8]));
        let stored_sum = u64::from_le_bytes(sum_b.try_into().unwrap_or([0; 8]));
        if len > MAX_RECORD_LEN {
            break Some(format!(
                "frame at offset {pos} declares {len} payload bytes (cap {MAX_RECORD_LEN})"
            ));
        }
        let body_start = REC_HEADER_LEN as usize;
        let body_end = body_start + len as usize;
        let Some(payload) = rest.get(body_start..body_end) else {
            break Some(format!(
                "frame at offset {pos} needs {} bytes, {} present",
                body_end,
                rest.len()
            ));
        };
        let sum = xxh64(payload, epoch);
        if sum != stored_sum {
            break Some(format!(
                "frame at offset {pos} (epoch {epoch}): stored checksum {stored_sum:#018x}, computed {sum:#018x}"
            ));
        }
        if let Some(last) = last_epoch {
            if epoch <= last {
                break Some(format!(
                    "frame at offset {pos} regresses epoch ({epoch} after {last})"
                ));
            }
        }
        last_epoch = Some(epoch);
        records.push(WalRecord { epoch, payload: to_vec(payload) });
        pos = body_end.saturating_add(pos);
    };
    FrameScan { records, consumed: pos as u64, torn }
}

#[inline]
fn to_vec(b: &[u8]) -> Vec<u8> {
    b.to_vec()
}

fn segment_name(first_epoch: u64) -> String {
    format!("{SEG_PREFIX}{first_epoch:020}{SEG_SUFFIX}")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEG_PREFIX)?.strip_suffix(SEG_SUFFIX)?.parse().ok()
}

/// Lists segment files in `dir`, sorted by first epoch. Non-segment
/// files (editor droppings, temp files) are ignored.
pub fn list_segments(dir: &Path) -> Result<Vec<SegmentInfo>> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("wal-list", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("wal-list", e))?;
        let name = entry.file_name();
        let Some(first_epoch) = name.to_str().and_then(parse_segment_name) else {
            continue;
        };
        let meta = entry.metadata().map_err(|e| io_err("wal-list", e))?;
        out.push(SegmentInfo { path: entry.path(), first_epoch, file_len: meta.len() });
    }
    out.sort_by_key(|s| s.first_epoch);
    Ok(out)
}

/// Validates a segment header. `Ok(true)` means records follow;
/// `Ok(false)` means the header itself is damaged (torn creation) and
/// the segment holds no usable records. A *newer* format version is a
/// hard error — truncating a log this build merely cannot read would
/// destroy data.
fn check_segment_header(bytes: &[u8]) -> Result<bool> {
    let Some(header) = bytes.get(..SEG_HEADER_LEN as usize) else {
        return Ok(false);
    };
    let (magic, header) = header.split_at(8);
    let (version_b, _reserved) = header.split_at(4);
    if magic != WAL_MAGIC {
        return Ok(false);
    }
    let version = u32::from_le_bytes(version_b.try_into().unwrap_or([0; 4]));
    if version > WAL_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version, supported: WAL_VERSION });
    }
    Ok(true)
}

/// Scans the whole log read-only: every valid record plus the torn
/// tail, if any. Never mutates the directory — this is the follower's
/// view of a log another process is actively writing. No gap check:
/// a reclaimed prefix is legitimate here (the caller pairs the log
/// with a snapshot and checks continuity against *its* epoch).
pub fn read_records(dir: &Path) -> Result<WalReplay> {
    scan(dir, None, u64::MAX, u64::MAX)
}

/// Scans read-only for records with `after_epoch < epoch <=
/// max_epoch`, stopping once roughly `max_bytes` of payload have been
/// collected (at least one record is returned if one qualifies). A
/// torn tail simply ends the result — for a live log it usually means
/// "the primary is mid-append; poll again". Returns a typed error if
/// the log no longer reaches back to `after_epoch` (segments
/// reclaimed): the caller must re-bootstrap from a snapshot.
pub fn read_records_since(
    dir: &Path,
    after_epoch: u64,
    max_epoch: u64,
    max_bytes: u64,
) -> Result<Vec<WalRecord>> {
    Ok(scan(dir, Some(after_epoch), max_epoch, max_bytes)?.records)
}

fn scan(dir: &Path, after: Option<u64>, max_epoch: u64, max_bytes: u64) -> Result<WalReplay> {
    let segments = list_segments(dir)?;
    let after_epoch = after.unwrap_or(0);
    // With a requested start epoch, begin at the last segment that can
    // contain `after_epoch + 1`; if even the oldest segment starts
    // later, the prefix the caller needs has been reclaimed — a gap,
    // not a torn tail. A full scan (`after == None`) starts at the
    // oldest segment present, whatever its epoch.
    let start = match after {
        None => {
            if segments.is_empty() {
                None
            } else {
                Some(0)
            }
        }
        Some(a) => {
            let next_needed = a.saturating_add(1);
            let start = segments.iter().rposition(|s| s.first_epoch <= next_needed);
            if start.is_none() && !segments.is_empty() {
                let oldest = segments.first().map_or(0, |s| s.first_epoch);
                return Err(corrupt(format!(
                    "log starts at epoch {oldest}; records after {a} requested (re-bootstrap from a snapshot)"
                )));
            }
            start
        }
    };
    let mut records: Vec<WalRecord> = Vec::new();
    let mut torn = None;
    let mut last_epoch: Option<u64> = None;
    let mut collected: u64 = 0;
    if let Some(start) = start {
        for seg in segments.iter().skip(start) {
            let bytes = std::fs::read(&seg.path).map_err(|e| io_err("wal-read", e))?;
            if !check_segment_header(&bytes)? {
                torn = Some(WalTail {
                    segment: seg.path.clone(),
                    valid_len: 0,
                    detail: "segment header torn or missing".into(),
                });
                break;
            }
            let body = bytes.get(SEG_HEADER_LEN as usize..).unwrap_or(&[]);
            let fs = decode_frames(body, last_epoch);
            for rec in fs.records {
                last_epoch = Some(rec.epoch);
                if rec.epoch > after_epoch && rec.epoch <= max_epoch && collected < max_bytes {
                    collected = collected.saturating_add(REC_HEADER_LEN + rec.payload.len() as u64);
                    records.push(rec);
                }
            }
            if let Some(detail) = fs.torn {
                torn = Some(WalTail {
                    segment: seg.path.clone(),
                    valid_len: SEG_HEADER_LEN + fs.consumed,
                    detail,
                });
                break;
            }
        }
    }
    Ok(WalReplay { records, torn, segments })
}

// ---------------------------------------------------------------------
// Append side.
// ---------------------------------------------------------------------

/// Commit ticket: proof that a record is buffered, redeemable for
/// durability via [`Wal::commit`].
#[derive(Debug, Clone, Copy)]
pub struct WalTicket {
    seq: u64,
    /// Epoch of the buffered record.
    pub epoch: u64,
}

/// Counters exposed for benchmarking and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// `fdatasync` calls issued.
    pub fsyncs: u64,
    /// Segment rotations performed.
    pub rotations: u64,
}

struct Inner {
    file: Arc<File>,
    /// First epoch of the active segment (its filename).
    seg_first: u64,
    seg_len: u64,
    last_epoch: u64,
    written_seq: u64,
    synced_seq: u64,
    syncing: bool,
}

struct Shared {
    dir: PathBuf,
    opts: WalOptions,
    durable_epoch: AtomicU64,
    failed: AtomicBool,
    records: AtomicU64,
    fsyncs: AtomicU64,
    rotations: AtomicU64,
    inner: Mutex<Inner>,
    sync_cv: Condvar,
}

/// An append-mode write-ahead log over one directory of segments.
///
/// Cloning is cheap (shared handle); all methods take `&self` and are
/// safe under full concurrency — `append`/`commit` implement group
/// commit as described in the module docs.
#[derive(Clone)]
pub struct Wal {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.shared.dir)
            .field("durable_epoch", &self.durable_epoch())
            .field("failed", &self.is_failed())
            .finish()
    }
}

fn create_segment(dir: &Path, first_epoch: u64) -> Result<(Arc<File>, u64)> {
    let path = dir.join(segment_name(first_epoch));
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(|e| io_err("wal-create", e))?;
    let mut header = Vec::with_capacity(SEG_HEADER_LEN as usize);
    header.extend_from_slice(&WAL_MAGIC);
    header.extend_from_slice(&WAL_VERSION.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    file.write_all(&header).map_err(|e| io_err("wal-create", e))?;
    file.sync_all().map_err(|e| io_err("wal-create", e))?;
    sync_dir(dir)?;
    Ok((Arc::new(file), SEG_HEADER_LEN))
}

/// Fsyncs a directory so a just-created/renamed/removed entry survives
/// power loss. Propagates sync failures; only refusal to *open* the
/// directory (platforms without directory handles) is forgiven.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all().map_err(|e| io_err("sync-dir", e)),
        Err(_) => Ok(()),
    }
}

impl Wal {
    /// Opens `dir` for appending (creating it if needed), after
    /// repairing any crash damage: the torn tail reported by the scan
    /// is physically truncated, and segments past it are deleted, so
    /// the on-disk log is exactly the replayable prefix. Returns the
    /// log positioned for append together with the replay (records
    /// with epochs the caller's snapshot already covers included — the
    /// caller filters).
    ///
    /// `base_epoch` seeds the epoch counter when the log is empty
    /// (a fresh durable dir whose snapshot is at `base_epoch`).
    pub fn open(
        dir: impl AsRef<Path>,
        opts: WalOptions,
        base_epoch: u64,
    ) -> Result<(Wal, WalReplay)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("wal-open", e))?;
        let replay = scan(&dir, None, u64::MAX, u64::MAX)?;
        if let Some(tail) = &replay.torn {
            // Drop the torn bytes and every later segment: appends must
            // extend the valid prefix, not interleave with garbage.
            if tail.valid_len < SEG_HEADER_LEN {
                std::fs::remove_file(&tail.segment).map_err(|e| io_err("wal-truncate", e))?;
            } else {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&tail.segment)
                    .map_err(|e| io_err("wal-truncate", e))?;
                f.set_len(tail.valid_len).map_err(|e| io_err("wal-truncate", e))?;
                f.sync_all().map_err(|e| io_err("wal-truncate", e))?;
            }
            let mut past = false;
            for seg in &replay.segments {
                if past {
                    std::fs::remove_file(&seg.path).map_err(|e| io_err("wal-truncate", e))?;
                }
                if seg.path == tail.segment {
                    past = true;
                }
            }
            sync_dir(&dir)?;
        }
        let last_epoch = replay.last_epoch().unwrap_or(base_epoch).max(base_epoch);
        // Reopen the surviving tail segment for append, or start a
        // fresh one. After truncation the surviving segment is the one
        // holding the last valid record (or none at all).
        let survivors = list_segments(&dir)?;
        let (file, seg_first, seg_len) = match survivors.last() {
            Some(seg) => {
                let file = OpenOptions::new()
                    .append(true)
                    .open(&seg.path)
                    .map_err(|e| io_err("wal-open", e))?;
                (Arc::new(file), seg.first_epoch, seg.file_len)
            }
            None => {
                let (file, len) = create_segment(&dir, last_epoch.saturating_add(1))?;
                (file, last_epoch.saturating_add(1), len)
            }
        };
        let shared = Shared {
            dir,
            opts,
            durable_epoch: AtomicU64::new(last_epoch),
            failed: AtomicBool::new(false),
            records: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                file,
                seg_first,
                seg_len,
                last_epoch,
                written_seq: 0,
                synced_seq: 0,
                syncing: false,
            }),
            sync_cv: Condvar::new(),
        };
        Ok((Wal { shared: Arc::new(shared) }, replay))
    }

    /// Directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Highest epoch known durable (covered by a completed fsync, or
    /// already on disk when the log was opened).
    pub fn durable_epoch(&self) -> u64 {
        self.shared.durable_epoch.load(Ordering::Acquire)
    }

    /// Whether the log has fail-stopped after an append/fsync error.
    pub fn is_failed(&self) -> bool {
        self.shared.failed.load(Ordering::Acquire)
    }

    /// Fail-stops the log explicitly and wakes every committer waiting
    /// on the group-commit condvar. The engine calls this when a step
    /// *outside* the log (snapshot publish, payload encoding) dies
    /// mid-pipeline: once the in-memory engine state can no longer be
    /// trusted to match the log tail, every subsequent append must be
    /// refused until the directory is re-opened and recovered.
    pub fn fail_stop(&self) {
        self.shared.failed.store(true, Ordering::Release);
        self.shared.sync_cv.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.shared.records.load(Ordering::Relaxed),
            fsyncs: self.shared.fsyncs.load(Ordering::Relaxed),
            rotations: self.shared.rotations.load(Ordering::Relaxed),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned mutex means another appender panicked while
        // holding it; the log fail-stops rather than propagating the
        // panic, so recovery semantics stay typed.
        match self.shared.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.shared.failed.store(true, Ordering::Release);
                poisoned.into_inner()
            }
        }
    }

    fn fail<T>(&self, err: StoreError) -> Result<T> {
        self.shared.failed.store(true, Ordering::Release);
        self.shared.sync_cv.notify_all();
        Err(err)
    }

    fn failed_err(op: &'static str) -> StoreError {
        StoreError::Io { op, detail: "write-ahead log has fail-stopped; reopen to recover".into() }
    }

    /// Buffers one record into the active segment and returns a commit
    /// ticket. `epoch` must exceed every previously appended epoch
    /// (the engine's writer lock guarantees contiguity; the log only
    /// enforces monotonicity so that concurrent benchmark writers can
    /// pre-assign epochs).
    ///
    /// Kill points: `wal.append` (before anything is written),
    /// `wal.torn_append` (half the frame reaches the file — the
    /// classic torn write), `wal.after_append` (the whole frame is in
    /// the file, not yet fsynced).
    pub fn append(&self, epoch: u64, payload: &[u8]) -> Result<WalTicket> {
        self.append_impl(Some(epoch), payload)
    }

    fn append_impl(&self, epoch: Option<u64>, payload: &[u8]) -> Result<WalTicket> {
        if self.is_failed() {
            return Err(Self::failed_err("wal-append"));
        }
        if let Err(e) = faults::hit("wal.append") {
            return self.fail(e);
        }
        let mut inner = self.lock();
        let epoch = epoch.unwrap_or_else(|| inner.last_epoch.saturating_add(1));
        if epoch <= inner.last_epoch {
            let last = inner.last_epoch;
            drop(inner);
            return self.fail(corrupt(format!("append of epoch {epoch} after {last}")));
        }
        let frame = match encode_record(epoch, payload) {
            Ok(f) => f,
            Err(e) => {
                drop(inner);
                return self.fail(e);
            }
        };
        if inner.seg_len >= self.shared.opts.segment_bytes && inner.seg_len > SEG_HEADER_LEN {
            if let Err(e) = self.rotate_locked(&mut inner) {
                drop(inner);
                return self.fail(e);
            }
        }
        if let Err(e) = faults::hit("wal.torn_append") {
            // Simulate a crash mid-frame: a prefix of the record
            // reaches the file, then the "process dies".
            let half = frame.len() / 2;
            let torn = frame.get(..half).unwrap_or(&frame);
            let _ = (&*inner.file).write_all(torn);
            drop(inner);
            return self.fail(e);
        }
        if let Err(e) = (&*inner.file).write_all(&frame) {
            drop(inner);
            return self.fail(io_err("wal-append", e));
        }
        if let Err(e) = faults::hit("wal.after_append") {
            drop(inner);
            return self.fail(e);
        }
        inner.seg_len += frame.len() as u64;
        inner.last_epoch = epoch;
        inner.written_seq += 1;
        let seq = inner.written_seq;
        self.shared.records.fetch_add(1, Ordering::Relaxed);
        Ok(WalTicket { seq, epoch })
    }

    /// Blocks until the ticket's record is durable (group commit; see
    /// module docs). Kill points: `wal.before_fsync` (frame written,
    /// never flushed), `wal.after_fsync` (flushed, but the caller
    /// "dies" before observing it).
    pub fn commit(&self, ticket: &WalTicket) -> Result<()> {
        let mut inner = self.lock();
        loop {
            if inner.synced_seq >= ticket.seq {
                return Ok(());
            }
            if self.is_failed() {
                return Err(Self::failed_err("wal-commit"));
            }
            if !inner.syncing {
                inner.syncing = true;
                if !self.shared.opts.group_window.is_zero() {
                    drop(inner);
                    std::thread::sleep(self.shared.opts.group_window);
                    inner = self.lock();
                }
                let upto_seq = inner.written_seq;
                let upto_epoch = inner.last_epoch;
                let file = Arc::clone(&inner.file);
                drop(inner);
                let res = faults::hit("wal.before_fsync")
                    .and_then(|()| file.sync_data().map_err(|e| io_err("wal-fsync", e)))
                    .and_then(|()| faults::hit("wal.after_fsync"));
                inner = self.lock();
                inner.syncing = false;
                match res {
                    Ok(()) => {
                        inner.synced_seq = inner.synced_seq.max(upto_seq);
                        self.shared.durable_epoch.fetch_max(upto_epoch, Ordering::AcqRel);
                        self.shared.fsyncs.fetch_add(1, Ordering::Relaxed);
                        self.shared.sync_cv.notify_all();
                    }
                    Err(e) => {
                        drop(inner);
                        return self.fail(e);
                    }
                }
            } else {
                inner = match self.shared.sync_cv.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => {
                        self.shared.failed.store(true, Ordering::Release);
                        poisoned.into_inner()
                    }
                };
            }
        }
    }

    /// Appends and makes durable in one call (the convenience path for
    /// benchmarks and tests; the engine splits the two so publishes
    /// can overlap the fsync window).
    pub fn append_durable(&self, epoch: u64, payload: &[u8]) -> Result<()> {
        let ticket = self.append(epoch, payload)?;
        self.commit(&ticket)
    }

    /// Appends with the next epoch (`last + 1`), assigned atomically
    /// under the append lock — the entry point for concurrent writers
    /// that have no external epoch authority (benchmarks, tests). The
    /// engine instead assigns epochs under its writer lock and calls
    /// [`Wal::append`].
    pub fn append_next(&self, payload: &[u8]) -> Result<WalTicket> {
        self.append_impl(None, payload)
    }

    fn rotate_locked(&self, inner: &mut Inner) -> Result<()> {
        // Everything buffered in the old segment becomes durable at
        // rotation: the old handle is dropped, so its bytes must not
        // depend on a future fsync of the new file.
        inner.file.sync_data().map_err(|e| io_err("wal-rotate", e))?;
        inner.synced_seq = inner.written_seq;
        self.shared.durable_epoch.fetch_max(inner.last_epoch, Ordering::AcqRel);
        self.shared.sync_cv.notify_all();
        let first = inner.last_epoch.saturating_add(1);
        let (file, len) = create_segment(&self.shared.dir, first)?;
        inner.file = file;
        inner.seg_first = first;
        inner.seg_len = len;
        self.shared.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Forces a rotation (a checkpoint closes the epoch range of the
    /// active segment so reclamation can retire it later).
    pub fn rotate(&self) -> Result<()> {
        if self.is_failed() {
            return Err(Self::failed_err("wal-rotate"));
        }
        let mut inner = self.lock();
        if inner.seg_len > SEG_HEADER_LEN {
            if let Err(e) = self.rotate_locked(&mut inner) {
                drop(inner);
                return self.fail(e);
            }
        }
        Ok(())
    }

    /// Deletes every closed segment fully covered by a snapshot at
    /// `watermark`: segment `i` may go iff segment `i+1` starts at or
    /// below `watermark + 1` (all of `i`'s records are then ≤
    /// `watermark`). The active segment always stays. Returns the
    /// number of segments removed.
    pub fn reclaim(&self, watermark: u64) -> Result<usize> {
        let inner = self.lock();
        let active_first = inner.seg_first;
        drop(inner);
        let segments = list_segments(&self.shared.dir)?;
        let mut removed = 0usize;
        for pair in segments.windows(2) {
            let (Some(seg), Some(next)) = (pair.first(), pair.get(1)) else { continue };
            if seg.first_epoch != active_first && next.first_epoch <= watermark.saturating_add(1) {
                std::fs::remove_file(&seg.path).map_err(|e| io_err("wal-reclaim", e))?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.shared.dir)?;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pcs-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn frames_round_trip() {
        let recs = vec![
            WalRecord { epoch: 1, payload: vec![1, 2, 3] },
            WalRecord { epoch: 2, payload: Vec::new() },
            WalRecord { epoch: 5, payload: (0u8..200).collect() },
        ];
        let bytes = encode_records(&recs).unwrap();
        let scan = decode_frames(&bytes, None);
        assert_eq!(scan.records, recs);
        assert_eq!(scan.consumed, bytes.len() as u64);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn epoch_regression_is_torn() {
        let mut bytes = encode_record(5, b"x").unwrap();
        bytes.extend_from_slice(&encode_record(5, b"y").unwrap());
        let scan = decode_frames(&bytes, None);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn.unwrap().contains("regresses"));
    }

    #[test]
    fn append_reopen_replays() {
        let dir = tmpdir("reopen");
        {
            let (wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
            assert!(replay.records.is_empty());
            for e in 1..=20u64 {
                wal.append_durable(e, format!("payload-{e}").as_bytes()).unwrap();
            }
            assert_eq!(wal.durable_epoch(), 20);
        }
        let (wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        assert_eq!(replay.records.len(), 20);
        assert_eq!(replay.last_epoch(), Some(20));
        assert!(replay.torn.is_none());
        assert_eq!(wal.durable_epoch(), 20);
        wal.append_durable(21, b"more").unwrap();
    }

    #[test]
    fn rotation_and_reclaim() {
        let dir = tmpdir("rotate");
        let opts = WalOptions { segment_bytes: 128, ..WalOptions::default() };
        let (wal, _) = Wal::open(&dir, opts.clone(), 0).unwrap();
        for e in 1..=40u64 {
            wal.append_durable(e, &[0u8; 32]).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() > 2, "small cap must force rotation, got {}", segs.len());
        assert!(wal.stats().rotations > 0);
        // Everything replays across rotations.
        let replay = read_records(&dir).unwrap();
        assert_eq!(replay.records.len(), 40);
        // A watermark halfway in reclaims only fully-covered segments.
        let removed = wal.reclaim(20).unwrap();
        assert!(removed > 0);
        let replay = read_records(&dir).unwrap();
        assert_eq!(replay.last_epoch(), Some(40), "suffix survives reclamation");
        assert!(replay.records.iter().all(|r| r.epoch <= 40));
        // The surviving prefix still starts at or before epoch 21.
        let first = replay.records.first().unwrap().epoch;
        assert!(first <= 21, "records after the watermark must survive (first {first})");
        // Reading from a reclaimed point errors (gap), from a live one works.
        assert!(read_records_since(&dir, 0, u64::MAX, u64::MAX).is_err() || first == 1);
        let tail = read_records_since(&dir, 30, u64::MAX, u64::MAX).unwrap();
        assert_eq!(tail.first().unwrap().epoch, 31);
        assert_eq!(tail.last().unwrap().epoch, 40);
    }

    #[test]
    fn group_commit_coalesces_concurrent_writers() {
        let dir = tmpdir("group");
        let (wal, _) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..50u64 {
                        let t = wal.append_next(&i.to_le_bytes()).unwrap();
                        wal.commit(&t).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.records, 400);
        assert_eq!(wal.durable_epoch(), 400);
        assert!(
            stats.fsyncs < stats.records,
            "8 writers must coalesce fsyncs: {} fsyncs for {} records",
            stats.fsyncs,
            stats.records
        );
        let replay = read_records(&dir).unwrap();
        assert_eq!(replay.records.len(), 400);
        assert!(replay.records.windows(2).all(|w| w[0].epoch < w[1].epoch));
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        {
            let (wal, _) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
            for e in 1..=5u64 {
                wal.append_durable(e, b"good").unwrap();
            }
        }
        // Tear the last frame by hand: drop 3 bytes off the file.
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let f = OpenOptions::new().write(true).open(&seg.path).unwrap();
        f.set_len(seg.file_len - 3).unwrap();
        drop(f);
        let ro = read_records(&dir).unwrap();
        assert_eq!(ro.records.len(), 4, "read-only scan stops before the torn frame");
        assert!(ro.torn.is_some());
        let (wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
        assert_eq!(replay.records.len(), 4);
        wal.append_durable(5, b"replacement").unwrap();
        drop(wal);
        let replay = read_records(&dir).unwrap();
        assert_eq!(replay.records.len(), 5, "append extends the repaired prefix cleanly");
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.last().unwrap().payload, b"replacement");
    }

    #[test]
    fn kill_points_fail_stop_and_recover() {
        for point in ["wal.append", "wal.torn_append", "wal.after_append", "wal.before_fsync"] {
            let dir = tmpdir(&format!("kill-{}", point.replace('.', "-")));
            let (wal, _) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
            for e in 1..=3u64 {
                wal.append_durable(e, b"pre").unwrap();
            }
            faults::arm(point);
            let err = wal.append_durable(4, b"doomed").unwrap_err();
            assert!(matches!(err, StoreError::Io { .. }), "{point}: {err}");
            assert!(wal.is_failed());
            assert!(wal.append_durable(5, b"after").is_err(), "{point}: fail-stop is sticky");
            assert_eq!(faults::armed_count(), 0, "{point} was reached");
            drop(wal);
            // Recovery: the durable prefix is intact; epoch 4 may or
            // may not have survived depending on where the crash hit,
            // but the log is always a clean prefix.
            let (wal, replay) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
            let n = replay.records.len();
            assert!((3..=4).contains(&n), "{point}: prefix of 3 or 4 records, got {n}");
            for (i, r) in replay.records.iter().enumerate() {
                assert_eq!(r.epoch, i as u64 + 1);
            }
            let next = replay.last_epoch().unwrap() + 1;
            wal.append_durable(next, b"post-recovery").unwrap();
        }
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let dir = tmpdir("oversize");
        {
            let (wal, _) = Wal::open(&dir, WalOptions::default(), 0).unwrap();
            wal.append_durable(1, b"ok").unwrap();
        }
        // Forge a frame whose length field lies enormously.
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&seg.path).unwrap();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"tiny");
        std::fs::write(&seg.path, &bytes).unwrap();
        let replay = read_records(&dir).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn.unwrap().detail.contains("cap"));
    }
}
