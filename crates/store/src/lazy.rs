//! Lazy snapshot loading: decode META + directories eagerly, fault
//! everything else in on first touch.
//!
//! [`open_lazy`] is the scale counterpart of
//! [`decode_snapshot`](crate::decode_snapshot): over a
//! [`FileSnapshot`] it decodes only the **small, structural** parts of
//! a v3 file up front — META, TAXONOMY, CORES (structure), the
//! `PROFILES` chunk directory, and the `INDEX` length table + shard
//! directory — and returns handles whose payloads materialize on
//! demand:
//!
//! * the graph decodes (and is count-pinned against META, plus the
//!   deferred `core ≤ degree` pin) on its first adjacency access;
//! * each profile chunk reads, checksums, and parses on the first
//!   `get(v)` that lands in it;
//! * each index member run reads and checksums on the first
//!   `vertices_with_label` for its label;
//! * each shard payload reads, checksums, and decodes on its first
//!   probe.
//!
//! **Fault discipline.** The hot-path traits these handles implement
//! ([`GraphSource`], [`ProfileSource`], [`MemberSource`],
//! [`ShardSource`]) are infallible or stringly-typed by design. Every
//! lazy reader here therefore records the first typed [`StoreError`]
//! in a shared [`FaultCell`] *before* surfacing the failure through
//! the trait; the owning engine checks the cell after every query and
//! returns the typed error instead of the answer. Damage in a range a
//! query never touches costs nothing; damage in a range it does touch
//! yields a typed error — never a silently wrong community. The one
//! deliberate exception is a shard payload: a damaged shard is simply
//! "not available" and the index rebuilds it from the graph, which is
//! correct (and the in-memory [`LazyShardStore`](crate::LazyShardStore)
//! contract).

use crate::codec::{
    decode_cl, decode_cores_payload, decode_meta_payload, decode_taxonomy_payload, member_sum_seed,
    parse_profile_chunk, pin_cores_against_graph, section, shard_sum_seed, ProfileChunkDir,
    SnapshotMeta,
};
use crate::format::{xxh64, Result, SectionReader, StoreError, FORMAT_VERSION};
use crate::source::FileSnapshot;
use pcs_graph::{Graph, GraphHandle, GraphSource, VertexId};
use pcs_index::{ClTree, MemberSource, ShardSource};
use pcs_ptree::{LabelId, PTree, ProfileSource, ProfilesHandle, Taxonomy};
use std::sync::{Arc, OnceLock};

fn corrupt(section: u32, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { section, detail: detail.into() }
}

/// The shared first-fault register of one lazy load: every lazy reader
/// of the same snapshot records the first typed [`StoreError`] it hits
/// here, *before* reporting the failure through its infallible trait.
/// Cheap to clone (all clones share the cell); write-once — the first
/// fault is the one that explains everything downstream of it.
#[derive(Clone, Debug, Default)]
pub struct FaultCell {
    cell: Arc<OnceLock<StoreError>>,
}

impl FaultCell {
    /// A fresh, unset cell.
    pub fn new() -> FaultCell {
        FaultCell::default()
    }

    /// Records `err` if no fault is recorded yet.
    pub fn record(&self, err: &StoreError) {
        let _ = self.cell.set(err.clone());
    }

    /// The first recorded fault, if any.
    pub fn get(&self) -> Option<StoreError> {
        self.cell.get().cloned()
    }

    /// True once any fault is recorded.
    pub fn is_set(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// The lazily decodable parts of the `INDEX` section: eager member
/// counts plus on-demand member-run and shard-payload readers.
pub struct LazyIndexParts {
    /// Per label, the member count (from the eagerly validated length
    /// table) — enough for the facade to answer "unpopulated" without
    /// any further read.
    pub member_lens: Vec<usize>,
    /// Faults in one label's (checksummed) member run per call.
    pub members: Arc<dyn MemberSource>,
    /// Faults in one shard's (checksummed) payload per call.
    pub shards: Arc<dyn ShardSource>,
}

impl std::fmt::Debug for LazyIndexParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyIndexParts")
            .field("labels", &self.member_lens.len())
            .field("populated", &self.member_lens.iter().filter(|&&l| l > 0).count())
            .finish()
    }
}

/// Everything [`open_lazy`] decodes or defers: the eager small parts
/// plus lazy handles over the big ones, all sharing one [`FaultCell`]
/// and one [`FileSnapshot`] (whose
/// [`bytes_read`](FileSnapshot::bytes_read) counter prices the load).
#[derive(Debug)]
pub struct LazySnapshot {
    /// The decoded `META` section.
    pub meta: SnapshotMeta,
    /// The taxonomy (eager — every query needs it).
    pub tax: Taxonomy,
    /// Core numbers, structure-validated; the `core ≤ degree` pin runs
    /// when the graph materializes.
    pub cores: Option<Arc<Vec<u32>>>,
    /// The graph, deferred to first adjacency access.
    pub graph: GraphHandle,
    /// Per-vertex P-trees, deferred per chunk.
    pub profiles: ProfilesHandle,
    /// The index parts, when the file carries an `INDEX` section and
    /// the caller asked for it.
    pub index: Option<LazyIndexParts>,
    /// The shared first-fault register.
    pub fault: FaultCell,
    /// The backing file (shared by every lazy reader above).
    pub source: Arc<FileSnapshot>,
}

/// Opens the lazy view over a validated [`FileSnapshot`].
///
/// Requires format v3 (older files lack the per-range checksums the
/// deferred reads rely on — load those through the eager
/// [`decode_snapshot`](crate::decode_snapshot) path instead; this
/// function rejects them with [`StoreError::UnsupportedVersion`]).
/// With `want_index = false` the `INDEX` section is not touched at all
/// and `index` is `None`.
///
/// Everything read here is structural: META, TAXONOMY, CORES, the
/// profile chunk directory, and the index length table + shard
/// directory — a few bytes per label/chunk, not per vertex or edge.
pub fn open_lazy(src: Arc<FileSnapshot>, want_index: bool) -> Result<LazySnapshot> {
    if src.version() < 3 {
        return Err(StoreError::UnsupportedVersion {
            found: src.version(),
            supported: FORMAT_VERSION,
        });
    }
    let require = |id: u32| -> Result<&[u8]> {
        src.section(id)?.ok_or(StoreError::MissingSection { section: id })
    };
    let meta = decode_meta_payload(require(section::META)?)?;
    let tax = decode_taxonomy_payload(require(section::TAXONOMY)?, &meta)?;
    let cores = match src.section(section::CORES)? {
        Some(payload) => Some(Arc::new(decode_cores_payload(payload, meta.n, meta.narrow)?)),
        None => None,
    };
    // The graph and profiles must exist (their absence is corruption,
    // caught now); their payloads stay on disk.
    if src.section_len(section::GRAPH).is_none() {
        return Err(StoreError::MissingSection { section: section::GRAPH });
    }
    let profiles_len = src
        .section_len(section::PROFILES)
        .ok_or(StoreError::MissingSection { section: section::PROFILES })?;

    let fault = FaultCell::new();
    let graph = GraphHandle::lazy(
        Arc::new(LazyGraphSource {
            src: Arc::clone(&src),
            meta,
            cores: cores.clone(),
            fault: fault.clone(),
        }),
        meta.n,
        meta.m,
    );

    // Profile chunk directory: first the 24-byte header (for the chunk
    // count), then the full prefix through the shared validator.
    let head = src.read_range(section::PROFILES, 0, 24)?;
    let num_chunks = {
        let mut r = SectionReader::new(&head, section::PROFILES);
        let _count = r.u64()?;
        let _chunk_size = r.u64()?;
        r.usize64()?
    };
    let dir_bytes = num_chunks
        .checked_mul(24)
        .and_then(|d| d.checked_add(24))
        .and_then(|d| u64::try_from(d).ok())
        .ok_or_else(|| corrupt(section::PROFILES, "chunk directory length overflows"))?;
    let prefix = src.read_range(section::PROFILES, 0, dir_bytes)?;
    let dir = ProfileChunkDir::parse(&prefix, meta.n, profiles_len)?;
    let chunks = dir.entries.iter().map(|_| OnceLock::new()).collect();
    let profiles = ProfilesHandle::lazy(Arc::new(LazyProfileStore {
        src: Arc::clone(&src),
        tax: tax.clone(),
        dir,
        narrow: meta.narrow,
        chunks,
        dense: OnceLock::new(),
        fault: fault.clone(),
    }));

    let index = match (want_index, src.section_len(section::INDEX)) {
        (true, Some(index_len)) => Some(open_lazy_index(&src, &meta, &tax, index_len, &fault)?),
        _ => None,
    };

    Ok(LazySnapshot { meta, tax, cores, graph, profiles, index, fault, source: src })
}

/// Eagerly reads and validates the structural prefix of a v3 `INDEX`
/// section — dimensions, member length table (+ per-label checksum
/// list), shard directory — and wires up the lazy member/shard
/// readers. Mirrors `decode_index_v2`'s structural checks; the
/// deferred ones (member run checksums, sortedness, vertex range,
/// shard payload decode) run per label at fault time, and the
/// member ⇄ profile carrier pin is `verify_deep`'s.
fn open_lazy_index(
    src: &Arc<FileSnapshot>,
    meta: &SnapshotMeta,
    tax: &Taxonomy,
    section_len: u64,
    fault: &FaultCell,
) -> Result<LazyIndexParts> {
    let bad = |detail: &str| corrupt(section::INDEX, detail);
    let dims = src.read_range(section::INDEX, 0, 16)?;
    let (idx_n, idx_labels) = {
        let mut r = SectionReader::new(&dims, section::INDEX);
        let n = r.usize64()?;
        let labels = r.usize64()?;
        (n, labels)
    };
    if idx_n != meta.n || idx_labels != tax.len() {
        return Err(bad("index dimensions disagree with graph/taxonomy"));
    }
    let num_labels = idx_labels;
    let table_bytes = num_labels
        .checked_mul(12)
        .and_then(|b| b.checked_add(8))
        .and_then(|b| u64::try_from(b).ok())
        .ok_or_else(|| bad("member length table overflows"))?;
    let table = src.read_range(section::INDEX, 16, table_bytes)?;
    let mut r = SectionReader::new(&table, section::INDEX);
    let lens = r.u32_vec(num_labels)?;
    let mut sums = Vec::with_capacity(num_labels);
    for _ in 0..num_labels {
        sums.push(r.u64()?);
    }
    let total = r.u64()?;
    r.finish()?;
    if lens.iter().map(|&l| u64::from(l)).sum::<u64>() != total {
        return Err(bad("member-table lengths disagree with the total"));
    }
    let id_width: u64 = if meta.narrow { 2 } else { 4 };
    let members_base = 16 + table_bytes;
    // Per-label byte offsets of the member runs (prefix sums).
    let mut run_offs = Vec::with_capacity(num_labels);
    let mut off = 0u64;
    for &len in &lens {
        run_offs.push(off);
        off = off
            .checked_add(u64::from(len).wrapping_mul(id_width))
            .ok_or_else(|| bad("member runs overflow"))?;
    }
    let dir_base = members_base.checked_add(off).ok_or_else(|| bad("member runs overflow"))?;
    let count_buf = src.read_range(section::INDEX, dir_base, 8)?;
    let shard_count = {
        let mut r = SectionReader::new(&count_buf, section::INDEX);
        let c = r.usize64()?;
        r.finish()?;
        c
    };
    if shard_count > num_labels {
        return Err(bad("more shards than labels"));
    }
    let dir_bytes = shard_count
        .checked_mul(28)
        .and_then(|b| b.checked_add(8))
        .and_then(|b| u64::try_from(b).ok())
        .ok_or_else(|| bad("shard directory overflows"))?;
    let dir_start = dir_base.checked_add(8).ok_or_else(|| bad("shard directory overflows"))?;
    let dir_buf = src.read_range(section::INDEX, dir_start, dir_bytes)?;
    let mut r = SectionReader::new(&dir_buf, section::INDEX);
    let mut entries: Vec<ShardEntry> = Vec::with_capacity(shard_count);
    let mut prev: Option<LabelId> = None;
    let mut expect_off = 0u64;
    for _ in 0..shard_count {
        let label = r.u32()?;
        let off = r.u64()?;
        let len = r.u64()?;
        let sum = r.u64()?;
        let populated =
            usize::try_from(label).ok().and_then(|i| lens.get(i)).is_some_and(|&l| l > 0);
        if usize::try_from(label).ok().is_none_or(|i| i >= num_labels) {
            return Err(bad("shard label out of range"));
        }
        if prev.is_some_and(|p| p >= label) {
            return Err(bad("shard labels not strictly ascending"));
        }
        prev = Some(label);
        if !populated {
            return Err(bad("shard for an unpopulated label"));
        }
        if off != expect_off {
            return Err(bad("shard payload does not tile"));
        }
        expect_off = off.checked_add(len).ok_or_else(|| bad("shard payload length overflows"))?;
        entries.push(ShardEntry { label, off, len, sum });
    }
    let blob_len = r.u64()?;
    r.finish()?;
    if expect_off != blob_len {
        return Err(bad("shard directory does not cover the blob"));
    }
    let blob_base =
        dir_start.checked_add(dir_bytes).ok_or_else(|| bad("shard directory overflows"))?;
    if blob_base.checked_add(blob_len) != Some(section_len) {
        return Err(bad("shard blob does not end the section"));
    }
    let member_lens = lens.iter().map(|&l| l as usize).collect();
    let members: Arc<dyn MemberSource> = Arc::new(LazyMemberStore {
        src: Arc::clone(src),
        lens,
        sums,
        run_offs,
        members_base,
        narrow: meta.narrow,
        n: meta.n,
        fault: fault.clone(),
    });
    let shards: Arc<dyn ShardSource> =
        Arc::new(LazyShardReader { src: Arc::clone(src), entries, blob_base, narrow: meta.narrow });
    Ok(LazyIndexParts { member_lens, members, shards })
}

/// Decodes the `GRAPH` section on first adjacency access, running the
/// deferred `core ≤ degree` pin against the eagerly decoded cores.
struct LazyGraphSource {
    src: Arc<FileSnapshot>,
    meta: SnapshotMeta,
    cores: Option<Arc<Vec<u32>>>,
    fault: FaultCell,
}

impl LazyGraphSource {
    fn load(&self) -> Result<Graph> {
        let payload = self
            .src
            .section(section::GRAPH)?
            .ok_or(StoreError::MissingSection { section: section::GRAPH })?;
        let graph = crate::codec::decode_graph_payload(payload, &self.meta)?;
        if let Some(cores) = &self.cores {
            pin_cores_against_graph(cores, &graph)?;
        }
        Ok(graph)
    }
}

impl GraphSource for LazyGraphSource {
    fn load_graph(&self) -> std::result::Result<Graph, String> {
        self.load().map_err(|e| {
            self.fault.record(&e);
            e.to_string()
        })
    }
}

/// Per-chunk lazy P-tree storage over the v3 chunked `PROFILES`
/// layout. Each chunk is read with one positioned range read, verified
/// against its directory checksum, parsed, and cached.
pub struct LazyProfileStore {
    src: Arc<FileSnapshot>,
    tax: Taxonomy,
    dir: ProfileChunkDir,
    narrow: bool,
    /// Per chunk: parsed trees, or `None` when the chunk's bytes were
    /// damaged (typed fault recorded first).
    chunks: Vec<OnceLock<Option<Box<[PTree]>>>>,
    dense: OnceLock<Arc<Vec<PTree>>>,
    fault: FaultCell,
}

impl LazyProfileStore {
    fn load_chunk(&self, i: usize) -> Result<Box<[PTree]>> {
        let &(off, len, sum) = self
            .dir
            .entries
            .get(i)
            .ok_or_else(|| corrupt(section::PROFILES, "chunk index out of range"))?;
        let at = self
            .dir
            .data_base
            .checked_add(off)
            .ok_or_else(|| corrupt(section::PROFILES, "chunk offset overflows"))?;
        let bytes = self.src.read_range(section::PROFILES, at, len)?;
        let base = i.saturating_mul(self.dir.chunk_size);
        let chunk_index =
            u64::try_from(i).map_err(|_| corrupt(section::PROFILES, "chunk index overflows"))?;
        let parsed = parse_profile_chunk(
            &bytes,
            chunk_index,
            sum,
            self.dir.chunk_vertices(i),
            base,
            &self.tax,
            self.narrow,
        )?;
        Ok(parsed.into_boxed_slice())
    }

    fn chunk(&self, i: usize) -> Option<&[PTree]> {
        let slot = self.chunks.get(i)?;
        slot.get_or_init(|| match self.load_chunk(i) {
            Ok(chunk) => Some(chunk),
            Err(e) => {
                self.fault.record(&e);
                None
            }
        })
        .as_deref()
    }
}

impl ProfileSource for LazyProfileStore {
    fn len(&self) -> usize {
        self.dir.count
    }

    fn get(&self, v: usize) -> Option<&PTree> {
        if v >= self.dir.count || self.dir.chunk_size == 0 {
            return None;
        }
        let ci = v / self.dir.chunk_size;
        self.chunk(ci)?.get(v % self.dir.chunk_size)
    }

    fn fault(&self) -> Option<String> {
        self.fault.get().map(|e| e.to_string())
    }

    fn materialize(&self) -> std::result::Result<Arc<Vec<PTree>>, String> {
        if let Some(dense) = self.dense.get() {
            return Ok(Arc::clone(dense));
        }
        let mut all = Vec::with_capacity(self.dir.count);
        for i in 0..self.chunks.len() {
            match self.chunk(i) {
                Some(chunk) => all.extend(chunk.iter().cloned()),
                None => {
                    return Err(self
                        .fault
                        .get()
                        .map_or_else(|| "profile chunk unavailable".into(), |e| e.to_string()))
                }
            }
        }
        let arc = self.dense.get_or_init(|| Arc::new(all));
        Ok(Arc::clone(arc))
    }

    fn dense(&self) -> Option<&[PTree]> {
        self.dense.get().map(|d| d.as_slice())
    }
}

impl std::fmt::Debug for LazyProfileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyProfileStore")
            .field("vertices", &self.dir.count)
            .field("chunks", &self.chunks.len())
            .field("resident", &self.chunks.iter().filter(|c| c.get().is_some()).count())
            .finish()
    }
}

/// Per-label lazy member-run reader over the v3 `INDEX` member table.
/// Authoritative (see [`MemberSource`]) — so every run is verified
/// against its per-label checksum and the structural invariants before
/// it is served, and any failure poisons the fault cell.
struct LazyMemberStore {
    src: Arc<FileSnapshot>,
    lens: Vec<u32>,
    sums: Vec<u64>,
    run_offs: Vec<u64>,
    members_base: u64,
    narrow: bool,
    n: usize,
    fault: FaultCell,
}

impl LazyMemberStore {
    fn load(&self, label: LabelId) -> Result<Vec<VertexId>> {
        let bad = |detail: &str| corrupt(section::INDEX, detail);
        let i = usize::try_from(label).map_err(|_| bad("label exceeds address space"))?;
        let len = self.lens.get(i).copied().ok_or_else(|| bad("label out of range"))?;
        let off = self.run_offs.get(i).copied().ok_or_else(|| bad("label out of range"))?;
        let stored = self.sums.get(i).copied().ok_or_else(|| bad("label out of range"))?;
        let id_width: u64 = if self.narrow { 2 } else { 4 };
        let at = self.members_base.checked_add(off).ok_or_else(|| bad("member run overflows"))?;
        let run_len = u64::from(len).wrapping_mul(id_width);
        let bytes = self.src.read_range(section::INDEX, at, run_len)?;
        let actual = xxh64(&bytes, member_sum_seed(label));
        if actual != stored {
            return Err(StoreError::ChecksumMismatch {
                section: section::INDEX,
                expected: stored,
                actual,
            });
        }
        let mut r = SectionReader::new(&bytes, section::INDEX);
        let members = r.id_vec(len as usize, self.narrow)?;
        r.finish()?;
        if members.windows(2).any(|w| w.first() >= w.last()) {
            return Err(bad("member run unsorted"));
        }
        if members.last().is_some_and(|&v| v as usize >= self.n) {
            return Err(bad("member run indexes out-of-range vertices"));
        }
        Ok(members)
    }
}

impl MemberSource for LazyMemberStore {
    fn load_members(&self, label: LabelId) -> Option<Vec<VertexId>> {
        match self.load(label) {
            Ok(members) => Some(members),
            Err(e) => {
                self.fault.record(&e);
                None
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ShardEntry {
    label: LabelId,
    off: u64,
    len: u64,
    sum: u64,
}

/// File-backed shard supplier: one positioned range read + checksum +
/// structural decode per shard. Advisory (see [`ShardSource`]): any
/// failure is "not available" and the index rebuilds from the graph,
/// so a damaged payload costs time, never correctness — no fault is
/// recorded.
struct LazyShardReader {
    src: Arc<FileSnapshot>,
    entries: Vec<ShardEntry>,
    blob_base: u64,
    narrow: bool,
}

impl LazyShardReader {
    fn decode(&self, label: LabelId) -> Result<Option<ClTree>> {
        let Ok(i) = self.entries.binary_search_by_key(&label, |e| e.label) else {
            return Ok(None);
        };
        let Some(entry) = self.entries.get(i).copied() else {
            return Ok(None);
        };
        let at = self
            .blob_base
            .checked_add(entry.off)
            .ok_or_else(|| corrupt(section::INDEX, "shard extent overflows"))?;
        let bytes = self.src.read_range(section::INDEX, at, entry.len)?;
        let actual = xxh64(&bytes, shard_sum_seed(label));
        if actual != entry.sum {
            return Err(StoreError::ChecksumMismatch {
                section: section::INDEX,
                expected: entry.sum,
                actual,
            });
        }
        let mut r = SectionReader::new(&bytes, section::INDEX);
        let flat = decode_cl(&mut r, self.narrow)?;
        r.finish()?;
        let cl = ClTree::from_flat(flat).map_err(|e| corrupt(section::INDEX, e.to_string()))?;
        Ok(Some(cl))
    }
}

impl ShardSource for LazyShardReader {
    fn load_shard(&self, label: LabelId) -> Option<ClTree> {
        self.decode(label).ok().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_snapshot, section};
    use pcs_graph::core::CoreDecomposition;
    use pcs_index::ShardedCpIndex;
    use std::path::PathBuf;

    fn fixture() -> (Graph, Taxonomy, Vec<PTree>) {
        let mut tax = Taxonomy::new("r");
        let a = tax.add_child(Taxonomy::ROOT, "a").unwrap();
        let b = tax.add_child(a, "b").unwrap();
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let profiles = vec![
            PTree::from_labels(&tax, [a]).unwrap(),
            PTree::from_labels(&tax, [b]).unwrap(),
            PTree::from_labels(&tax, [b]).unwrap(),
            PTree::from_labels(&tax, [a, b]).unwrap(),
            PTree::from_labels(&tax, [a]).unwrap(),
            PTree::root_only(),
        ];
        (g, tax, profiles)
    }

    fn write_fixture(tag: &str) -> (PathBuf, Graph, Taxonomy, Vec<PTree>) {
        let dir = std::env::temp_dir().join(format!("pcs_lazy_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pcs");
        let (g, tax, profiles) = fixture();
        let cores = CoreDecomposition::new(&g);
        let idx =
            ShardedCpIndex::build(Arc::new(g.clone()), &tax, Arc::new(profiles.clone())).unwrap();
        idx.materialize_all(1);
        let file = encode_snapshot(7, &g, &tax, &profiles, Some(cores.core_numbers()), Some(&idx));
        file.write(&path).unwrap();
        (path, g, tax, profiles)
    }

    fn cleanup(path: &std::path::Path) {
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn open_lazy_reads_structure_only_then_faults_in_exactly_what_is_touched() {
        let (path, g, tax, profiles) = write_fixture("structure");
        let src = Arc::new(FileSnapshot::open(&path).unwrap());
        let file_len = src.file_len();
        let snap = open_lazy(Arc::clone(&src), true).unwrap();
        assert_eq!(snap.meta.epoch, 7);
        assert_eq!(snap.meta.n, 6);
        assert_eq!(snap.tax.len(), tax.len());
        assert!(!snap.graph.is_materialized());
        // The GRAPH payload stays untouched by open (the fixture is
        // tiny, so the structural prefix dominates the *file*; the
        // scale-proportional <10% pin lives in the bench suite).
        assert!(!src.section_resident(section::GRAPH), "open must not read the graph payload");
        let structural = src.bytes_read();
        assert!(structural < file_len, "structural prefix must not cover the whole file");
        // Graph faults in once, equal to the source, cores pinned.
        let graph = snap.graph.get().unwrap();
        assert_eq!(graph.as_ref(), &g);
        // One profile touch faults one chunk (here: the only chunk).
        assert_eq!(snap.profiles.get(3), profiles.get(3));
        assert_eq!(snap.profiles.len(), 6);
        // Member lens answer populated/unpopulated without reads.
        let idx = snap.index.as_ref().unwrap();
        assert_eq!(idx.member_lens.len(), tax.len());
        assert_eq!(idx.member_lens[0], 6, "root is carried by everyone");
        // Member run loads, sorted and verified.
        let root_members = idx.members.load_members(0).unwrap();
        assert_eq!(root_members, vec![0, 1, 2, 3, 4, 5]);
        // Shard payload decodes to the same members.
        let cl = idx.shards.load_shard(0).unwrap();
        assert_eq!(cl.members(), root_members.as_slice());
        assert!(snap.fault.get().is_none());
        cleanup(&path);
    }

    #[test]
    fn v2_files_are_rejected_with_a_typed_error() {
        let (path, g, tax, profiles) = write_fixture("v2");
        let file = crate::codec::encode_snapshot_v1(3, &g, &tax, &profiles, None, None);
        file.write(&path).unwrap();
        let src = Arc::new(FileSnapshot::open(&path).unwrap());
        assert!(matches!(open_lazy(src, true), Err(StoreError::UnsupportedVersion { .. })));
        cleanup(&path);
    }

    #[test]
    fn damaged_profile_chunk_poisons_the_fault_cell_on_first_touch() {
        let (path, _g, _tax, _profiles) = write_fixture("chunkdmg");
        // Find the PROFILES payload and flip a byte inside the data
        // area (past the 24-byte header + one 24-byte chunk dir entry).
        let pristine = std::fs::read(&path).unwrap();
        let slices = crate::SnapshotSlices::from_bytes(&pristine).unwrap();
        let payload = slices.section(section::PROFILES).unwrap();
        let target = payload.as_ptr() as usize - pristine.as_ptr() as usize + 48 + 3;
        let mut bytes = pristine.clone();
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let src = Arc::new(FileSnapshot::open(&path).unwrap());
        let snap = open_lazy(src, false).unwrap();
        // The damage sits in a deferred range: open succeeded.
        assert!(snap.fault.get().is_none());
        // First touch of the chunk: None + typed fault recorded.
        assert_eq!(snap.profiles.get(0), None);
        assert!(matches!(
            snap.fault.get(),
            Some(StoreError::ChecksumMismatch { section: section::PROFILES, .. })
        ));
        assert!(snap.profiles.fault().is_some());
        cleanup(&path);
    }

    #[test]
    fn damaged_member_run_poisons_and_damaged_shard_rebuilds() {
        let (path, _g, tax, _profiles) = write_fixture("memdmg");
        let pristine = std::fs::read(&path).unwrap();
        let slices = crate::SnapshotSlices::from_bytes(&pristine).unwrap();
        let payload = slices.section(section::INDEX).unwrap();
        let base = payload.as_ptr() as usize - pristine.as_ptr() as usize;
        let num_labels = tax.len();
        // Flip one byte inside the root label's member run.
        let members_base = 16 + 12 * num_labels + 8;
        let mut bytes = pristine.clone();
        bytes[base + members_base + 1] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let src = Arc::new(FileSnapshot::open(&path).unwrap());
        let snap = open_lazy(src, true).unwrap();
        let idx = snap.index.as_ref().unwrap();
        assert_eq!(idx.members.load_members(0), None, "damaged run refuses to load");
        assert!(matches!(
            snap.fault.get(),
            Some(StoreError::ChecksumMismatch { section: section::INDEX, .. })
        ));
        // A damaged *shard payload* is merely unavailable (rebuild
        // path), no poison: flip a blob byte in a fresh copy. The
        // fixture has 6 vertices, so ids are narrow (2 bytes each).
        let total: usize = (0..num_labels)
            .map(|l| {
                let at = base + 16 + 4 * l;
                u32::from_le_bytes(pristine[at..at + 4].try_into().unwrap()) as usize
            })
            .sum();
        let mut bytes = pristine.clone();
        let dir_base = base + members_base + total * 2;
        let shard_count =
            u64::from_le_bytes(bytes[dir_base..dir_base + 8].try_into().unwrap()) as usize;
        let blob_base = dir_base + 8 + 28 * shard_count + 8;
        bytes[blob_base + 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let src3 = Arc::new(FileSnapshot::open(&path).unwrap());
        let snap3 = open_lazy(src3, true).unwrap();
        let idx3 = snap3.index.as_ref().unwrap();
        assert!(idx3.shards.load_shard(0).is_none(), "damaged shard is unavailable");
        assert!(snap3.fault.get().is_none(), "shard damage does not poison (rebuild is correct)");
        cleanup(&path);
    }
}
