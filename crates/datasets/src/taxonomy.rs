//! Random GP-tree (taxonomy) generation.
//!
//! The ACM CCS used by ACMDL/Flickr/DBLP has 1 908 labels and MeSH has
//! 10 132 (Table 2); both are shallow, broad hierarchies. The generator
//! grows a tree to an exact label count with a bounded depth and a
//! fanout drawn per node, which reproduces the shape parameters the
//! algorithms are sensitive to (path lengths, branching of candidate
//! subtrees).

use pcs_ptree::Taxonomy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Grows a random taxonomy with exactly `labels` nodes (root included),
/// depth at most `max_depth`, and per-node fanout up to `max_children`.
///
/// Panics if `labels == 0` or the shape cannot hold that many labels.
pub fn random_taxonomy(labels: usize, max_depth: u32, max_children: usize, seed: u64) -> Taxonomy {
    assert!(labels >= 1, "need at least the root");
    assert!(max_children >= 1 && max_depth >= 1 || labels == 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tax = Taxonomy::new("r");
    // Frontier of nodes that can still take children.
    let mut open: Vec<(u32, usize)> = vec![(Taxonomy::ROOT, 0)]; // (id, children so far)
    let mut next = 1usize;
    while next < labels {
        assert!(!open.is_empty(), "taxonomy shape exhausted: raise max_depth or max_children");
        // Pick a random open node, biased toward shallower nodes so the
        // tree stays broad like CCS/MeSH.
        let idx = rng.gen_range(0..open.len());
        let (parent, had) = open[idx];
        let id = tax.add_child(parent, &format!("L{next}")).expect("generated names are unique");
        next += 1;
        if tax.depth(id) < max_depth {
            open.push((id, 0));
        }
        if had + 1 >= max_children {
            open.swap_remove(idx);
        } else {
            open[idx].1 = had + 1;
        }
    }
    tax
}

/// CCS-like taxonomy: 1 908 labels, depth ≤ 5 (matching ACM CCS 2012).
pub fn ccs_like(seed: u64) -> Taxonomy {
    random_taxonomy(1908, 5, 14, seed)
}

/// MeSH-like taxonomy: 10 132 labels, depth ≤ 8.
pub fn mesh_like(seed: u64) -> Taxonomy {
    random_taxonomy(10_132, 8, 20, seed)
}

/// A smaller taxonomy scaled from the CCS shape (used when the GP-tree
/// itself is sub-sampled, Fig. 13(c)/14(m-p)).
pub fn scaled_ccs_like(labels: usize, seed: u64) -> Taxonomy {
    random_taxonomy(labels.max(1), 5, 14, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_label_count() {
        for n in [1usize, 2, 10, 500] {
            let t = random_taxonomy(n, 6, 8, 42);
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn depth_bound_respected() {
        let t = random_taxonomy(300, 3, 10, 7);
        assert!(t.max_depth() <= 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_taxonomy(100, 5, 6, 1);
        let b = random_taxonomy(100, 5, 6, 1);
        for id in 0..100u32 {
            assert_eq!(a.parent(id), b.parent(id));
        }
    }

    #[test]
    fn ccs_and_mesh_shapes() {
        let ccs = ccs_like(3);
        assert_eq!(ccs.len(), 1908);
        assert!(ccs.max_depth() <= 5);
        let mesh = mesh_like(3);
        assert_eq!(mesh.len(), 10_132);
        assert!(mesh.max_depth() <= 8);
    }

    #[test]
    fn fanout_bound_respected() {
        let t = random_taxonomy(200, 10, 3, 11);
        for id in 0..t.len() as u32 {
            assert!(t.children(id).len() <= 3, "node {id}");
        }
    }

    #[test]
    #[should_panic(expected = "shape exhausted")]
    fn impossible_shape_panics() {
        // Depth 1 with fanout 2 holds at most 3 labels.
        random_taxonomy(10, 1, 2, 0);
    }
}
